//! Quickstart: generate a small synthetic Astra dataset, coalesce errors
//! into faults, and print the headline reliability summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use astra_core::experiments;
use astra_core::pipeline::{Analysis, Dataset};
use astra_util::time::study_span;

fn main() {
    // Two racks (144 nodes) of the Astra machine model, fixed seed.
    let ds = Dataset::generate(2, 42);
    println!(
        "machine: {} racks, {} nodes, {} DIMMs",
        ds.system.racks,
        ds.system.node_count(),
        ds.system.dimm_count()
    );
    println!(
        "generated {} CE records ({} dropped in the kernel buffer), {} HET records\n",
        ds.sim.ce_log.len(),
        ds.sim.dropped_ces,
        ds.sim.het_log.len()
    );

    // The analysis consumes records exactly as parsed from the syslog.
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    println!(
        "coalesced {} errors into {} faults\n",
        analysis.total_errors(),
        analysis.total_faults()
    );

    // The paper's central exhibit: errors vs faults.
    let fig4 = experiments::fig4::compute(&analysis, study_span());
    print!("{}", fig4.render());
    println!();
    let fig5 = experiments::fig5::compute(&analysis);
    print!("{}", fig5.render());
}

//! Fleet triage: turn the fault analysis into the operational outputs the
//! paper motivates (§3.2) — a node exclude-list for the few nodes with
//! pathological fault counts, page-retirement coverage for small-footprint
//! faults, and DIMM replacement candidates for wide-footprint faults.
//!
//! ```text
//! cargo run --release --example fleet_triage -- [racks] [seed]
//! ```

use astra_core::pipeline::{Analysis, Dataset};
use astra_core::{ObservedFault, ObservedMode};
use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let racks: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let ds = Dataset::generate(racks, seed);
    let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
    println!(
        "triage over {} nodes: {} errors, {} faults\n",
        ds.system.node_count(),
        analysis.total_errors(),
        analysis.total_faults()
    );

    // 1. Exclude list: nodes whose error volume dwarfs the fleet. The
    //    paper: "an exclude list for the small number of nodes
    //    experiencing large numbers of faults".
    let mut per_node: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for f in &analysis.faults {
        let e = per_node.entry(f.node.0).or_insert((0, 0));
        e.0 += 1;
        e.1 += f.error_count;
    }
    let total_errors = analysis.total_errors();
    let mut worst: Vec<(u32, (u64, u64))> = per_node.iter().map(|(&k, &v)| (k, v)).collect();
    worst.sort_by_key(|item| std::cmp::Reverse(item.1 .1));
    println!("exclude-list candidates (node, faults, errors, % of fleet errors):");
    for (node, (faults, errors)) in worst.iter().take(8) {
        let pct = 100.0 * *errors as f64 / total_errors as f64;
        if pct < 1.0 {
            break;
        }
        println!("  node{node:04}  {faults:>3} faults  {errors:>8} errors  {pct:>5.1}%");
    }

    // 2. Page retirement coverage: small-footprint faults are cheaply
    //    contained by retiring one page each.
    let (small, wide): (Vec<&ObservedFault>, Vec<&ObservedFault>) = analysis
        .faults
        .iter()
        .partition(|f| f.mode.small_footprint());
    let small_errors: u64 = small.iter().map(|f| f.error_count).sum();
    println!(
        "\npage retirement: {} faults ({:.1}% of faults, {:.1}% of errors) are\n\
         single-bit/word and containable at one 4 KiB page each (~{} KiB total)",
        small.len(),
        100.0 * small.len() as f64 / analysis.total_faults() as f64,
        100.0 * small_errors as f64 / total_errors as f64,
        4 * small.len()
    );

    // 3. Replacement candidates: DIMMs carrying wide-footprint or
    //    rank-level faults, ranked by attributed errors.
    let mut per_dimm: BTreeMap<(u32, usize), (u64, u64, bool)> = BTreeMap::new();
    for f in &wide {
        let e = per_dimm
            .entry((f.node.0, f.slot.index()))
            .or_insert((0, 0, false));
        e.0 += 1;
        e.1 += f.error_count;
        e.2 |= f.mode == ObservedMode::RankLevel;
    }
    let mut dimms: Vec<_> = per_dimm.iter().collect();
    dimms.sort_by_key(|item| std::cmp::Reverse(item.1 .1));
    println!("\nDIMM replacement candidates (wide-footprint faults):");
    for ((node, slot), (faults, errors, rank_level)) in dimms.iter().take(10) {
        let slot = astra_topology::DimmSlot::from_index(*slot as u8).unwrap();
        println!(
            "  node{node:04}:{slot}  {faults} wide faults  {errors:>8} errors{}",
            if *rank_level {
                "  [rank-level: replace]"
            } else {
                ""
            }
        );
    }

    // 4. DUE exposure: expected uncorrectable errors per year at the
    //    paper's measured FIT.
    let window = astra_util::time::TimeSpan::dates(
        astra_util::time::het_firmware_date(),
        astra_util::CalDate::new(2019, 9, 14),
    );
    let stats = astra_core::het::due_stats(&ds.sim.het_log, window, ds.system.dimm_count());
    println!(
        "\nDUE exposure: {:.4} DUE/DIMM/yr (FIT {:.0}) -> expect {:.0} job-killing\n\
         memory errors per year across this {}-node fleet",
        stats.dues_per_dimm_year,
        stats.fit_per_dimm,
        stats.dues_per_dimm_year * ds.system.dimm_count() as f64,
        ds.system.node_count()
    );
}

//! What if Astra had Chipkill? (§2.2 / §3.2 counterfactual.)
//!
//! The paper notes Astra uses SEC-DED rather than Chipkill, and that
//! multi-rank / multi-bank fault modes therefore "would manifest as
//! uncorrectable memory errors" — invisible to a CE-based study. This
//! example replays the ground-truth fault population under both ECC
//! models and reports which fault modes stay correctable, and how much
//! DUE exposure Chipkill would remove.
//!
//! ```text
//! cargo run --release --example what_if_chipkill -- [racks] [seed]
//! ```

use astra_core::pipeline::Dataset;
use astra_faultsim::{EccModel, EccOutcome, FaultMode};

/// How a fault mode stresses one ECC word when its footprint is fully
/// active. Single-device modes corrupt one bit per word; a word fault can
/// corrupt several bits of the same word; rank-spanning alignment faults
/// hit multiple devices of the same word.
fn worst_case_word_corruption(mode: FaultMode) -> Vec<u8> {
    match mode {
        // One cell at a time: one bit per word access.
        FaultMode::SingleBit
        | FaultMode::SingleColumn
        | FaultMode::SingleRow
        | FaultMode::SingleBank => vec![11],
        // A weak word can flip neighbouring bits within one x8 device.
        FaultMode::SingleWord => vec![8, 9, 10],
        // A pin/lane fault: same lane each access — one bit per word, but
        // chronically. (An *aligned multi-device* variant would be two
        // distinct devices; model that as the stress case.)
        FaultMode::RankPin => vec![3, 3],
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let racks: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let ds = Dataset::generate(racks, seed);

    println!(
        "ECC what-if over {} ground-truth faults\n",
        ds.sim.ground_truth.len()
    );
    println!("worst-case word corruption per mode, judged by each code:");
    println!("{:<14} {:>22} {:>22}", "mode", "SEC-DED", "Chipkill");
    for mode in FaultMode::ALL {
        let bits = worst_case_word_corruption(mode);
        let secded = EccModel::SecDed.judge(&bits);
        let chipkill = EccModel::Chipkill.judge(&bits);
        println!(
            "{:<14} {:>22} {:>22}",
            mode.name(),
            label(secded),
            label(chipkill)
        );
    }

    // Error-volume view: how many of the generated errors came from
    // faults whose worst case stays correctable under each model.
    let mut visible = [0u64; 2];
    let mut total = 0u64;
    for g in &ds.sim.ground_truth {
        let bits = worst_case_word_corruption(g.fault.mode);
        total += g.offered_errors;
        if EccModel::SecDed.judge(&bits) == EccOutcome::Corrected {
            visible[0] += g.offered_errors;
        }
        if EccModel::Chipkill.judge(&bits) == EccOutcome::Corrected {
            visible[1] += g.offered_errors;
        }
    }
    println!(
        "\nerror volume whose worst case stays CE-visible:\n\
         SEC-DED : {:>12} / {} ({:.1}%)\n\
         Chipkill: {:>12} / {} ({:.1}%)",
        visible[0],
        total,
        100.0 * visible[0] as f64 / total as f64,
        visible[1],
        total,
        100.0 * visible[1] as f64 / total as f64,
    );
    println!(
        "\nreading: under SEC-DED, word faults and aligned multi-device faults\n\
         escalate to DUEs — exactly why the paper could not analyze\n\
         multi-rank/multi-bank CE modes (§3.2). Chipkill would keep whole-device\n\
         failures correctable, at higher cost and power (§2.2)."
    );
}

fn label(outcome: EccOutcome) -> &'static str {
    match outcome {
        EccOutcome::Corrected => "corrected (CE)",
        EccOutcome::DetectedUncorrectable => "DUE",
        EccOutcome::BeyondDetection => "beyond detection",
    }
}

//! Site report: the full production workflow — write the machine's logs
//! to disk in the published text formats, re-ingest them exactly as a
//! site's extraction scripts would, and render the complete reliability
//! report (every table and figure of the paper).
//!
//! ```text
//! cargo run --release --example site_report -- [racks] [seed] [outdir]
//! ```

use astra_core::experiments;
use astra_core::pipeline::{Analysis, AnalysisInput, Dataset};
use astra_core::tempcorr::TempCorrConfig;
use astra_util::time::{het_firmware_date, replacement_span, sensor_span, study_span, TimeSpan};
use astra_util::CalDate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let racks: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let outdir = args
        .next()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("astra-site-report"));

    eprintln!("simulating {racks} racks (seed {seed})...");
    let ds = Dataset::generate(racks, seed);

    eprintln!("writing logs to {}...", outdir.display());
    ds.write_logs(&outdir)?;

    eprintln!("re-ingesting text logs...");
    let input = AnalysisInput::from_dir(&outdir)?;
    eprintln!(
        "parsed {} CE, {} HET, {} inventory records ({} skipped lines)",
        input.records.len(),
        input.hets.len(),
        input.replacements.len(),
        input.skipped
    );

    let analysis = Analysis::run(ds.system, input.records);
    let config = TempCorrConfig::default();

    println!("==============================================================");
    println!(
        " Astra memory reliability report — {} nodes, seed {seed}",
        ds.system.node_count()
    );
    println!("==============================================================\n");

    println!(
        "{}",
        experiments::table1::compute(&ds.system, &input.replacements).render()
    );
    println!(
        "{}",
        experiments::fig2::compute(&ds.telemetry, sensor_span(), 8, 6 * 60).render()
    );
    println!(
        "{}",
        experiments::fig3::compute(&input.replacements, replacement_span()).render()
    );
    println!(
        "{}",
        experiments::fig4::compute(&analysis, study_span()).render()
    );
    println!("{}", experiments::fig5::compute(&analysis).render());
    println!("{}", experiments::fig6::compute(&analysis).render());
    println!("{}", experiments::fig7::compute(&analysis).render());
    println!("{}", experiments::fig8::compute(&analysis).render());
    println!(
        "{}",
        experiments::fig9::compute(&analysis, &ds.telemetry, sensor_span(), &config).render()
    );
    println!("{}", experiments::fig10_12::compute(&analysis).render());
    println!(
        "{}",
        experiments::fig13_14::compute_fig13(&analysis, &ds.telemetry, sensor_span(), &config)
            .render()
    );
    println!(
        "{}",
        experiments::fig13_14::compute_fig14(&analysis, &ds.telemetry, sensor_span(), &config)
            .render()
    );
    let window = TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14));
    println!(
        "{}",
        experiments::fig15::compute(&input.hets, window, ds.system.dimm_count()).render()
    );
    Ok(())
}

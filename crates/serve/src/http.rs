//! Minimal HTTP/1.1 plumbing: hand-rolled request parsing, response
//! writing, and a tiny blocking client for tests and smoke checks.
//!
//! Deliberately small — the daemon serves machine dashboards, not
//! browsers. One request per connection (`Connection: close`), no
//! chunked transfer, no keep-alive, ASCII request lines only. Anything
//! malformed gets a 400 and the connection is dropped.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Cap on request head size (request line + headers). Requests are tiny
/// GETs; anything bigger is abuse or a protocol error.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the sender per RFC; not remapped).
    pub method: String,
    /// Path as sent, query string stripped.
    pub path: String,
}

/// Read and parse one request head from `stream`. Returns `Err` with a
/// human-readable reason on anything malformed (the caller answers 400).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head_complete(&head) {
        if head.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("read: {e}")),
        };
        head.extend_from_slice(&buf[..n]);
    }
    let text = std::str::from_utf8(&head).map_err(|_| "request head is not UTF-8".to_string())?;
    let line = text.lines().next().ok_or("empty request")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(format!("bad request target {target}"));
    }
    Ok(Request { method, path })
}

/// Whether the buffered head already contains the header terminator.
fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}

/// Write one complete response and flush. Errors are returned so the
/// caller can count them, but a client that hung up mid-write is not an
/// event worth surfacing further.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A response as seen by the test client.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// `Content-Type` header value (empty when absent).
    pub content_type: String,
    /// Decoded body.
    pub body: String,
}

/// Blocking GET against `addr` — the "small Rust test client" CI and the
/// integration tests use instead of curl.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, String> {
    request(addr, "GET", path)
}

/// Blocking request with an arbitrary method (e.g. `POST /shutdown`).
pub fn request(addr: SocketAddr, method: &str, path: &str) -> Result<Response, String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("{method} {path} HTTP/1.1\r\nHost: astra\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head =
        std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8".to_string())?;
    let body = String::from_utf8_lossy(&raw[split + 4..]).into_owned();
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let content_type = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.trim().to_string())
        .unwrap_or_default();
    Ok(Response {
        status,
        content_type,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, "text/plain");
        assert_eq!(r.body, "hello");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
    }

    #[test]
    fn head_terminator_detection() {
        assert!(head_complete(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(head_complete(b"GET / HTTP/1.1\n\n"));
        assert!(!head_complete(b"GET / HTTP/1.1\r\n"));
    }
}

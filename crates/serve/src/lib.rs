//! Multi-tenant fleet-analysis daemon core.
//!
//! `astra-serve` turns any set of [`SiteSource`] tenants — one per log
//! directory — into a long-running daemon that ingests continuously and
//! answers concurrent HTTP/1.1 read queries from immutable snapshots:
//!
//! * **One ingest thread per site.** Each thread owns its source
//!   exclusively, polls it for newly-arrived records, and periodically
//!   asks it to checkpoint. No lock is ever held while ingesting.
//! * **Snapshot swap.** After folding new events in, the ingest thread
//!   builds a fresh [`SiteSnapshot`] (pre-rendered response bodies
//!   included) and swaps it behind an `Arc`. Readers clone the `Arc`
//!   under a mutex held for nanoseconds, then serialize the response
//!   with no lock at all — reads never block ingest, and ingest can
//!   never tear a response in flight.
//! * **Bounded accept queue.** A non-blocking accept loop feeds a
//!   `sync_channel` drained by a fixed worker pool; when the queue is
//!   full the daemon answers 503 immediately instead of stacking up
//!   unbounded connections.
//! * **Graceful shutdown.** `/shutdown` (or [`Server::trigger_shutdown`])
//!   stops the accept loop, lets workers drain queued requests, runs a
//!   final checkpoint per site, and joins every thread.
//!
//! The crate is analysis-agnostic: it knows nothing about memory errors
//! or analyzers, only that a tenant can `poll`, `checkpoint`, and
//! `snapshot` itself. `astra-core` provides the glue that adapts its
//! stream engine to this trait.

pub mod http;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use astra_obs::escape_json_str as escape_json;

/// One tenant of the daemon. Implementations own all mutable analysis
/// state; the server only ever touches a source from its single ingest
/// thread, so `Send` (not `Sync`) is enough.
pub trait SiteSource: Send {
    /// Stable tenant name (used in URLs: `/site/<name>/...`).
    fn name(&self) -> &str;
    /// Consume every record currently available; return how many were
    /// folded in. `Ok(0)` means "dry for now — poll again later".
    fn poll(&mut self) -> Result<u64, String>;
    /// Persist state so a restart resumes without replaying; returns
    /// whether a checkpoint was actually written (false = not configured).
    fn checkpoint(&mut self) -> Result<bool, String>;
    /// Build an immutable point-in-time snapshot, response bodies included.
    fn snapshot(&self) -> SiteSnapshot;
}

/// A pre-rendered response body for one endpoint of one site.
#[derive(Debug, Clone)]
pub struct View {
    /// URL leaf: `/site/<site>/<name>`.
    pub name: &'static str,
    /// `Content-Type` the body is served with.
    pub content_type: &'static str,
    /// The exact bytes served.
    pub body: String,
}

/// Immutable point-in-time state of one site, swapped whole behind an
/// `Arc` so readers always see a single consistent generation.
#[derive(Debug, Clone, Default)]
pub struct SiteSnapshot {
    /// Events folded into the analysis so far (resumed ones included).
    pub events: u64,
    /// Parsed records consumed per source stream.
    pub consumed: [u64; 4],
    /// Records quarantined across the site's logs.
    pub quarantined: u64,
    /// Log bytes read so far.
    pub bytes_read: u64,
    /// Faults identified by the analysis.
    pub faults: u64,
    /// Prediction alerts raised.
    pub alerts: u64,
    /// Checkpoints written since the daemon started.
    pub checkpoints: u64,
    /// Whether this site resumed from a checkpoint at startup.
    pub resumed: bool,
    /// Pre-rendered endpoint bodies (`analysis`, `spatial`, ...).
    pub views: Vec<View>,
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub listen: String,
    /// How long ingest threads sleep when their logs are dry.
    pub poll_interval: Duration,
    /// Checkpoint cadence per site; `None` checkpoints only at shutdown.
    pub checkpoint_every: Option<Duration>,
    /// Request worker threads.
    pub workers: usize,
    /// Bounded accept queue depth; beyond it, connections get 503.
    pub queue_depth: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            poll_interval: Duration::from_millis(200),
            checkpoint_every: None,
            workers: astra_util::par::worker_count(4),
            queue_depth: 64,
        }
    }
}

/// What readers see: a generation-stamped snapshot. Generation 0 is the
/// synchronous pre-ingest publish at startup; each subsequent publish
/// increments it, so "every site ≥ 1" means "every site has completed at
/// least one full poll of its logs".
struct Published {
    generation: u64,
    snap: SiteSnapshot,
    /// Set when ingest died (strict-mode quarantine, blown lenient
    /// budget, checkpoint I/O error). The last good snapshot stays
    /// readable; `/health` reports `degraded`.
    error: Option<String>,
}

struct SiteSlot {
    name: String,
    published: Mutex<Arc<Published>>,
}

impl SiteSlot {
    /// Clone the current snapshot `Arc` — the only reader-side lock, held
    /// for the duration of a pointer copy.
    fn read(&self) -> Arc<Published> {
        Arc::clone(&self.published.lock().expect("site slot poisoned"))
    }

    fn publish(&self, value: Published) {
        *self.published.lock().expect("site slot poisoned") = Arc::new(value);
    }
}

/// A running daemon: accept loop + worker pool + one ingest thread per
/// site. Create with [`Server::start`], stop with
/// [`Server::trigger_shutdown`] (or HTTP `/shutdown`), then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    sites: Arc<Vec<SiteSlot>>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, publish a generation-0 snapshot of every site synchronously
    /// (so every endpoint answers from the first instant), and spawn the
    /// ingest/accept/worker threads.
    pub fn start(sources: Vec<Box<dyn SiteSource>>, opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let slots: Vec<SiteSlot> = sources
            .iter()
            .map(|s| SiteSlot {
                name: s.name().to_string(),
                published: Mutex::new(Arc::new(Published {
                    generation: 0,
                    snap: s.snapshot(),
                    error: None,
                })),
            })
            .collect();
        let sites = Arc::new(slots);
        let registry = astra_obs::global();
        registry.gauge("serve.sites").set(sites.len() as f64);

        let mut threads = Vec::new();
        for (i, source) in sources.into_iter().enumerate() {
            let sites = Arc::clone(&sites);
            let shutdown = Arc::clone(&shutdown);
            let poll_interval = opts.poll_interval;
            let checkpoint_every = opts.checkpoint_every;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ingest-{}", source.name()))
                    .spawn(move || {
                        // A panicking tenant must not just vanish: catch
                        // the unwind, mark the site degraded (the last
                        // good snapshot stays readable), and count it —
                        // exactly the Err(poll) path, but for bugs.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            ingest_loop(
                                source,
                                &sites[i],
                                &shutdown,
                                poll_interval,
                                checkpoint_every,
                            )
                        }));
                        if let Err(payload) = run {
                            astra_obs::global().counter("serve.ingest.errors").inc();
                            let last = sites[i].read();
                            sites[i].publish(Published {
                                generation: last.generation + 1,
                                snap: last.snap.clone(),
                                error: Some(format!(
                                    "ingest thread panicked: {}",
                                    panic_message(payload.as_ref())
                                )),
                            });
                        }
                    })?,
            );
        }

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(opts.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for w in 0..opts.workers.max(1) {
            let rx = Arc::clone(&rx);
            let sites = Arc::clone(&sites);
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&rx, &sites, &shutdown))?,
            );
        }
        {
            let shutdown = Arc::clone(&shutdown);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || accept_loop(listener, tx, &shutdown))?,
            );
        }

        Ok(Server {
            addr,
            shutdown,
            sites,
            threads,
        })
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask every thread to wind down: accept stops, queued requests
    /// drain, each site writes a final checkpoint. Idempotent.
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// A cloneable handle that can request shutdown from another thread
    /// (e.g. a stdin-EOF watcher) while the `Server` itself is parked in
    /// [`Server::join`].
    pub fn shutdown_trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger(Arc::clone(&self.shutdown))
    }

    /// Whether shutdown has been requested (by HTTP or by trigger).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until every site has completed at least one full poll of its
    /// logs (generation ≥ 1). Returns false on timeout.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.sites.iter().all(|s| s.read().generation >= 1) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Join every thread. Call after [`Server::trigger_shutdown`] (or
    /// after a client hit `/shutdown`), otherwise this blocks forever.
    pub fn join(self) {
        for t in self.threads {
            // A panicked worker already printed its payload; the others
            // still deserve their final checkpoint.
            let _ = t.join();
        }
    }
}

/// A detached handle for requesting shutdown; see
/// [`Server::shutdown_trigger`].
#[derive(Clone)]
pub struct ShutdownTrigger(Arc<AtomicBool>);

impl ShutdownTrigger {
    /// Request shutdown. Idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Best-effort text of a panic payload (the `&str`/`String` cases the
/// standard panic machinery produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Per-site ingest: poll → publish → maybe checkpoint → sleep, until
/// shutdown; then one final drain-poll, final checkpoint, final publish.
fn ingest_loop(
    mut source: Box<dyn SiteSource>,
    slot: &SiteSlot,
    shutdown: &AtomicBool,
    poll_interval: Duration,
    checkpoint_every: Option<Duration>,
) {
    let registry = astra_obs::global();
    let ingested = registry.counter("serve.ingest.events");
    let checkpoints = registry.counter("serve.checkpoints");
    let mut generation = 0u64;
    let mut last_checkpoint = Instant::now();
    let publish = |source: &dyn SiteSource, generation: u64, error: Option<String>| {
        slot.publish(Published {
            generation,
            snap: source.snapshot(),
            error,
        });
    };

    loop {
        let stopping = shutdown.load(Ordering::SeqCst);
        match source.poll() {
            Ok(n) => {
                ingested.add(n);
                // Always publish the first generation (readiness signal)
                // and any generation that saw new data.
                if n > 0 || generation == 0 {
                    generation += 1;
                    publish(&*source, generation, None);
                }
            }
            Err(e) => {
                // Ingest is dead for this site (e.g. strict-mode
                // quarantine). Keep the last good snapshot readable and
                // surface the error; nothing more to poll.
                registry.counter("serve.ingest.errors").inc();
                generation += 1;
                publish(&*source, generation, Some(e));
                break;
            }
        }
        let due = checkpoint_every.is_some_and(|every| last_checkpoint.elapsed() >= every);
        if stopping || due {
            match source.checkpoint() {
                Ok(true) => {
                    checkpoints.inc();
                    last_checkpoint = Instant::now();
                    generation += 1;
                    publish(&*source, generation, None);
                }
                Ok(false) => last_checkpoint = Instant::now(),
                Err(e) => {
                    registry.counter("serve.ingest.errors").inc();
                    generation += 1;
                    publish(&*source, generation, Some(e));
                    break;
                }
            }
        }
        if stopping {
            break;
        }
        std::thread::sleep(poll_interval);
    }
}

/// Accept loop: non-blocking accept, bounded hand-off to the workers,
/// inline 503 when the queue is full.
fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, shutdown: &AtomicBool) {
    let rejected = astra_obs::global().counter("serve.rejected");
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    rejected.inc();
                    let _ = http::write_response(
                        &mut stream,
                        503,
                        "text/plain; charset=utf-8",
                        b"accept queue full\n",
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            // The accept poll bounds a fresh connection's queueing
            // latency, so keep it short; 5 ms is ~200 no-op syscalls per
            // idle second on one thread.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` closes the channel; workers drain what is queued and
    // then exit — the "finish in-flight requests" half of graceful
    // shutdown.
}

/// Worker: pull connections until the channel closes, answer each one.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, sites: &[SiteSlot], shutdown: &AtomicBool) {
    let registry = astra_obs::global();
    let requests = registry.counter("serve.requests");
    let request_ns = registry.timing("serve.request");
    loop {
        let stream = match rx.lock().expect("serve queue poisoned").recv() {
            Ok(s) => s,
            Err(_) => return, // accept loop is gone and the queue is drained
        };
        let started = Instant::now();
        requests.inc();
        handle_connection(stream, sites, shutdown);
        request_ns.record(started.elapsed().as_nanos() as u64);
    }
}

fn handle_connection(mut stream: TcpStream, sites: &[SiteSlot], shutdown: &AtomicBool) {
    let (status, content_type, body) = match http::read_request(&mut stream) {
        Ok(req) => route(&req, sites, shutdown),
        Err(reason) => (400, "text/plain; charset=utf-8", format!("{reason}\n")),
    };
    let _ = http::write_response(&mut stream, status, content_type, body.as_bytes());
}

/// Dispatch one request to a response. Every data endpoint reads exactly
/// one published snapshot, so a response can never mix generations.
fn route(
    req: &http::Request,
    sites: &[SiteSlot],
    shutdown: &AtomicBool,
) -> (u16, &'static str, String) {
    const TEXT: &str = "text/plain; charset=utf-8";
    const JSON: &str = "application/json";
    if req.path == "/shutdown" {
        if req.method != "GET" && req.method != "POST" {
            return (405, TEXT, "use GET or POST\n".to_string());
        }
        shutdown.store(true, Ordering::SeqCst);
        return (200, TEXT, "shutting down\n".to_string());
    }
    if req.method != "GET" {
        return (405, TEXT, "only GET is supported\n".to_string());
    }
    match req.path.as_str() {
        "/" | "/health" => (200, JSON, health_body(sites)),
        "/sites" => (200, JSON, sites_body(sites)),
        "/metrics" => (200, TEXT, astra_obs::global().snapshot().to_prometheus()),
        "/metrics.jsonl" => (
            200,
            "application/jsonl",
            astra_obs::global().snapshot().to_jsonl(),
        ),
        path => {
            let Some(rest) = path.strip_prefix("/site/") else {
                return (404, TEXT, format!("no such endpoint {path}\n"));
            };
            let (name, view) = match rest.split_once('/') {
                Some((name, view)) => (name, view),
                None => (rest, "health"),
            };
            let Some(slot) = sites.iter().find(|s| s.name == name) else {
                return (404, TEXT, format!("no such site {name}\n"));
            };
            let published = slot.read();
            if view == "health" {
                return (200, JSON, site_health_body(&slot.name, &published));
            }
            match published.snap.views.iter().find(|v| v.name == view) {
                // `Content-Type` values are &'static on View by design.
                Some(v) => (200, v.content_type, v.body.clone()),
                None => (404, TEXT, format!("site {name} has no view {view}\n")),
            }
        }
    }
}

/// Fleet health: `ok` until some site's ingest died, `ready` once every
/// site has completed its first full poll.
fn health_body(sites: &[SiteSlot]) -> String {
    let published: Vec<Arc<Published>> = sites.iter().map(|s| s.read()).collect();
    let errors = published.iter().filter(|p| p.error.is_some()).count();
    let ready = published.iter().all(|p| p.generation >= 1);
    let status = if errors == 0 { "ok" } else { "degraded" };
    format!(
        "{{\"status\":\"{status}\",\"ready\":{ready},\"sites\":{},\"ingest_errors\":{errors}}}\n",
        sites.len()
    )
}

fn site_summary_json(name: &str, p: &Published) -> String {
    let s = &p.snap;
    let error = match &p.error {
        Some(e) => format!("\"{}\"", escape_json(e)),
        None => "null".to_string(),
    };
    format!(
        "{{\"site\":\"{}\",\"generation\":{},\"events\":{},\"consumed\":[{},{},{},{}],\"quarantined\":{},\"bytes_read\":{},\"faults\":{},\"alerts\":{},\"checkpoints\":{},\"resumed\":{},\"error\":{error}}}",
        escape_json(name),
        p.generation,
        s.events,
        s.consumed[0],
        s.consumed[1],
        s.consumed[2],
        s.consumed[3],
        s.quarantined,
        s.bytes_read,
        s.faults,
        s.alerts,
        s.checkpoints,
        s.resumed,
    )
}

fn sites_body(sites: &[SiteSlot]) -> String {
    let mut out = String::from("[");
    for (i, slot) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&site_summary_json(&slot.name, &slot.read()));
    }
    out.push_str("]\n");
    out
}

fn site_health_body(name: &str, p: &Published) -> String {
    let mut out = site_summary_json(name, p);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic in-memory tenant: `budget` polls each yielding
    /// `per_poll` events, then dry.
    struct FakeSite {
        name: String,
        events: u64,
        per_poll: u64,
        budget: u64,
        checkpoints: u64,
        fail_poll: bool,
        /// Panic on the Nth poll (1-based) — the buggy-tenant case.
        panic_on_poll: Option<u64>,
        polls: u64,
    }

    impl FakeSite {
        fn new(name: &str, per_poll: u64, budget: u64) -> FakeSite {
            FakeSite {
                name: name.to_string(),
                events: 0,
                per_poll,
                budget,
                checkpoints: 0,
                fail_poll: false,
                panic_on_poll: None,
                polls: 0,
            }
        }
    }

    impl SiteSource for FakeSite {
        fn name(&self) -> &str {
            &self.name
        }

        fn poll(&mut self) -> Result<u64, String> {
            self.polls += 1;
            if self.panic_on_poll == Some(self.polls) {
                panic!("synthetic tenant bug");
            }
            if self.fail_poll {
                return Err("synthetic ingest failure".to_string());
            }
            if self.budget == 0 {
                return Ok(0);
            }
            self.budget -= 1;
            self.events += self.per_poll;
            Ok(self.per_poll)
        }

        fn checkpoint(&mut self) -> Result<bool, String> {
            self.checkpoints += 1;
            Ok(true)
        }

        fn snapshot(&self) -> SiteSnapshot {
            SiteSnapshot {
                events: self.events,
                consumed: [self.events, 0, 0, 0],
                checkpoints: self.checkpoints,
                views: vec![View {
                    name: "analysis",
                    content_type: "text/plain; charset=utf-8",
                    body: format!("{} events\n", self.events),
                }],
                ..SiteSnapshot::default()
            }
        }
    }

    fn quick_opts() -> ServeOptions {
        ServeOptions {
            poll_interval: Duration::from_millis(5),
            workers: 2,
            queue_depth: 8,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn serves_health_sites_and_views_then_shuts_down() {
        let sources: Vec<Box<dyn SiteSource>> = vec![
            Box::new(FakeSite::new("alpha", 10, 3)),
            Box::new(FakeSite::new("beta", 7, 2)),
        ];
        let server = Server::start(sources, &quick_opts()).unwrap();
        assert!(
            server.wait_ready(Duration::from_secs(5)),
            "sites never became ready"
        );
        let addr = server.addr();

        let health = http::get(addr, "/health").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"ready\":true"), "{}", health.body);
        assert!(health.body.contains("\"sites\":2"), "{}", health.body);

        // Poll until the fake sites drain their budgets.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let view = http::get(addr, "/site/alpha/analysis").unwrap();
            assert_eq!(view.status, 200);
            if view.body == "30 events\n" {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "alpha never drained: {}",
                view.body
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        let summary = http::get(addr, "/site/beta").unwrap();
        assert!(
            summary.body.contains("\"site\":\"beta\""),
            "{}",
            summary.body
        );
        assert!(summary.body.contains("\"events\":14"), "{}", summary.body);

        assert_eq!(http::get(addr, "/site/nope").unwrap().status, 404);
        assert_eq!(http::get(addr, "/site/alpha/nope").unwrap().status, 404);
        assert_eq!(http::get(addr, "/nope").unwrap().status, 404);
        assert_eq!(http::request(addr, "PUT", "/sites").unwrap().status, 405);

        let metrics = http::get(addr, "/metrics").unwrap();
        assert!(
            metrics.body.contains("serve_requests_total"),
            "{}",
            metrics.body
        );

        let bye = http::request(addr, "POST", "/shutdown").unwrap();
        assert_eq!(bye.body, "shutting down\n");
        server.join();
    }

    #[test]
    fn ingest_error_degrades_health_but_keeps_serving() {
        let mut site = FakeSite::new("solo", 5, 1);
        site.fail_poll = false;
        let server = Server::start(vec![Box::new(site)], &quick_opts()).unwrap();
        assert!(server.wait_ready(Duration::from_secs(5)));
        // Flip the published state to an error by hand: simulate what the
        // ingest loop does when poll() fails, without racing the thread.
        server.sites[0].publish(Published {
            generation: 99,
            snap: SiteSnapshot::default(),
            error: Some("synthetic ingest failure".to_string()),
        });
        let health = http::get(server.addr(), "/health").unwrap();
        assert!(
            health.body.contains("\"status\":\"degraded\""),
            "{}",
            health.body
        );
        assert!(
            health.body.contains("\"ingest_errors\":1"),
            "{}",
            health.body
        );
        let summary = http::get(server.addr(), "/site/solo").unwrap();
        assert!(
            summary
                .body
                .contains("\"error\":\"synthetic ingest failure\""),
            "{}",
            summary.body
        );
        server.trigger_shutdown();
        server.join();
    }

    #[test]
    fn ingest_panic_marks_the_site_degraded_instead_of_vanishing() {
        let mut site = FakeSite::new("boomy", 3, 1000);
        // First poll succeeds (readiness, generation 1); the second one
        // hits the tenant bug mid-loop.
        site.panic_on_poll = Some(2);
        let healthy = FakeSite::new("steady", 1, 1000);
        let server = Server::start(vec![Box::new(site), Box::new(healthy)], &quick_opts()).unwrap();
        assert!(server.wait_ready(Duration::from_secs(5)));
        // The unwind is caught by the ingest thread's wrapper, which
        // publishes the error; wait for that to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        let published = loop {
            let p = server.sites[0].read();
            if p.error.is_some() {
                break p;
            }
            assert!(Instant::now() < deadline, "panic was never published");
            std::thread::sleep(Duration::from_millis(10));
        };
        let error = published.error.as_deref().unwrap();
        assert!(
            error.contains("ingest thread panicked") && error.contains("synthetic tenant bug"),
            "{error}"
        );
        // The last good snapshot stays readable...
        assert_eq!(published.snap.events, 3);
        let health = http::get(server.addr(), "/health").unwrap();
        assert!(
            health.body.contains("\"status\":\"degraded\""),
            "{}",
            health.body
        );
        // ...and the healthy tenant keeps serving.
        let ok = http::get(server.addr(), "/site/steady").unwrap();
        assert!(ok.body.contains("\"error\":null"), "{}", ok.body);
        server.trigger_shutdown();
        server.join();
    }

    #[test]
    fn shutdown_runs_a_final_checkpoint_per_site() {
        let server =
            Server::start(vec![Box::new(FakeSite::new("ckpt", 1, 1))], &quick_opts()).unwrap();
        assert!(server.wait_ready(Duration::from_secs(5)));
        server.trigger_shutdown();
        server.join();
        // The final publish happens after the final checkpoint, so the
        // count is visible in the last snapshot... which we can no longer
        // query (server is gone) — assert via the global registry instead.
        assert!(
            astra_obs::global().snapshot().counter("serve.checkpoints") >= 1,
            "shutdown must write a final checkpoint"
        );
    }
}

//! Hazard-model component replacement simulator (§3.1 of the paper).
//!
//! Table 1 of the paper tallies hardware replaced during Astra's
//! stabilization period (Feb 17 – Sep 17, 2019): 836 processors (16.1 % of
//! 5,184), 46 motherboards (1.8 % of 2,592), and 1,515 DIMMs (3.7 % of
//! 41,472). Figure 3 shows the daily time series, whose shape the paper
//! narrates:
//!
//! * an **infant-mortality** burst at the start of tracking for all three
//!   components;
//! * a second processor wave months in, caused by a *memory-controller
//!   speed upgrade* performed in the field — parts that could not support
//!   the higher speed were swapped;
//! * a second motherboard uptick after months of sustained use;
//! * elevated mid-period DIMM replacement attributed to *cooling issues*,
//!   a steady late-period wear trend, and an end-of-period spike when
//!   vendor representatives were on site before the move to the closed
//!   network.
//!
//! The simulator encodes each narrative as a hazard-shape component
//! (decreasing Weibull for infant mortality, Gaussian bumps for event
//! waves, plateaus for sustained issues), normalizes the mixture so the
//! expected totals match Table 1's rates for the configured machine size,
//! and draws daily Poisson counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use astra_logs::{Component, ReplacementRecord};
use astra_topology::{DimmSlot, NodeId, SocketId, SystemConfig};
use astra_util::dist::{poisson, weibull_hazard};
use astra_util::time::{replacement_span, TimeSpan};
use astra_util::{CalDate, DetRng, StreamKey};

/// Shape of one contribution to a component's replacement hazard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HazardShape {
    /// Decreasing Weibull hazard (infant mortality): `weight`, `scale`
    /// (days), `shape` (< 1 for decreasing).
    InfantMortality {
        /// Relative weight of this component in the mixture.
        weight: f64,
        /// Weibull scale in days.
        scale: f64,
        /// Weibull shape (< 1 ⇒ decreasing hazard).
        shape: f64,
    },
    /// Gaussian event wave centered at `center_day` with `width_days`.
    Wave {
        /// Relative weight.
        weight: f64,
        /// Center, in days since tracking start.
        center_day: f64,
        /// Standard deviation in days.
        width_days: f64,
    },
    /// Constant hazard between two day offsets (inclusive start, exclusive
    /// end).
    Plateau {
        /// Relative weight.
        weight: f64,
        /// First day of the plateau.
        from_day: f64,
        /// Day the plateau ends.
        to_day: f64,
    },
}

impl HazardShape {
    /// Evaluate the (unnormalized) hazard contribution at day `d`.
    pub fn eval(&self, d: f64) -> f64 {
        match *self {
            HazardShape::InfantMortality {
                weight,
                scale,
                shape,
            } => weight * weibull_hazard(d + 0.5, scale, shape),
            HazardShape::Wave {
                weight,
                center_day,
                width_days,
            } => {
                let z = (d - center_day) / width_days;
                weight * (-0.5 * z * z).exp()
            }
            HazardShape::Plateau {
                weight,
                from_day,
                to_day,
            } => {
                if d >= from_day && d < to_day {
                    weight
                } else {
                    0.0
                }
            }
        }
    }
}

/// Replacement model for one component category.
#[derive(Debug, Clone)]
pub struct ComponentModel {
    /// Fraction of the installed population replaced over the tracking
    /// span (Table 1's "Percent of Total").
    pub replacement_rate: f64,
    /// Hazard mixture defining the daily shape.
    pub shapes: Vec<HazardShape>,
}

impl ComponentModel {
    /// Expected replacements per day (normalized so the series sums to
    /// `total` over `days`).
    pub fn daily_expectation(&self, days: u64, total: f64) -> Vec<f64> {
        let raw: Vec<f64> = (0..days)
            .map(|d| self.shapes.iter().map(|s| s.eval(d as f64)).sum())
            .collect();
        let sum: f64 = raw.iter().sum();
        if sum <= 0.0 {
            return vec![0.0; days as usize];
        }
        raw.into_iter().map(|w| w * total / sum).collect()
    }
}

/// The three component models plus the tracking span.
#[derive(Debug, Clone)]
pub struct ReplacementProfile {
    /// Tracking interval (Table 1: Feb 17 – Sep 17, 2019).
    pub span: TimeSpan,
    /// Processor model.
    pub processors: ComponentModel,
    /// Motherboard model.
    pub motherboards: ComponentModel,
    /// DIMM model.
    pub dimms: ComponentModel,
}

impl ReplacementProfile {
    /// Calibrated Astra profile matching Table 1 and Fig 3's narrative.
    pub fn astra() -> Self {
        ReplacementProfile {
            span: replacement_span(),
            processors: ComponentModel {
                replacement_rate: 0.161,
                shapes: vec![
                    // ~35% of processor replacements in the infant burst.
                    HazardShape::InfantMortality {
                        weight: 22.0,
                        scale: 25.0,
                        shape: 0.3,
                    },
                    // ~55%: the memory-controller speed-upgrade wave.
                    HazardShape::Wave {
                        weight: 1.57,
                        center_day: 130.0,
                        width_days: 14.0,
                    },
                    // ~10% steady background.
                    HazardShape::Plateau {
                        weight: 0.047,
                        from_day: 0.0,
                        to_day: 212.0,
                    },
                ],
            },
            motherboards: ComponentModel {
                replacement_rate: 0.018,
                shapes: vec![
                    // ~50% in the infant burst.
                    HazardShape::InfantMortality {
                        weight: 29.4,
                        scale: 20.0,
                        shape: 0.3,
                    },
                    // ~35%: second uptick after months of sustained use.
                    HazardShape::Wave {
                        weight: 0.78,
                        center_day: 125.0,
                        width_days: 18.0,
                    },
                    // ~15% steady background.
                    HazardShape::Plateau {
                        weight: 0.071,
                        from_day: 0.0,
                        to_day: 212.0,
                    },
                ],
            },
            dimms: ComponentModel {
                replacement_rate: 0.037,
                shapes: vec![
                    // ~35% in the infant burst.
                    HazardShape::InfantMortality {
                        weight: 21.2,
                        scale: 22.0,
                        shape: 0.3,
                    },
                    // ~32%: mid-period cooling issues.
                    HazardShape::Plateau {
                        weight: 0.43,
                        from_day: 60.0,
                        to_day: 135.0,
                    },
                    // ~18%: steady aging under heavy use.
                    HazardShape::Plateau {
                        weight: 0.23,
                        from_day: 135.0,
                        to_day: 212.0,
                    },
                    // ~15%: vendor representatives on site at the end.
                    HazardShape::Wave {
                        weight: 1.5,
                        center_day: 205.0,
                        width_days: 4.0,
                    },
                ],
            },
        }
    }
}

/// Simulate the replacement log for a machine.
///
/// Records are sorted by date; the expected totals equal the Table-1 rates
/// times the machine's installed population.
pub fn simulate_replacements(
    system: &SystemConfig,
    profile: &ReplacementProfile,
    seed: u64,
) -> Vec<ReplacementRecord> {
    let _span = astra_obs::span("replace.simulate");
    let mut rng = DetRng::for_stream(seed, StreamKey::root("replace"));
    let days = profile.span.days();
    let start = profile.span.start.date();

    let mut out: Vec<ReplacementRecord> = Vec::new();
    let populations: [(u64, &ComponentModel); 3] = [
        (u64::from(system.socket_count()), &profile.processors),
        (u64::from(system.node_count()), &profile.motherboards),
        (system.dimm_count(), &profile.dimms),
    ];
    for (cat, (population, model)) in populations.into_iter().enumerate() {
        let total = population as f64 * model.replacement_rate;
        let daily = model.daily_expectation(days, total);
        for (d, &expected) in daily.iter().enumerate() {
            let n = poisson(&mut rng, expected);
            for _ in 0..n {
                let node = NodeId(rng.below(u64::from(system.node_count())) as u32);
                let component = match cat {
                    0 => Component::Processor(SocketId(rng.below(2) as u8)),
                    1 => Component::Motherboard,
                    _ => Component::Dimm(
                        DimmSlot::from_index(rng.below(16) as u8).expect("slot < 16"),
                    ),
                };
                out.push(ReplacementRecord {
                    date: start.plus_days(d as i64),
                    node,
                    component,
                });
            }
        }
    }
    out.sort_by_key(|r| (r.date, r.node.0, r.component.category_index()));
    astra_obs::global()
        .counter("replace.records")
        .add(out.len() as u64);
    out
}

/// Aggregate a replacement log into daily counts per category:
/// `(dates, [processor, motherboard, dimm] series)`.
pub fn daily_series(
    records: &[ReplacementRecord],
    span: TimeSpan,
) -> (Vec<CalDate>, [Vec<u64>; 3]) {
    let days = span.days() as usize;
    let start_idx = span.start.date().day_index();
    let dates: Vec<CalDate> = (0..days)
        .map(|d| CalDate::from_day_index(start_idx + d as i64))
        .collect();
    let mut series = [vec![0u64; days], vec![0u64; days], vec![0u64; days]];
    for rec in records {
        let idx = rec.date.day_index() - start_idx;
        if (0..days as i64).contains(&idx) {
            series[rec.component.category_index()][idx as usize] += 1;
        }
    }
    (dates, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(racks: u32) -> (SystemConfig, Vec<ReplacementRecord>) {
        let system = SystemConfig::scaled(racks);
        let profile = ReplacementProfile::astra();
        let recs = simulate_replacements(&system, &profile, 42);
        (system, recs)
    }

    #[test]
    fn totals_match_table1_rates() {
        let (system, recs) = run(36);
        let count = |cat: usize| {
            recs.iter()
                .filter(|r| r.component.category_index() == cat)
                .count() as f64
        };
        let procs = count(0);
        let mobos = count(1);
        let dimms = count(2);
        // Poisson totals: allow 4 sigma.
        let expect = |target: f64, got: f64| {
            assert!(
                (got - target).abs() < 4.0 * target.sqrt(),
                "got {got}, expected ≈{target}"
            );
        };
        expect(f64::from(system.socket_count()) * 0.161, procs); // ≈ 836
        expect(f64::from(system.node_count()) * 0.018, mobos); // ≈ 46
        expect(system.dimm_count() as f64 * 0.037, dimms); // ≈ 1515
    }

    #[test]
    fn deterministic() {
        let (_, a) = run(6);
        let (_, b) = run(6);
        assert_eq!(a, b);
    }

    #[test]
    fn all_dates_inside_span() {
        let (_, recs) = run(6);
        let span = replacement_span();
        for r in &recs {
            assert!(r.date >= span.start.date());
            assert!(r.date < span.end.date());
        }
    }

    #[test]
    fn infant_mortality_shape() {
        // First 30 days should out-replace days 30-60 for every category
        // (decreasing early hazard).
        let (_, recs) = run(36);
        let start = replacement_span().start.date().day_index();
        for cat in 0..3usize {
            let early = recs
                .iter()
                .filter(|r| {
                    r.component.category_index() == cat && (r.date.day_index() - start) < 30
                })
                .count();
            let later = recs
                .iter()
                .filter(|r| {
                    r.component.category_index() == cat
                        && (30..60).contains(&(r.date.day_index() - start))
                })
                .count();
            assert!(
                early > later,
                "category {cat}: first month {early} should exceed second {later}"
            );
        }
    }

    #[test]
    fn processor_upgrade_wave_is_visible() {
        let (_, recs) = run(36);
        let start = replacement_span().start.date().day_index();
        let in_window = |r: &ReplacementRecord, lo: i64, hi: i64| {
            let d = r.date.day_index() - start;
            (lo..hi).contains(&d)
        };
        let wave: usize = recs
            .iter()
            .filter(|r| r.component.category_index() == 0 && in_window(r, 115, 145))
            .count();
        let quiet: usize = recs
            .iter()
            .filter(|r| r.component.category_index() == 0 && in_window(r, 70, 100))
            .count();
        assert!(
            wave > quiet * 2,
            "upgrade wave {wave} should dwarf the quiet period {quiet}"
        );
    }

    #[test]
    fn dimm_vendor_sweep_at_end() {
        let (_, recs) = run(36);
        let start = replacement_span().start.date().day_index();
        let last_twelve: usize = recs
            .iter()
            .filter(|r| r.component.category_index() == 2 && (r.date.day_index() - start) >= 200)
            .count();
        assert!(last_twelve > 30, "vendor sweep too small: {last_twelve}");
    }

    #[test]
    fn daily_series_partitions_records() {
        let (_, recs) = run(6);
        let (dates, series) = daily_series(&recs, replacement_span());
        assert_eq!(dates.len(), 212);
        let total: u64 = series.iter().map(|s| s.iter().sum::<u64>()).sum();
        assert_eq!(total, recs.len() as u64);
    }

    #[test]
    fn daily_expectation_normalizes() {
        let model = ReplacementProfile::astra().dimms;
        let daily = model.daily_expectation(212, 1515.0);
        let sum: f64 = daily.iter().sum();
        assert!((sum - 1515.0).abs() < 1e-6);
        assert!(daily.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn hazard_shapes_evaluate() {
        let infant = HazardShape::InfantMortality {
            weight: 1.0,
            scale: 20.0,
            shape: 0.5,
        };
        assert!(infant.eval(0.0) > infant.eval(10.0));
        let wave = HazardShape::Wave {
            weight: 1.0,
            center_day: 100.0,
            width_days: 10.0,
        };
        assert!(wave.eval(100.0) > wave.eval(80.0));
        let plateau = HazardShape::Plateau {
            weight: 2.0,
            from_day: 10.0,
            to_day: 20.0,
        };
        assert_eq!(plateau.eval(15.0), 2.0);
        assert_eq!(plateau.eval(25.0), 0.0);
    }
}

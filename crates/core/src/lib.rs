//! `astra-core`: the memory-failure analysis library.
//!
//! This crate is the reproduction's primary deliverable — the "canonical
//! tooling" version of the analysis the paper performs over Astra's logs.
//! It consumes the textual log formats of [`astra_logs`] (never simulator
//! internals, so it would run unchanged over the real published dataset)
//! and produces every table and figure of the paper's evaluation.
//!
//! The central methodological point of the paper is the distinction
//! between **errors** (individual corrected events in the syslog) and
//! **faults** (the underlying defects): analyses that look only at raw
//! error counts reach wrong conclusions about how failures are
//! distributed (§3.2, Figs 6, 7, 10, 12). Accordingly the heart of this
//! crate is [`mod@coalesce`] — grouping the CE stream into observed faults —
//! and [`classify`] — assigning each observed fault the mode vocabulary of
//! §2.1, subject to Astra's real observability limits (no row information,
//! SEC-DED-only protection).
//!
//! Modules:
//!
//! * [`mod@coalesce`] — error → fault coalescing over `(node, slot, rank)`
//!   populations, with rank-level (pin) extraction before per-bank
//!   footprint classification.
//! * [`classify`] — observed fault modes and per-mode tallies.
//! * [`spatial`] — error/fault aggregation by socket, bank, column, rank,
//!   slot, node, rack, region, bit position, and physical address.
//! * [`tempcorr`] — the §3.3 analyses: windowed pre-error temperature
//!   means (Fig 9), Schroeder-style temperature deciles (Fig 13), and the
//!   hot/cold utilization split (Fig 14).
//! * [`het`] — uncorrectable-error analysis and the FIT computation
//!   (Fig 15, §3.5).
//! * [`pipeline`] — end-to-end drivers: simulate → serialize to text logs
//!   → parse → analyze, the way a site would run the tools.
//! * [`experiments`] — one driver per paper table/figure, each returning a
//!   printable data structure (the `astra-bench` binaries call these).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cli;
pub mod coalesce;
pub mod experiments;
pub mod het;
pub mod mitigation;
pub mod modeling;
pub mod pipeline;
pub mod reliability;
pub mod serve;
pub mod shard;
pub mod spatial;
pub mod stream;
pub mod tempcorr;

pub use classify::ObservedMode;
pub use coalesce::{coalesce, ObservedFault};
pub use pipeline::{AnalysisInput, Dataset};

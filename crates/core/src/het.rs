//! Uncorrectable-error (HET) analysis (§3.5, Fig 15).
//!
//! Aggregates the Hardware Event Tracker log into the paper's two plots —
//! daily event counts per kind, and the NON-RECOVERABLE subset — and
//! computes the per-DIMM DUE rate and FIT figure.

use astra_logs::{HetKind, HetRecord, HetSeverity};
use astra_util::time::TimeSpan;
use astra_util::CalDate;

/// Daily event-count series per HET kind.
#[derive(Debug, Clone)]
pub struct HetSeries {
    /// Dates covered (daily).
    pub dates: Vec<CalDate>,
    /// For each kind present, `(kind, daily counts)`.
    pub by_kind: Vec<(HetKind, Vec<u64>)>,
}

impl HetSeries {
    /// Total events across all kinds.
    pub fn total(&self) -> u64 {
        self.by_kind
            .iter()
            .map(|(_, v)| v.iter().sum::<u64>())
            .sum()
    }
}

/// Build the daily series for records matching `filter`.
pub fn het_series(
    records: &[HetRecord],
    span: TimeSpan,
    filter: impl Fn(&HetRecord) -> bool,
) -> HetSeries {
    let days = span.days() as usize;
    let start_idx = span.start.date().day_index();
    let dates: Vec<CalDate> = (0..days)
        .map(|d| CalDate::from_day_index(start_idx + d as i64))
        .collect();
    let mut by_kind: Vec<(HetKind, Vec<u64>)> = Vec::new();
    for kind in HetKind::ALL {
        let mut series = vec![0u64; days];
        let mut any = false;
        for rec in records.iter().filter(|r| r.kind == kind && filter(r)) {
            let idx = rec.time.day_index() - start_idx;
            if (0..days as i64).contains(&idx) {
                series[idx as usize] += 1;
                any = true;
            }
        }
        if any {
            by_kind.push((kind, series));
        }
    }
    HetSeries { dates, by_kind }
}

/// All-severity series (Fig 15a).
pub fn all_events(records: &[HetRecord], span: TimeSpan) -> HetSeries {
    het_series(records, span, |_| true)
}

/// NON-RECOVERABLE subset (Fig 15b).
pub fn non_recoverable(records: &[HetRecord], span: TimeSpan) -> HetSeries {
    het_series(records, span, |r| r.severity == HetSeverity::NonRecoverable)
}

/// DUE statistics over an observation window (§3.5).
#[derive(Debug, Clone, Copy)]
pub struct DueStats {
    /// Memory DUE count observed.
    pub dues: u64,
    /// DIMM population.
    pub dimms: u64,
    /// Observation window in years.
    pub years: f64,
    /// DUEs per DIMM per year.
    pub dues_per_dimm_year: f64,
    /// FIT per DIMM (failures per 10⁹ device-hours).
    pub fit_per_dimm: f64,
}

/// Compute the paper's DUE rate and FIT from a HET log.
///
/// `window` should be the interval during which HET recording was active
/// (post-firmware), not the whole study span — using the whole span would
/// understate the rate.
pub fn due_stats(records: &[HetRecord], window: TimeSpan, dimms: u64) -> DueStats {
    let dues = records
        .iter()
        .filter(|r| r.kind.is_memory_due() && window.contains(r.time))
        .count() as u64;
    let years = window.years();
    let dues_per_dimm_year = if dimms == 0 || years <= 0.0 {
        0.0
    } else {
        dues as f64 / (dimms as f64 * years)
    };
    DueStats {
        dues,
        dimms,
        years,
        dues_per_dimm_year,
        fit_per_dimm: dues_per_dimm_year / 8760.0 * 1e9,
    }
}

/// Relative risk of a DUE for DIMMs with prior correctable faults.
///
/// Field studies consistently report prior CEs as the strongest DUE
/// predictor; this quantifies it on a dataset: the DUE rate among DIMMs
/// that carry at least one coalesced fault divided by the rate among the
/// rest. Returns `None` when either population is empty or saw no DUEs
/// at all.
pub fn due_relative_risk(
    faults: &[crate::coalesce::ObservedFault],
    hets: &[HetRecord],
    total_dimms: u64,
) -> Option<f64> {
    use std::collections::HashSet;
    let faulty: HashSet<(u32, usize)> = faults.iter().map(|f| (f.node.0, f.slot.index())).collect();
    let faulty_count = faulty.len() as u64;
    let healthy_count = total_dimms.checked_sub(faulty_count)?;
    if faulty_count == 0 || healthy_count == 0 {
        return None;
    }
    let mut on_faulty = 0u64;
    let mut on_healthy = 0u64;
    for rec in hets.iter().filter(|r| r.kind.is_memory_due()) {
        if let Some(slot) = rec.slot {
            if faulty.contains(&(rec.node.0, slot.index())) {
                on_faulty += 1;
            } else {
                on_healthy += 1;
            }
        }
    }
    if on_faulty + on_healthy == 0 {
        return None;
    }
    let rate_faulty = on_faulty as f64 / faulty_count as f64;
    // Avoid a zero denominator: use the rate a single DUE would imply as
    // the floor (standard continuity correction for small counts).
    let rate_healthy = (on_healthy.max(1) as f64) / healthy_count as f64;
    Some(rate_faulty / rate_healthy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::NodeId;
    use astra_util::Minute;

    fn rec(day: u32, kind: HetKind) -> HetRecord {
        HetRecord {
            time: CalDate::new(2019, 8, day).midnight().plus(60),
            node: NodeId(1),
            kind,
            severity: kind.severity(),
            slot: None,
        }
    }

    fn window() -> TimeSpan {
        TimeSpan::dates(CalDate::new(2019, 8, 23), CalDate::new(2019, 9, 14))
    }

    #[test]
    fn series_counts_by_day_and_kind() {
        let records = vec![
            rec(23, HetKind::UncorrectableEcc),
            rec(23, HetKind::UncorrectableEcc),
            rec(24, HetKind::RedundancyLost),
        ];
        let s = all_events(&records, window());
        assert_eq!(s.dates.len(), 22);
        assert_eq!(s.total(), 3);
        let ecc = s
            .by_kind
            .iter()
            .find(|(k, _)| *k == HetKind::UncorrectableEcc)
            .unwrap();
        assert_eq!(ecc.1[0], 2);
        assert_eq!(ecc.1[1], 0);
    }

    #[test]
    fn non_recoverable_filters() {
        let records = vec![
            rec(23, HetKind::UncorrectableEcc),
            rec(23, HetKind::RedundancyLost),
            rec(25, HetKind::UncorrectableMce),
        ];
        let s = non_recoverable(&records, window());
        assert_eq!(s.total(), 2);
        assert!(s
            .by_kind
            .iter()
            .all(|(k, _)| k.severity() == HetSeverity::NonRecoverable));
    }

    #[test]
    fn events_outside_span_ignored() {
        let mut early = rec(23, HetKind::UncorrectableEcc);
        early.time = Minute::from_i64(0);
        let s = all_events(&[early], window());
        assert_eq!(s.total(), 0);
        assert!(s.by_kind.is_empty());
    }

    #[test]
    fn due_stats_reproduce_fit() {
        // Construct the paper's rate exactly: 0.00948 DUE/DIMM/yr.
        let dimms = 41_472u64;
        let w = window();
        let target = 0.009_48 * dimms as f64 * w.years();
        let records: Vec<HetRecord> = (0..target.round() as usize)
            .map(|i| {
                let mut r = rec(23, HetKind::UncorrectableEcc);
                r.time = w.start.plus(i as i64);
                r
            })
            .collect();
        let stats = due_stats(&records, w, dimms);
        assert!(
            (stats.dues_per_dimm_year - 0.009_48).abs() < 0.001,
            "rate {}",
            stats.dues_per_dimm_year
        );
        assert!(
            (stats.fit_per_dimm - 1081.0).abs() < 60.0,
            "FIT {}",
            stats.fit_per_dimm
        );
    }

    #[test]
    fn due_stats_ignore_non_memory_kinds() {
        let records = vec![rec(23, HetKind::RedundancyLost)];
        let stats = due_stats(&records, window(), 1000);
        assert_eq!(stats.dues, 0);
        assert_eq!(stats.fit_per_dimm, 0.0);
    }

    #[test]
    fn relative_risk_on_simulated_dataset() {
        use crate::pipeline::{Analysis, Dataset};
        // Full-ish scale so there are enough DUEs to measure.
        let ds = Dataset::generate(16, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let rr = due_relative_risk(&analysis.faults, &ds.sim.het_log, ds.system.dimm_count());
        if let Some(rr) = rr {
            // 55% of DUEs on ~1.5% of DIMMs: the relative risk is large.
            assert!(rr > 5.0, "relative risk {rr} should be elevated");
        }
    }

    #[test]
    fn relative_risk_degenerate_inputs() {
        assert_eq!(due_relative_risk(&[], &[], 100), None);
    }
}

//! Mitigation policy evaluation: page retirement and node exclusion.
//!
//! §3.2 of the paper motivates both: "Mitigation methods like
//! page-retirement can easily map out small-footprint faults like
//! single-bit and single-word faults without significant penalty to
//! available system memory. However, single-bank errors can require
//! significant portions of memory address space to be mapped out" — and
//! "the relatively small number of faults per node suggest ... lightweight
//! mechanisms for fault mitigation like page retirement and an exclude
//! list for the small number of nodes experiencing large numbers of
//! faults."
//!
//! [`simulate_retirement`] replays the CE stream against a retirement
//! policy and reports how many errors the policy would have absorbed and
//! what it costs in retired memory. [`exclusion_curve`] quantifies the
//! exclude-list idea: errors avoided as a function of how many of the
//! worst nodes are removed.

use std::collections::{BTreeMap, HashMap, HashSet};

use astra_logs::{CeRecord, HetRecord};
use astra_predict::Alert;
use astra_topology::{DimmSlot, DramGeometry};

use crate::coalesce::ObservedFault;
use crate::pipeline::Analysis;

/// OS page size used for retirement accounting (4 KiB = 64 cache lines).
pub const PAGE_BYTES: u64 = 4096;

/// A page-retirement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetirementPolicy {
    /// No retirement: every error reaches the application/logs.
    None,
    /// Retire a page once it has produced `ce_threshold` correctable
    /// errors (the classic OS policy, cf. Tang et al.).
    Threshold {
        /// CEs on one page before it is retired.
        ce_threshold: u64,
    },
    /// Threshold policy with a per-fault budget: once a single fault has
    /// forced `max_pages_per_fault` retirements, stop retiring for it —
    /// the wide-footprint faults the paper warns about would otherwise
    /// consume unbounded memory.
    Budgeted {
        /// CEs on one page before it is retired.
        ce_threshold: u64,
        /// Pages one fault may consume before the policy gives up.
        max_pages_per_fault: u64,
    },
}

/// Outcome of replaying a CE stream through a retirement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetirementOutcome {
    /// Pages retired.
    pub retired_pages: u64,
    /// Errors that still occurred (before or despite retirement).
    pub residual_errors: u64,
    /// Errors avoided because their page had been retired.
    pub errors_avoided: u64,
    /// Faults fully silenced (no further errors after their last
    /// retirement).
    pub faults_contained: u64,
    /// Faults the policy gave up on (budget exhausted).
    pub faults_abandoned: u64,
}

impl RetirementOutcome {
    /// Retired memory in bytes.
    pub fn retired_bytes(&self) -> u64 {
        self.retired_pages * PAGE_BYTES
    }

    /// Fraction of all errors avoided.
    pub fn avoidance_rate(&self) -> f64 {
        let total = self.residual_errors + self.errors_avoided;
        if total == 0 {
            0.0
        } else {
            self.errors_avoided as f64 / total as f64
        }
    }
}

/// Page id of a record's address.
fn page_of(rec: &CeRecord) -> u64 {
    rec.addr.0 / PAGE_BYTES
}

/// Replay each fault's error sequence through the policy.
///
/// Errors are replayed in time order per fault. Retirement is modeled per
/// (node, page): once a page is retired, later errors of *any* fault at
/// that page on that node are avoided.
pub fn simulate_retirement(
    records: &[CeRecord],
    faults: &[ObservedFault],
    policy: RetirementPolicy,
) -> RetirementOutcome {
    let mut retired: HashSet<(u32, u64)> = HashSet::new();
    let mut page_counts: HashMap<(u32, u64), u64> = HashMap::new();
    let mut outcome = RetirementOutcome {
        retired_pages: 0,
        residual_errors: 0,
        errors_avoided: 0,
        faults_contained: 0,
        faults_abandoned: 0,
    };

    for fault in faults {
        let mut pages_this_fault = 0u64;
        let mut budget_exhausted = false;
        let mut saw_error_after_retire = false;
        let mut retired_for_fault = false;

        // record_indices are sorted ascending; records are time-sorted in
        // the pipeline, so this is time order.
        for &i in &fault.record_indices {
            let rec = &records[i as usize];
            let key = (rec.node.0, page_of(rec));
            if retired.contains(&key) {
                outcome.errors_avoided += 1;
                continue;
            }
            outcome.residual_errors += 1;
            if retired_for_fault {
                saw_error_after_retire = true;
            }
            let (threshold, budget) = match policy {
                RetirementPolicy::None => continue,
                RetirementPolicy::Threshold { ce_threshold } => (ce_threshold, u64::MAX),
                RetirementPolicy::Budgeted {
                    ce_threshold,
                    max_pages_per_fault,
                } => (ce_threshold, max_pages_per_fault),
            };
            let count = page_counts.entry(key).or_insert(0);
            *count += 1;
            if *count >= threshold {
                if pages_this_fault >= budget {
                    budget_exhausted = true;
                    continue;
                }
                retired.insert(key);
                outcome.retired_pages += 1;
                pages_this_fault += 1;
                retired_for_fault = true;
                saw_error_after_retire = false;
            }
        }

        if budget_exhausted {
            outcome.faults_abandoned += 1;
        } else if retired_for_fault && !saw_error_after_retire {
            outcome.faults_contained += 1;
        }
    }
    outcome
}

/// One point of the node-exclusion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExclusionPoint {
    /// Nodes excluded (the k worst by error count).
    pub excluded_nodes: usize,
    /// Fraction of all CEs those nodes account for.
    pub errors_avoided_fraction: f64,
    /// Fraction of the machine's capacity lost.
    pub capacity_lost_fraction: f64,
}

/// The exclude-list trade-off: for each k, what removing the k worst
/// nodes buys versus what it costs.
pub fn exclusion_curve(analysis: &Analysis, max_k: usize) -> Vec<ExclusionPoint> {
    let counts = analysis.spatial.error_counts_all_nodes(&analysis.system);
    let curve = astra_stats::top_share(&counts);
    let nodes = analysis.system.node_count() as f64;
    (0..=max_k.min(counts.len()))
        .map(|k| ExclusionPoint {
            excluded_nodes: k,
            errors_avoided_fraction: curve.share_of_top(k),
            capacity_lost_fraction: k as f64 / nodes,
        })
        .collect()
}

/// The smallest exclude list that removes at least `target` of all CEs.
pub fn smallest_exclusion_for(analysis: &Analysis, target: f64) -> usize {
    let counts = analysis.spatial.error_counts_all_nodes(&analysis.system);
    astra_stats::top_share(&counts).entities_for_share(target)
}

/// Ranks per DIMM throughout the workspace (the simulator injects on
/// rank 0 and 1).
const RANKS_PER_DIMM: u64 = 2;

/// Bytes of usable memory in one DRAM rank under `geom`.
pub fn rank_bytes(geom: &DramGeometry) -> u64 {
    u64::from(geom.banks)
        * u64::from(geom.rows)
        * u64::from(geom.cols)
        * u64::from(geom.cacheline_bits)
        / 8
}

/// What a proactive policy takes offline when a prediction alert fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProactivePolicy {
    /// Map out the alerted rank (offline page retirement of the whole
    /// rank — the aggressive end of the paper's page-retirement spectrum).
    RetireRank,
    /// Drain and exclude the alerted node (the paper's exclude-list idea,
    /// triggered by prediction instead of post-hoc triage).
    ExcludeNode,
}

/// Outcome of acting on every alert under a [`ProactivePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProactiveOutcome {
    /// Ranks retired or nodes excluded.
    pub units: usize,
    /// Memory taken offline, in bytes.
    pub reserved_bytes: u64,
    /// CEs that landed on a mitigated rank/node *after* its alert — errors
    /// the action absorbed.
    pub errors_avoided: u64,
    /// CEs that still reached the system (before any alert, or on
    /// unalerted hardware).
    pub residual_errors: u64,
    /// Memory DUEs on mitigated hardware after its alert — the crashes
    /// prediction would have prevented.
    pub dues_avoided: u64,
    /// Memory DUEs that still struck.
    pub dues_residual: u64,
}

impl ProactiveOutcome {
    /// Fraction of all CEs avoided.
    pub fn avoidance_rate(&self) -> f64 {
        let total = self.errors_avoided + self.residual_errors;
        if total == 0 {
            0.0
        } else {
            self.errors_avoided as f64 / total as f64
        }
    }
}

/// Score a prediction alert stream under a proactive policy: every CE and
/// memory DUE that lands on the alerted rank (or node) strictly after its
/// first alert counts as avoided; everything else is residual.
///
/// The trade the paper frames for reactive mitigation — errors absorbed
/// versus memory surrendered — applies unchanged here, just at rank/node
/// granularity: `RetireRank` costs [`rank_bytes`] per alerted rank,
/// `ExcludeNode` costs the node's full complement. HET records carry no
/// rank, so under `RetireRank` a DUE counts as avoided when *any* alerted
/// rank on that DIMM predates it (the DUE's rank is unobservable, exactly
/// as on the real machine).
pub fn simulate_proactive(
    records: &[CeRecord],
    hets: &[HetRecord],
    alerts: &[Alert],
    policy: ProactivePolicy,
    geom: &DramGeometry,
) -> ProactiveOutcome {
    // First alert time per mitigated unit. Alert keys collapse to the
    // policy's granularity: (node, slot, rank) for ranks, node for nodes.
    let mut first_alert: BTreeMap<(u32, usize, u8), astra_util::Minute> = BTreeMap::new();
    for a in alerts {
        let key = match policy {
            ProactivePolicy::RetireRank => (a.key.node.0, a.key.slot.index(), a.key.rank.0),
            ProactivePolicy::ExcludeNode => (a.key.node.0, 0, 0),
        };
        first_alert
            .entry(key)
            .and_modify(|t| *t = (*t).min(a.time))
            .or_insert(a.time);
    }

    let per_unit_bytes = match policy {
        ProactivePolicy::RetireRank => rank_bytes(geom),
        ProactivePolicy::ExcludeNode => rank_bytes(geom) * RANKS_PER_DIMM * DimmSlot::COUNT as u64,
    };

    let mut outcome = ProactiveOutcome {
        units: first_alert.len(),
        reserved_bytes: per_unit_bytes * first_alert.len() as u64,
        errors_avoided: 0,
        residual_errors: 0,
        dues_avoided: 0,
        dues_residual: 0,
    };

    for rec in records {
        let key = match policy {
            ProactivePolicy::RetireRank => (rec.node.0, rec.slot.index(), rec.rank.0),
            ProactivePolicy::ExcludeNode => (rec.node.0, 0, 0),
        };
        match first_alert.get(&key) {
            Some(&t) if rec.time > t => outcome.errors_avoided += 1,
            _ => outcome.residual_errors += 1,
        }
    }

    for het in hets {
        if !het.kind.is_memory_due() {
            continue;
        }
        let avoided = match policy {
            ProactivePolicy::RetireRank => het.slot.is_some_and(|slot| {
                (0..RANKS_PER_DIMM as u8).any(|rank| {
                    first_alert
                        .get(&(het.node.0, slot.index(), rank))
                        .is_some_and(|&t| het.time > t)
                })
            }),
            ProactivePolicy::ExcludeNode => first_alert
                .get(&(het.node.0, 0, 0))
                .is_some_and(|&t| het.time > t),
        };
        if avoided {
            outcome.dues_avoided += 1;
        } else {
            outcome.dues_residual += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::{coalesce, CoalesceConfig};
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId};
    use astra_util::CalDate;

    fn rec(node: u32, addr: u64, minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('A').unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 1).midnight().plus(minute),
            node: NodeId(node),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 1,
            row: None,
            col: 2,
            bit_pos: 9,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    fn replay(records: &[CeRecord], policy: RetirementPolicy) -> RetirementOutcome {
        let faults = coalesce(records, &CoalesceConfig::default());
        simulate_retirement(records, &faults, policy)
    }

    #[test]
    fn none_policy_avoids_nothing() {
        let records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        let out = replay(&records, RetirementPolicy::None);
        assert_eq!(out.errors_avoided, 0);
        assert_eq!(out.residual_errors, 50);
        assert_eq!(out.retired_pages, 0);
    }

    #[test]
    fn threshold_contains_sticky_bit() {
        // A stuck bit fires 50 times at one address; retiring at 5 CEs
        // absorbs the remaining 45.
        let records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        let out = replay(&records, RetirementPolicy::Threshold { ce_threshold: 5 });
        assert_eq!(out.retired_pages, 1);
        assert_eq!(out.residual_errors, 5);
        assert_eq!(out.errors_avoided, 45);
        assert_eq!(out.faults_contained, 1);
        assert!((out.avoidance_rate() - 0.9).abs() < 1e-12);
        assert_eq!(out.retired_bytes(), 4096);
    }

    #[test]
    fn same_page_faults_share_retirement() {
        // Two addresses on the same 4 KiB page: retiring the page for the
        // first fault also silences the second.
        let mut records: Vec<CeRecord> = (0..10).map(|m| rec(1, 0x5000, m)).collect();
        records.extend((0..10).map(|m| rec(1, 0x5040, 100 + m)));
        let out = replay(&records, RetirementPolicy::Threshold { ce_threshold: 5 });
        assert_eq!(out.retired_pages, 1);
        assert_eq!(out.errors_avoided, 15, "5 from fault 1, all 10 of fault 2");
    }

    #[test]
    fn different_nodes_do_not_share_pages() {
        let mut records: Vec<CeRecord> = (0..10).map(|m| rec(1, 0x5000, m)).collect();
        records.extend((0..10).map(|m| rec(2, 0x5000, m)));
        let out = replay(&records, RetirementPolicy::Threshold { ce_threshold: 5 });
        assert_eq!(out.retired_pages, 2);
    }

    #[test]
    fn budget_abandons_wide_faults() {
        // A column-like fault across 20 pages; budget of 3 pages gives up.
        let records: Vec<CeRecord> = (0..200u32)
            .map(|m| rec(1, 0x10000 + u64::from(m / 10) * PAGE_BYTES, i64::from(m)))
            .collect();
        let out = replay(
            &records,
            RetirementPolicy::Budgeted {
                ce_threshold: 5,
                max_pages_per_fault: 3,
            },
        );
        assert_eq!(out.retired_pages, 3);
        assert_eq!(out.faults_abandoned, 1);
        assert!(out.residual_errors > 100);
    }

    #[test]
    fn higher_threshold_retires_later() {
        let records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        let low = replay(&records, RetirementPolicy::Threshold { ce_threshold: 2 });
        let high = replay(&records, RetirementPolicy::Threshold { ce_threshold: 20 });
        assert!(low.errors_avoided > high.errors_avoided);
        assert_eq!(low.retired_pages, high.retired_pages);
    }

    #[test]
    fn exclusion_curve_on_synthetic_analysis() {
        use crate::pipeline::Dataset;
        let ds = Dataset::generate(1, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let curve = exclusion_curve(&analysis, 10);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].errors_avoided_fraction, 0.0);
        // Monotone non-decreasing avoidance; linear capacity cost.
        for pair in curve.windows(2) {
            assert!(pair[1].errors_avoided_fraction >= pair[0].errors_avoided_fraction);
        }
        assert!(curve[10].capacity_lost_fraction > 0.0);
        // A handful of nodes carries a large share.
        assert!(curve[5].errors_avoided_fraction > 0.3);

        let k = smallest_exclusion_for(&analysis, 0.5);
        assert!((1..30).contains(&k), "k = {k}");
    }

    fn test_alert(node: u32, minute: i64) -> astra_predict::Alert {
        use astra_predict::{DimmKey, EscalationLevel, FeatureVector};
        astra_predict::Alert {
            time: CalDate::new(2019, 3, 1).midnight().plus(minute),
            key: DimmKey {
                node: NodeId(node),
                slot: DimmSlot::from_letter('A').unwrap(),
                rank: RankId(0),
            },
            predictor: "rule",
            score: 1.0,
            features: FeatureVector {
                window_ces: 0.0,
                total_ces: 0,
                distinct_banks: 0,
                distinct_cols: 0,
                distinct_addrs: 0,
                distinct_lanes: 0,
                dominant_lane_share: 0.0,
                minutes_since_first: 0,
                escalation: EscalationLevel::SingleBit,
            },
        }
    }

    #[test]
    fn proactive_rank_retirement_absorbs_post_alert_errors() {
        use astra_topology::DramGeometry;
        // 10 CEs before the alert at minute 9, 40 after; a second node
        // never alerts.
        let mut records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        records.extend((0..10).map(|m| rec(2, 0x5000, m)));
        let alerts = vec![test_alert(1, 9)];
        let out = simulate_proactive(
            &records,
            &[],
            &alerts,
            ProactivePolicy::RetireRank,
            &DramGeometry::ASTRA,
        );
        assert_eq!(out.units, 1);
        assert_eq!(out.reserved_bytes, rank_bytes(&DramGeometry::ASTRA));
        assert_eq!(out.errors_avoided, 40);
        assert_eq!(out.residual_errors, 20, "pre-alert + unalerted node");
        assert!((out.avoidance_rate() - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn proactive_node_exclusion_covers_whole_node_and_dues() {
        use astra_logs::{HetKind, HetRecord};
        use astra_topology::DramGeometry;
        let base = CalDate::new(2019, 3, 1).midnight();
        // Post-alert errors on a *different* slot of the alerted node:
        // rank retirement misses them, node exclusion catches them.
        let slot_b = DimmSlot::from_letter('B').unwrap();
        let records: Vec<CeRecord> = (20..40)
            .map(|m| {
                let mut r = rec(1, 0x5000, m);
                r.slot = slot_b;
                r.socket = slot_b.socket();
                r
            })
            .collect();
        let due = HetRecord {
            time: base.plus(100),
            node: NodeId(1),
            kind: HetKind::UncorrectableEcc,
            severity: HetKind::UncorrectableEcc.severity(),
            slot: Some(slot_b),
        };
        let alerts = vec![test_alert(1, 9)];
        let rank = simulate_proactive(
            &records,
            std::slice::from_ref(&due),
            &alerts,
            ProactivePolicy::RetireRank,
            &DramGeometry::ASTRA,
        );
        assert_eq!(rank.errors_avoided, 0);
        assert_eq!(rank.dues_avoided, 0);
        assert_eq!(rank.dues_residual, 1);
        let node = simulate_proactive(
            &records,
            std::slice::from_ref(&due),
            &alerts,
            ProactivePolicy::ExcludeNode,
            &DramGeometry::ASTRA,
        );
        assert_eq!(node.errors_avoided, 20);
        assert_eq!(node.dues_avoided, 1);
        assert_eq!(node.dues_residual, 0);
        assert_eq!(
            node.reserved_bytes,
            rank.reserved_bytes * 2 * DimmSlot::COUNT as u64,
            "a node costs its full 16-DIMM, 2-ranks-per-DIMM complement"
        );
    }

    #[test]
    fn proactive_with_no_alerts_reserves_nothing() {
        use astra_topology::DramGeometry;
        let records: Vec<CeRecord> = (0..10).map(|m| rec(1, 0x5000, m)).collect();
        let out = simulate_proactive(
            &records,
            &[],
            &[],
            ProactivePolicy::ExcludeNode,
            &DramGeometry::ASTRA,
        );
        assert_eq!(out.units, 0);
        assert_eq!(out.reserved_bytes, 0);
        assert_eq!(out.errors_avoided, 0);
        assert_eq!(out.residual_errors, 10);
        assert_eq!(out.avoidance_rate(), 0.0);
    }

    #[test]
    fn retirement_on_simulated_dataset_matches_paper_logic() {
        // Small-footprint faults should be containable cheaply; the
        // machine-wide avoidance rate should be meaningful but bounded
        // (rank-level faults span pages).
        use crate::pipeline::Dataset;
        let ds = Dataset::generate(1, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let out = simulate_retirement(
            &analysis.records,
            &analysis.faults,
            RetirementPolicy::Budgeted {
                ce_threshold: 8,
                max_pages_per_fault: 16,
            },
        );
        assert!(out.retired_pages > 0);
        assert!(out.errors_avoided > 0);
        // Retired memory is tiny compared to the machine (the paper's
        // "without significant penalty" claim).
        let machine_bytes = ds.system.dimm_count() * 8 * 1024 * 1024 * 1024;
        assert!(out.retired_bytes() * 1000 < machine_bytes);
    }
}

//! Mitigation policy evaluation: page retirement and node exclusion.
//!
//! §3.2 of the paper motivates both: "Mitigation methods like
//! page-retirement can easily map out small-footprint faults like
//! single-bit and single-word faults without significant penalty to
//! available system memory. However, single-bank errors can require
//! significant portions of memory address space to be mapped out" — and
//! "the relatively small number of faults per node suggest ... lightweight
//! mechanisms for fault mitigation like page retirement and an exclude
//! list for the small number of nodes experiencing large numbers of
//! faults."
//!
//! [`simulate_retirement`] replays the CE stream against a retirement
//! policy and reports how many errors the policy would have absorbed and
//! what it costs in retired memory. [`exclusion_curve`] quantifies the
//! exclude-list idea: errors avoided as a function of how many of the
//! worst nodes are removed.

use std::collections::{HashMap, HashSet};

use astra_logs::CeRecord;

use crate::coalesce::ObservedFault;
use crate::pipeline::Analysis;

/// OS page size used for retirement accounting (4 KiB = 64 cache lines).
pub const PAGE_BYTES: u64 = 4096;

/// A page-retirement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetirementPolicy {
    /// No retirement: every error reaches the application/logs.
    None,
    /// Retire a page once it has produced `ce_threshold` correctable
    /// errors (the classic OS policy, cf. Tang et al.).
    Threshold {
        /// CEs on one page before it is retired.
        ce_threshold: u64,
    },
    /// Threshold policy with a per-fault budget: once a single fault has
    /// forced `max_pages_per_fault` retirements, stop retiring for it —
    /// the wide-footprint faults the paper warns about would otherwise
    /// consume unbounded memory.
    Budgeted {
        /// CEs on one page before it is retired.
        ce_threshold: u64,
        /// Pages one fault may consume before the policy gives up.
        max_pages_per_fault: u64,
    },
}

/// Outcome of replaying a CE stream through a retirement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetirementOutcome {
    /// Pages retired.
    pub retired_pages: u64,
    /// Errors that still occurred (before or despite retirement).
    pub residual_errors: u64,
    /// Errors avoided because their page had been retired.
    pub errors_avoided: u64,
    /// Faults fully silenced (no further errors after their last
    /// retirement).
    pub faults_contained: u64,
    /// Faults the policy gave up on (budget exhausted).
    pub faults_abandoned: u64,
}

impl RetirementOutcome {
    /// Retired memory in bytes.
    pub fn retired_bytes(&self) -> u64 {
        self.retired_pages * PAGE_BYTES
    }

    /// Fraction of all errors avoided.
    pub fn avoidance_rate(&self) -> f64 {
        let total = self.residual_errors + self.errors_avoided;
        if total == 0 {
            0.0
        } else {
            self.errors_avoided as f64 / total as f64
        }
    }
}

/// Page id of a record's address.
fn page_of(rec: &CeRecord) -> u64 {
    rec.addr.0 / PAGE_BYTES
}

/// Replay each fault's error sequence through the policy.
///
/// Errors are replayed in time order per fault. Retirement is modeled per
/// (node, page): once a page is retired, later errors of *any* fault at
/// that page on that node are avoided.
pub fn simulate_retirement(
    records: &[CeRecord],
    faults: &[ObservedFault],
    policy: RetirementPolicy,
) -> RetirementOutcome {
    let mut retired: HashSet<(u32, u64)> = HashSet::new();
    let mut page_counts: HashMap<(u32, u64), u64> = HashMap::new();
    let mut outcome = RetirementOutcome {
        retired_pages: 0,
        residual_errors: 0,
        errors_avoided: 0,
        faults_contained: 0,
        faults_abandoned: 0,
    };

    for fault in faults {
        let mut pages_this_fault = 0u64;
        let mut budget_exhausted = false;
        let mut saw_error_after_retire = false;
        let mut retired_for_fault = false;

        // record_indices are sorted ascending; records are time-sorted in
        // the pipeline, so this is time order.
        for &i in &fault.record_indices {
            let rec = &records[i as usize];
            let key = (rec.node.0, page_of(rec));
            if retired.contains(&key) {
                outcome.errors_avoided += 1;
                continue;
            }
            outcome.residual_errors += 1;
            if retired_for_fault {
                saw_error_after_retire = true;
            }
            let (threshold, budget) = match policy {
                RetirementPolicy::None => continue,
                RetirementPolicy::Threshold { ce_threshold } => (ce_threshold, u64::MAX),
                RetirementPolicy::Budgeted {
                    ce_threshold,
                    max_pages_per_fault,
                } => (ce_threshold, max_pages_per_fault),
            };
            let count = page_counts.entry(key).or_insert(0);
            *count += 1;
            if *count >= threshold {
                if pages_this_fault >= budget {
                    budget_exhausted = true;
                    continue;
                }
                retired.insert(key);
                outcome.retired_pages += 1;
                pages_this_fault += 1;
                retired_for_fault = true;
                saw_error_after_retire = false;
            }
        }

        if budget_exhausted {
            outcome.faults_abandoned += 1;
        } else if retired_for_fault && !saw_error_after_retire {
            outcome.faults_contained += 1;
        }
    }
    outcome
}

/// One point of the node-exclusion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExclusionPoint {
    /// Nodes excluded (the k worst by error count).
    pub excluded_nodes: usize,
    /// Fraction of all CEs those nodes account for.
    pub errors_avoided_fraction: f64,
    /// Fraction of the machine's capacity lost.
    pub capacity_lost_fraction: f64,
}

/// The exclude-list trade-off: for each k, what removing the k worst
/// nodes buys versus what it costs.
pub fn exclusion_curve(analysis: &Analysis, max_k: usize) -> Vec<ExclusionPoint> {
    let counts = analysis.spatial.error_counts_all_nodes(&analysis.system);
    let curve = astra_stats::top_share(&counts);
    let nodes = analysis.system.node_count() as f64;
    (0..=max_k.min(counts.len()))
        .map(|k| ExclusionPoint {
            excluded_nodes: k,
            errors_avoided_fraction: curve.share_of_top(k),
            capacity_lost_fraction: k as f64 / nodes,
        })
        .collect()
}

/// The smallest exclude list that removes at least `target` of all CEs.
pub fn smallest_exclusion_for(analysis: &Analysis, target: f64) -> usize {
    let counts = analysis.spatial.error_counts_all_nodes(&analysis.system);
    astra_stats::top_share(&counts).entities_for_share(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::{coalesce, CoalesceConfig};
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId};
    use astra_util::CalDate;

    fn rec(node: u32, addr: u64, minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('A').unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 1).midnight().plus(minute),
            node: NodeId(node),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 1,
            row: None,
            col: 2,
            bit_pos: 9,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    fn replay(records: &[CeRecord], policy: RetirementPolicy) -> RetirementOutcome {
        let faults = coalesce(records, &CoalesceConfig::default());
        simulate_retirement(records, &faults, policy)
    }

    #[test]
    fn none_policy_avoids_nothing() {
        let records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        let out = replay(&records, RetirementPolicy::None);
        assert_eq!(out.errors_avoided, 0);
        assert_eq!(out.residual_errors, 50);
        assert_eq!(out.retired_pages, 0);
    }

    #[test]
    fn threshold_contains_sticky_bit() {
        // A stuck bit fires 50 times at one address; retiring at 5 CEs
        // absorbs the remaining 45.
        let records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        let out = replay(&records, RetirementPolicy::Threshold { ce_threshold: 5 });
        assert_eq!(out.retired_pages, 1);
        assert_eq!(out.residual_errors, 5);
        assert_eq!(out.errors_avoided, 45);
        assert_eq!(out.faults_contained, 1);
        assert!((out.avoidance_rate() - 0.9).abs() < 1e-12);
        assert_eq!(out.retired_bytes(), 4096);
    }

    #[test]
    fn same_page_faults_share_retirement() {
        // Two addresses on the same 4 KiB page: retiring the page for the
        // first fault also silences the second.
        let mut records: Vec<CeRecord> = (0..10).map(|m| rec(1, 0x5000, m)).collect();
        records.extend((0..10).map(|m| rec(1, 0x5040, 100 + m)));
        let out = replay(&records, RetirementPolicy::Threshold { ce_threshold: 5 });
        assert_eq!(out.retired_pages, 1);
        assert_eq!(out.errors_avoided, 15, "5 from fault 1, all 10 of fault 2");
    }

    #[test]
    fn different_nodes_do_not_share_pages() {
        let mut records: Vec<CeRecord> = (0..10).map(|m| rec(1, 0x5000, m)).collect();
        records.extend((0..10).map(|m| rec(2, 0x5000, m)));
        let out = replay(&records, RetirementPolicy::Threshold { ce_threshold: 5 });
        assert_eq!(out.retired_pages, 2);
    }

    #[test]
    fn budget_abandons_wide_faults() {
        // A column-like fault across 20 pages; budget of 3 pages gives up.
        let records: Vec<CeRecord> = (0..200u32)
            .map(|m| rec(1, 0x10000 + u64::from(m / 10) * PAGE_BYTES, i64::from(m)))
            .collect();
        let out = replay(
            &records,
            RetirementPolicy::Budgeted {
                ce_threshold: 5,
                max_pages_per_fault: 3,
            },
        );
        assert_eq!(out.retired_pages, 3);
        assert_eq!(out.faults_abandoned, 1);
        assert!(out.residual_errors > 100);
    }

    #[test]
    fn higher_threshold_retires_later() {
        let records: Vec<CeRecord> = (0..50).map(|m| rec(1, 0x5000, m)).collect();
        let low = replay(&records, RetirementPolicy::Threshold { ce_threshold: 2 });
        let high = replay(&records, RetirementPolicy::Threshold { ce_threshold: 20 });
        assert!(low.errors_avoided > high.errors_avoided);
        assert_eq!(low.retired_pages, high.retired_pages);
    }

    #[test]
    fn exclusion_curve_on_synthetic_analysis() {
        use crate::pipeline::Dataset;
        let ds = Dataset::generate(1, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let curve = exclusion_curve(&analysis, 10);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].errors_avoided_fraction, 0.0);
        // Monotone non-decreasing avoidance; linear capacity cost.
        for pair in curve.windows(2) {
            assert!(pair[1].errors_avoided_fraction >= pair[0].errors_avoided_fraction);
        }
        assert!(curve[10].capacity_lost_fraction > 0.0);
        // A handful of nodes carries a large share.
        assert!(curve[5].errors_avoided_fraction > 0.3);

        let k = smallest_exclusion_for(&analysis, 0.5);
        assert!((1..30).contains(&k), "k = {k}");
    }

    #[test]
    fn retirement_on_simulated_dataset_matches_paper_logic() {
        // Small-footprint faults should be containable cheaply; the
        // machine-wide avoidance rate should be meaningful but bounded
        // (rank-level faults span pages).
        use crate::pipeline::Dataset;
        let ds = Dataset::generate(1, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let out = simulate_retirement(
            &analysis.records,
            &analysis.faults,
            RetirementPolicy::Budgeted {
                ce_threshold: 8,
                max_pages_per_fault: 16,
            },
        );
        assert!(out.retired_pages > 0);
        assert!(out.errors_avoided > 0);
        // Retired memory is tiny compared to the machine (the paper's
        // "without significant penalty" claim).
        let machine_bytes = ds.system.dimm_count() * 8 * 1024 * 1024 * 1024;
        assert!(out.retired_bytes() * 1000 < machine_bytes);
    }
}

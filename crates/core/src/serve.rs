//! Glue between the stream engine and the `astra-serve` daemon.
//!
//! `astra-serve` is analysis-agnostic: it serves any tenant implementing
//! its `SiteSource` trait. This module provides the memory-failure
//! implementation — [`EngineSource`] wraps a [`SiteEngine`] (tail-mode
//! incremental ingest with checkpoint/resume) and pre-renders the
//! response bodies each snapshot serves:
//!
//! | view (`/site/<name>/...`) | content | body |
//! |---------------------------|---------|------|
//! | `analysis` | text | byte-identical to `astra-mem analyze` stdout |
//! | `spatial`  | text | error/fault tables along every machine axis |
//! | `alerts`   | JSON | online UE-risk alerts with feature evidence |
//! | `quarantine` | JSON | per-reason quarantine counts |
//!
//! The `analysis` byte-identity is the serving contract: once a site's
//! logs are fully consumed, `GET /site/<name>/analysis` returns exactly
//! what `analyze` (or `stream-analyze`) would print for that directory.

use std::fmt::Write as _;
use std::path::Path;

use astra_logs::QuarantineReason;
use astra_serve::{ServeOptions, Server, SiteSnapshot, SiteSource, View};
use astra_topology::SystemConfig;

use crate::spatial::SpatialCounts;
use crate::stream::{site::SiteEngine, StreamError, StreamOptions, StreamReport};

/// A serve tenant backed by the incremental stream engine.
pub struct EngineSource {
    name: String,
    engine: SiteEngine,
}

impl EngineSource {
    /// Open `dir` as a tenant named after its final path component.
    /// Resumes from `opts.checkpoint_path` when a checkpoint (or its
    /// salvageable `.tmp` sibling) already exists there.
    pub fn open(
        dir: &Path,
        system: SystemConfig,
        opts: &StreamOptions,
    ) -> Result<Self, StreamError> {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string());
        Ok(EngineSource {
            name,
            engine: SiteEngine::open(dir, system, opts)?,
        })
    }
}

impl SiteSource for EngineSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self) -> Result<u64, String> {
        self.engine.poll().map_err(|e| e.to_string())
    }

    fn checkpoint(&mut self) -> Result<bool, String> {
        self.engine.checkpoint().map_err(|e| e.to_string())
    }

    fn snapshot(&self) -> SiteSnapshot {
        let report = self.engine.report();
        let quarantine = self.engine.quarantine();
        SiteSnapshot {
            events: self.engine.position(),
            consumed: self.engine.consumed(),
            quarantined: quarantine.total(),
            bytes_read: self.engine.bytes_read() as u64,
            faults: report.total_faults(),
            alerts: report.alerts.len() as u64,
            checkpoints: self.engine.checkpoints_written(),
            resumed: self.engine.resumed(),
            views: vec![
                View {
                    name: "analysis",
                    content_type: "text/plain; charset=utf-8",
                    body: analysis_body(&report),
                },
                View {
                    name: "spatial",
                    content_type: "text/plain; charset=utf-8",
                    body: spatial_body(&report.system, &report.spatial),
                },
                View {
                    name: "alerts",
                    content_type: "application/json",
                    body: alerts_body(&report),
                },
                View {
                    name: "quarantine",
                    content_type: "application/json",
                    body: quarantine_body(&quarantine),
                },
            ],
        }
    }
}

/// Exactly what `astra-mem analyze` prints for the same records — the
/// summary line plus the Fig 4 and Fig 5 renders, same renderers, same
/// order. The integration tests diff this against the binary's stdout.
fn analysis_body(report: &StreamReport) -> String {
    let mut out = format!(
        "{} errors -> {} faults on {} nodes\n",
        report.total_errors(),
        report.total_faults(),
        report.system.node_count()
    );
    out.push_str(&report.fig4.render());
    out.push_str(&report.fig5.render());
    out
}

/// Error/fault counts along every machine axis the paper analyzes, as an
/// aligned text table (the live-query counterpart of Figs 6, 7, 10, 12).
fn spatial_body(system: &SystemConfig, s: &SpatialCounts) -> String {
    let mut out = String::from("spatial error/fault tables\n");
    let mut section = |title: &str, rows: &[(String, u64, u64)]| {
        let _ = writeln!(out, "\n{title}:");
        let _ = writeln!(out, "  {:<10} {:>10} {:>8}", "", "errors", "faults");
        for (label, errors, faults) in rows {
            let _ = writeln!(out, "  {label:<10} {errors:>10} {faults:>8}");
        }
    };
    section(
        "by socket",
        &(0..2)
            .map(|i| {
                (
                    format!("socket {i}"),
                    s.errors_by_socket[i],
                    s.faults_by_socket[i],
                )
            })
            .collect::<Vec<_>>(),
    );
    section(
        "by rank",
        &(0..2)
            .map(|i| {
                (
                    format!("rank {i}"),
                    s.errors_by_rank[i],
                    s.faults_by_rank[i],
                )
            })
            .collect::<Vec<_>>(),
    );
    section(
        "by DIMM slot",
        &SpatialCounts::slot_labels()
            .iter()
            .enumerate()
            .map(|(i, letter)| {
                (
                    format!("slot {letter}"),
                    s.errors_by_slot[i],
                    s.faults_by_slot[i],
                )
            })
            .collect::<Vec<_>>(),
    );
    section(
        "by region",
        &SpatialCounts::region_labels()
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.to_string(),
                    s.errors_by_region[i],
                    s.faults_by_region[i],
                )
            })
            .collect::<Vec<_>>(),
    );
    section(
        "by rack",
        &s.errors_by_rack
            .iter()
            .zip(&s.faults_by_rack)
            .enumerate()
            .map(|(i, (e, f))| (format!("rack {i}"), *e, *f))
            .collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "\nnodes with errors: {} of {}; nodes with faults: {}",
        s.errors_by_node.distinct(),
        system.node_count(),
        s.faults_by_node.distinct()
    );
    out
}

/// The online UE-risk alerts as a JSON array, feature evidence included.
fn alerts_body(report: &StreamReport) -> String {
    let mut out = String::from("[");
    for (i, a) in report.alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"date\":\"{}\",\"minute\":{},\"node\":{},\"slot\":\"{}\",\"rank\":{},\
             \"predictor\":\"{}\",\"score\":{},\"window_ces\":{},\"total_ces\":{},\
             \"distinct_banks\":{}}}",
            a.time.date(),
            a.time.value(),
            a.key.node.0,
            a.key.slot.letter(),
            a.key.rank.0,
            astra_obs::escape_json_str(a.predictor),
            a.score,
            a.features.window_ces,
            a.features.total_ces,
            a.features.distinct_banks,
        );
    }
    out.push_str("]\n");
    out
}

/// Per-reason quarantine counts as JSON (the quarantine half of the
/// site-health story; totals ride on the summary endpoint).
fn quarantine_body(q: &astra_logs::Quarantine) -> String {
    let mut out = String::from("{\"total\":");
    let _ = write!(out, "{}", q.total());
    out.push_str(",\"by_reason\":{");
    let mut first = true;
    for reason in QuarantineReason::ALL {
        let n = q.count(reason);
        if n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{n}", reason.name());
    }
    out.push_str("}}\n");
    out
}

/// Open every directory in `dirs` as a tenant and start the daemon.
/// `stream_opts` is cloned per site with `checkpoint_path` defaulted to
/// `<dir>/serve.ckpt` when unset, so each tenant checkpoints (and
/// auto-resumes) independently inside its own directory.
///
/// Each site's machine shape comes from its own `manifest.txt` when it
/// has one (sites generated under different platform profiles or rack
/// counts coexist in one daemon); `default_system` applies to
/// manifest-less legacy sites. A damaged manifest fails startup — the
/// daemon must not silently serve a site under the wrong topology.
pub fn start_sites(
    dirs: &[std::path::PathBuf],
    default_system: SystemConfig,
    stream_opts: &StreamOptions,
    serve_opts: &ServeOptions,
) -> Result<Server, String> {
    let mut sources: Vec<Box<dyn SiteSource>> = Vec::with_capacity(dirs.len());
    for dir in dirs {
        let system = match crate::pipeline::load_manifest(dir).map_err(|e| e.to_string())? {
            Some(m) => astra_platform::by_name(&m.profile)
                .map_err(|e| format!("{}: {e}", dir.display()))?
                .system(Some(m.racks)),
            None => default_system,
        };
        let mut opts = stream_opts.clone();
        if opts.checkpoint_path.is_none() {
            opts.checkpoint_path = Some(dir.join("serve.ckpt"));
        }
        let source = EngineSource::open(dir, system, &opts)
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        sources.push(Box::new(source));
    }
    Server::start(sources, serve_opts).map_err(|e| format!("starting server: {e}"))
}

/// The analysis body for an arbitrary [`StreamReport`] — the oracle the
/// byte-identity tests compare live responses against.
pub fn report_analysis_body(report: &StreamReport) -> String {
    analysis_body(report)
}

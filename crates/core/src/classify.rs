//! Observed fault modes.
//!
//! These are the modes the *analyzer* can distinguish on Astra, which is a
//! strict subset of physical reality (§3.2):
//!
//! * single-row faults are indistinguishable from single-bank faults
//!   because the CE record carries no row information — both appear as a
//!   multi-column footprint within one bank;
//! * multi-rank faults would require multiple corrupted bits per ECC word,
//!   which SEC-DED cannot correct, so they never appear in the CE stream;
//! * rank-level pin faults *are* distinguishable (one bit lane across many
//!   banks of a rank) and carry most of the error volume, but the paper's
//!   Fig 4a legend reports only the four per-bank modes — our
//!   EXPERIMENTS.md notes this attribution explicitly.

use std::fmt;

/// Fault modes as inferable from Astra's CE records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObservedMode {
    /// All errors at one (address, bit).
    SingleBit,
    /// All errors at one address, several bits of one word.
    SingleWord,
    /// All errors in one column of one bank.
    SingleColumn,
    /// All errors in one bank, multiple columns. On Astra this bucket also
    /// absorbs true single-row faults (no row info in the records).
    SingleBank,
    /// One bit lane across many banks of a rank (pin/lane defect).
    RankLevel,
}

impl ObservedMode {
    /// All observable modes, in report order.
    pub const ALL: [ObservedMode; 5] = [
        ObservedMode::SingleBit,
        ObservedMode::SingleWord,
        ObservedMode::SingleColumn,
        ObservedMode::SingleBank,
        ObservedMode::RankLevel,
    ];

    /// Name used in reports (matches the paper's figure legends for the
    /// four per-bank modes).
    pub fn name(self) -> &'static str {
        match self {
            ObservedMode::SingleBit => "single-bit",
            ObservedMode::SingleWord => "single-word",
            ObservedMode::SingleColumn => "single-column",
            ObservedMode::SingleBank => "single-bank",
            ObservedMode::RankLevel => "rank-level",
        }
    }

    /// Stable index for array-based tallies.
    pub fn index(self) -> usize {
        match self {
            ObservedMode::SingleBit => 0,
            ObservedMode::SingleWord => 1,
            ObservedMode::SingleColumn => 2,
            ObservedMode::SingleBank => 3,
            ObservedMode::RankLevel => 4,
        }
    }

    /// Memory footprint class: whether page retirement can cheaply contain
    /// this fault (§3.2's mitigation discussion). Small-footprint faults
    /// (bit/word) cost one retired page; column and larger cost many.
    pub fn small_footprint(self) -> bool {
        matches!(self, ObservedMode::SingleBit | ObservedMode::SingleWord)
    }
}

impl fmt::Display for ObservedMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, m) in ObservedMode::ALL.into_iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn footprint_classes() {
        assert!(ObservedMode::SingleBit.small_footprint());
        assert!(ObservedMode::SingleWord.small_footprint());
        assert!(!ObservedMode::SingleColumn.small_footprint());
        assert!(!ObservedMode::SingleBank.small_footprint());
        assert!(!ObservedMode::RankLevel.small_footprint());
    }

    #[test]
    fn display_names() {
        assert_eq!(ObservedMode::SingleBank.to_string(), "single-bank");
    }
}

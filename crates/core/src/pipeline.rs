//! End-to-end drivers: simulate → text logs → parse → analyze.
//!
//! The paper's methodology (§1): "First, we extract relevant reliability
//! information from the various system logs. Then, we process these
//! extracted logs to reach the conclusions described in this paper."
//! [`Dataset`] plays the role of the machine (it *generates* logs);
//! [`AnalysisInput`] plays the role of the extraction step (it *parses*
//! text); [`Analysis`] is the processing step (coalescing + aggregation).
//!
//! The analyzer can also be fed records directly
//! ([`AnalysisInput::from_dataset_direct`]) to skip serialization when
//! benchmarking the analysis itself; the `parse_overhead` bench measures
//! exactly what that shortcut saves.

use std::io;
use std::path::{Path, PathBuf};

use astra_faultsim::{simulate, SimOutput, SimProfile};
use astra_logs::binfmt::{self, BinFormat, LogFormat};
use astra_logs::io::{self as logio, IngestError};
use astra_logs::manifest::{Manifest, ManifestError};
use astra_logs::{
    ce, het, inventory, sensor, CeRecord, HetRecord, IngestOptions, LineFormat, Quarantine,
    ReplacementRecord, SensorRecord,
};
use astra_platform::PlatformProfile;
use astra_replace::{simulate_replacements, ReplacementProfile};
use astra_telemetry::{TelemetryModel, ThermalProfile};
use astra_topology::SystemConfig;

use crate::coalesce::{CoalesceConfig, ObservedFault};
use crate::spatial::SpatialCounts;

/// A complete generated dataset: the simulated machine's output.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The machine configuration.
    pub system: SystemConfig,
    /// Master seed.
    pub seed: u64,
    /// Fault/error simulation output (CE log, HET log, ground truth).
    pub sim: SimOutput,
    /// Component replacement log.
    pub replacements: Vec<ReplacementRecord>,
    /// The telemetry source (functional; query on demand).
    pub telemetry: TelemetryModel,
    /// Memoized [`Dataset::sensor_excerpt`] — the excerpt is pure in the
    /// seed, and callers (both serializers, the tests) re-ask for it.
    sensor_cache: std::sync::OnceLock<Vec<SensorRecord>>,
}

impl Dataset {
    /// Generate the default calibrated dataset at a given machine scale.
    ///
    /// `racks = 36` is the full Astra machine (≈ 4.4 M CE records,
    /// a couple of seconds); tests typically use 1–4 racks.
    pub fn generate(racks: u32, seed: u64) -> Dataset {
        let system = SystemConfig::scaled(racks);
        Self::generate_with(
            system,
            &SimProfile::astra(),
            &ReplacementProfile::astra(),
            ThermalProfile::astra(),
            seed,
        )
    }

    /// Generate under a platform profile, at `racks` racks (or the
    /// profile's full machine size when `None`).
    ///
    /// For the `astra` profile this is bit-identical to
    /// [`Dataset::generate`] at the same rack count and seed: that
    /// profile bundles the exact calibrated sub-profiles the plain path
    /// uses (pinned by test and CI).
    pub fn generate_profile(profile: &PlatformProfile, racks: Option<u32>, seed: u64) -> Dataset {
        Self::generate_with(
            profile.system(racks),
            &profile.sim,
            &profile.replacement,
            profile.thermal.clone(),
            seed,
        )
    }

    /// Generate with explicit profiles.
    pub fn generate_with(
        system: SystemConfig,
        sim_profile: &SimProfile,
        replacement_profile: &ReplacementProfile,
        thermal_profile: ThermalProfile,
        seed: u64,
    ) -> Dataset {
        let _span = astra_obs::span("pipeline.generate");
        let sim = simulate(&system, sim_profile, seed);
        let replacements = simulate_replacements(&system, replacement_profile, seed);
        let telemetry = TelemetryModel::new(system, thermal_profile, seed);
        Dataset {
            system,
            seed,
            sim,
            replacements,
            telemetry,
            sensor_cache: std::sync::OnceLock::new(),
        }
    }

    /// Serialize the event logs to text (the published-dataset format).
    ///
    /// Returns `(ce_log, het_log, inventory_log)`. Note the CE log of a
    /// full-scale run is several hundred megabytes; prefer
    /// [`Dataset::write_logs`] for that.
    ///
    /// Each output `String` is pre-sized from the record count times the
    /// first line's length and records append in place, so serializing a
    /// multi-hundred-MB log performs no per-record allocation and no
    /// doubling-regrowth copies of the accumulated text.
    pub fn to_text(&self) -> (String, String, String) {
        fn serialize<T>(records: &[T], fill: impl Fn(&T, &mut String)) -> String {
            let mut out = String::new();
            let Some(first) = records.first() else {
                return out;
            };
            let mut probe = String::with_capacity(160);
            fill(first, &mut probe);
            // Lines of one log differ only in digit widths; first-line
            // length plus slack is a tight upper estimate.
            out.reserve(records.len() * (probe.len() + 16));
            for rec in records {
                fill(rec, &mut out);
                out.push('\n');
            }
            out
        }
        (
            serialize(&self.sim.ce_log, |r, buf| r.to_line_into(buf)),
            serialize(&self.sim.het_log, |r, buf| r.to_line_into(buf)),
            serialize(&self.replacements, |r, buf| r.to_line_into(buf)),
        )
    }

    /// Environmental-log excerpt settings: the full per-minute stream at
    /// machine scale is billions of samples (the real dataset is ~8 GiB),
    /// so the written `sensors.log` covers every `node_stride`-th node at
    /// `minute_stride`-minute cadence over the sensor interval.
    pub const SENSOR_NODE_STRIDE: u32 = 8;
    /// Minutes between written sensor samples.
    pub const SENSOR_MINUTE_STRIDE: u64 = 60;

    /// The sensor records the dataset excerpt contains (computed once,
    /// then served from the memo).
    pub fn sensor_excerpt(&self) -> &[SensorRecord] {
        self.sensor_cache.get_or_init(|| {
            let span = astra_util::time::sensor_span();
            let nodes = (0..self.system.node_count())
                .step_by(Self::SENSOR_NODE_STRIDE as usize)
                .map(astra_topology::NodeId);
            self.telemetry
                .records(nodes, span, Self::SENSOR_MINUTE_STRIDE)
        })
    }

    /// Write `ce.log`, `het.log`, `inventory.log`, and the `sensors.log`
    /// excerpt into a directory in the text format. Records stream
    /// through one reused line buffer per file — no per-record `String`.
    pub fn write_logs(&self, dir: &Path) -> io::Result<()> {
        self.write_logs_as(dir, LogFormat::Text)
    }

    /// As [`Dataset::write_logs`] with an explicit on-disk format. The
    /// file names are the same in both formats — readers dispatch on the
    /// magic bytes, not the name.
    pub fn write_logs_as(&self, dir: &Path, format: LogFormat) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        fn write<T>(
            dir: &Path,
            name: &str,
            format: LogFormat,
            bin: BinFormat<T>,
            records: &[T],
            fill: impl Fn(&T, &mut String),
        ) -> io::Result<()> {
            use std::io::Write as _;
            let mut f = io::BufWriter::new(std::fs::File::create(dir.join(name))?);
            match format {
                LogFormat::Text => {
                    logio::write_lines_with(&mut f, records.iter(), |rec, buf| fill(rec, buf))?;
                }
                LogFormat::Binary => {
                    binfmt::write_records(&mut f, bin, records)?;
                }
            }
            f.flush()
        }
        write(
            dir,
            "ce.log",
            format,
            binfmt::CE,
            &self.sim.ce_log,
            |r, buf| r.to_line_into(buf),
        )?;
        write(
            dir,
            "het.log",
            format,
            binfmt::HET,
            &self.sim.het_log,
            |r, buf| r.to_line_into(buf),
        )?;
        write(
            dir,
            "inventory.log",
            format,
            binfmt::INVENTORY,
            &self.replacements,
            |r, buf| r.to_line_into(buf),
        )?;
        write(
            dir,
            "sensors.log",
            format,
            binfmt::SENSOR,
            self.sensor_excerpt(),
            |r, buf| r.to_line_into(buf),
        )
    }
}

/// Why loading a log directory failed — the distinction an operator (and
/// [`AnalysisInput::from_dir`]'s callers) need: a required log that is
/// *absent* points at the extraction job, one that is *unreadable* points
/// at the file itself.
#[derive(Debug)]
pub enum LoadError {
    /// A required log file does not exist in the directory.
    MissingLog {
        /// Log file name (e.g. `ce.log`).
        name: &'static str,
        /// Full path that was probed.
        path: PathBuf,
    },
    /// The log exists but could not be read or decoded.
    Unreadable {
        /// Log file name.
        name: &'static str,
        /// Full path that failed.
        path: PathBuf,
        /// The underlying I/O or UTF-8 error.
        source: io::Error,
    },
    /// The log was readable but corrupt beyond the ingest policy: strict
    /// mode met a quarantined line, or a lenient run blew its
    /// `--max-bad-frac` budget. Carries the typed quarantine report so
    /// the operator sees *what kind* of corruption, with sample lines.
    Corrupt {
        /// Log file name.
        name: &'static str,
        /// Full path that failed.
        path: PathBuf,
        /// Per-reason quarantine counts and samples (boxed to keep the
        /// `Err` variant small — the success path pays its size).
        quarantine: Box<Quarantine>,
        /// Lines that parsed cleanly before the abort.
        lines_ok: u64,
    },
    /// The directory's `manifest.txt` exists but is unreadable or
    /// malformed. The provenance record cannot be trusted, and silently
    /// guessing a platform profile would defeat its purpose (evaluating
    /// under the wrong machine produces confidently wrong numbers).
    Manifest {
        /// Full path of the manifest file.
        path: PathBuf,
        /// What was wrong with it.
        source: ManifestError,
    },
}

/// Load a dataset directory's generation manifest.
///
/// `Ok(None)` means the directory has no `manifest.txt` — a legacy or
/// hand-assembled dataset; callers fall back to the Astra assumption
/// (usually with a warning). A manifest that exists but cannot be read
/// or parsed is [`LoadError::Manifest`], never a silent fallback.
pub fn load_manifest(dir: &Path) -> Result<Option<Manifest>, LoadError> {
    Manifest::load(dir).map_err(|source| LoadError::Manifest {
        path: Manifest::path_in(dir),
        source,
    })
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::MissingLog { name, path } => {
                write!(f, "required log {name} missing: {}", path.display())
            }
            LoadError::Unreadable { name, path, source } => {
                write!(f, "log {name} unreadable: {}: {source}", path.display())
            }
            LoadError::Corrupt {
                name,
                path,
                quarantine,
                lines_ok,
            } => {
                write!(
                    f,
                    "log {name} corrupt: {}: quarantined {} of {} lines {}",
                    path.display(),
                    quarantine.total(),
                    lines_ok + quarantine.total(),
                    quarantine.summary(),
                )?;
                let samples = quarantine.sample_lines();
                if !samples.is_empty() {
                    write!(f, "\n{}", samples.trim_end())?;
                }
                Ok(())
            }
            LoadError::Manifest { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::MissingLog { .. } | LoadError::Corrupt { .. } => None,
            LoadError::Unreadable { source, .. } => Some(source),
            LoadError::Manifest { source, .. } => Some(source),
        }
    }
}

/// Parsed analysis input: what the extraction step recovers from text.
#[derive(Debug, Clone)]
pub struct AnalysisInput {
    /// CE records.
    pub records: Vec<CeRecord>,
    /// HET records.
    pub hets: Vec<HetRecord>,
    /// Replacement records.
    pub replacements: Vec<ReplacementRecord>,
    /// Environmental sensor records (the dataset excerpt; may be empty
    /// for inputs without a `sensors.log`).
    pub sensors: Vec<SensorRecord>,
    /// Lines skipped as foreign/corrupt across all logs.
    pub skipped: u64,
    /// What was quarantined across all logs, by reason (empty unless a
    /// lenient [`AnalysisInput::from_dir_with`] load tolerated bad lines).
    pub quarantine: Quarantine,
}

impl AnalysisInput {
    /// Parse the three text logs. The CE log — by far the largest — is
    /// parsed in parallel shards.
    ///
    /// Reports failures as [`LoadError`] exactly like [`from_dir`]
    /// (`Unreadable` with the log's canonical name), so callers handle
    /// both entry points with one error path. The paths in those errors
    /// are the canonical log names — in-memory text has no directory.
    ///
    /// [`from_dir`]: AnalysisInput::from_dir
    pub fn from_text(ce_log: &str, het_log: &str, inventory_log: &str) -> Result<Self, LoadError> {
        let _span = astra_obs::span("pipeline.parse");
        let unreadable = |name: &'static str| {
            move |source: io::Error| LoadError::Unreadable {
                name,
                path: PathBuf::from(name),
                source,
            }
        };
        let ces = logio::parse_lines_parallel_metered(ce_log, CeRecord::parse_line, "ce");
        let hets = logio::read_lines_metered(het_log.as_bytes(), HetRecord::parse_line, "het")
            .map_err(unreadable("het.log"))?;
        let invs = logio::read_lines_metered(
            inventory_log.as_bytes(),
            ReplacementRecord::parse_line,
            "inventory",
        )
        .map_err(unreadable("inventory.log"))?;
        Ok(AnalysisInput {
            records: ces.records,
            hets: hets.records,
            replacements: invs.records,
            sensors: Vec::new(),
            skipped: ces.skipped + hets.skipped + invs.skipped,
            quarantine: Quarantine::default(),
        })
    }

    /// Read the logs from a directory written by [`Dataset::write_logs`],
    /// under the default (strict) ingest policy: any quarantined line
    /// aborts the load with [`LoadError::Corrupt`].
    pub fn from_dir(dir: &Path) -> Result<Self, LoadError> {
        Self::from_dir_with(dir, &IngestOptions::default())
    }

    /// As [`AnalysisInput::from_dir`] with an explicit ingest policy.
    /// `sensors.log` is optional (real extractions may ship telemetry
    /// separately); the other three are required, and a missing required
    /// log reports [`LoadError::MissingLog`] rather than a bare I/O error.
    ///
    /// Each file's format is auto-detected by magic bytes
    /// ([`binfmt::parse_file_auto`]): text logs stream through the
    /// chunked line parser, `astra-binlog` files through the CRC-framed
    /// block reader, and a directory may mix the two. At no point are
    /// the full log bytes and the parsed records resident together.
    /// Under a lenient policy, units quarantined within the per-file
    /// error budget land in [`AnalysisInput::quarantine`]; over budget
    /// (or any quarantined unit under the strict default) the load fails
    /// with [`LoadError::Corrupt`] carrying the typed report.
    pub fn from_dir_with(dir: &Path, opts: &IngestOptions) -> Result<Self, LoadError> {
        let _span = astra_obs::span("pipeline.parse");
        fn stream<T: Send>(
            dir: &Path,
            name: &'static str,
            format: LineFormat<T>,
            bin: BinFormat<T>,
            opts: &IngestOptions,
            stage: &str,
        ) -> Result<Option<(logio::ParsedLog<T>, Quarantine)>, LoadError> {
            let path = dir.join(name);
            match binfmt::parse_file_auto(&path, format, bin, opts, stage) {
                Ok(parsed) => Ok(Some(parsed)),
                Err(IngestError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Ok(None),
                Err(IngestError::Io(e)) => Err(LoadError::Unreadable {
                    name,
                    path,
                    source: e,
                }),
                Err(IngestError::Corrupt {
                    quarantine,
                    lines_ok,
                }) => Err(LoadError::Corrupt {
                    name,
                    path,
                    quarantine: Box::new(quarantine),
                    lines_ok,
                }),
            }
        }
        let require = |name: &'static str| LoadError::MissingLog {
            name,
            path: dir.join(name),
        };
        let (ces, ce_q) = stream(dir, "ce.log", ce::FORMAT, binfmt::CE, opts, "ce")?
            .ok_or_else(|| require("ce.log"))?;
        let (hets, het_q) = stream(dir, "het.log", het::FORMAT, binfmt::HET, opts, "het")?
            .ok_or_else(|| require("het.log"))?;
        let (invs, inv_q) = stream(
            dir,
            "inventory.log",
            inventory::FORMAT,
            binfmt::INVENTORY,
            opts,
            "inventory",
        )?
        .ok_or_else(|| require("inventory.log"))?;
        let (sensors, sensor_q) = stream(
            dir,
            "sensors.log",
            sensor::FORMAT,
            binfmt::SENSOR,
            opts,
            "sensors",
        )?
        .unwrap_or((
            logio::ParsedLog {
                records: Vec::new(),
                skipped: 0,
            },
            Quarantine::default(),
        ));
        let mut quarantine = ce_q;
        quarantine.merge(&het_q);
        quarantine.merge(&inv_q);
        quarantine.merge(&sensor_q);
        Ok(AnalysisInput {
            records: ces.records,
            hets: hets.records,
            replacements: invs.records,
            sensors: sensors.records,
            skipped: ces.skipped + hets.skipped + invs.skipped + sensors.skipped,
            quarantine,
        })
    }

    /// Take records directly from a dataset, skipping serialization.
    /// Semantically identical to a text roundtrip (the roundtrip is
    /// lossless — the integration tests verify it); used where the
    /// serialization cost is not the subject.
    ///
    /// Consumes the dataset: the CE/HET/replacement vectors move into the
    /// input rather than being deep-cloned (4.4 M records at full scale).
    /// Callers that still need the dataset clone it explicitly — the cost
    /// is then visible at the call site.
    pub fn from_dataset_direct(dataset: Dataset) -> Self {
        AnalysisInput {
            records: dataset.sim.ce_log,
            hets: dataset.sim.het_log,
            replacements: dataset.replacements,
            sensors: Vec::new(),
            skipped: 0,
            quarantine: Quarantine::default(),
        }
    }
}

/// The processed analysis state shared by the experiment drivers.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Machine configuration the records came from.
    pub system: SystemConfig,
    /// CE records (time-sorted as parsed).
    pub records: Vec<CeRecord>,
    /// Coalesced faults.
    pub faults: Vec<ObservedFault>,
    /// All spatial aggregations.
    pub spatial: SpatialCounts,
}

impl Analysis {
    /// Coalesce and aggregate a CE record stream.
    pub fn run(system: SystemConfig, records: Vec<CeRecord>) -> Analysis {
        Self::run_with(system, records, &CoalesceConfig::default())
    }

    /// As [`Analysis::run`] with an explicit coalescing configuration.
    pub fn run_with(
        system: SystemConfig,
        records: Vec<CeRecord>,
        config: &CoalesceConfig,
    ) -> Analysis {
        let mut span = astra_obs::span("pipeline.analyze");
        // One pass of the incremental engine over the record slice,
        // sharded across workers; shard merge is exact, so the output is
        // identical to the former separate coalesce + spatial passes at
        // any worker count.
        let (faults, spatial) = crate::stream::run_batch(&system, &records, config);

        let obs = astra_obs::global();
        obs.counter("coalesce.records_in").add(records.len() as u64);
        obs.counter("coalesce.faults_out").add(faults.len() as u64);
        if !records.is_empty() {
            // Coalescing ratio: how many raw CEs each inferred fault
            // absorbs on average (the paper's ~4.4M errors → ~27k faults
            // story at full scale).
            obs.gauge("coalesce.ratio")
                .set(records.len() as f64 / faults.len().max(1) as f64);
        }
        // Peak working set of the analysis stage: the record stream plus
        // the fault list with its per-fault record-index backing store.
        let record_bytes = records.len() * std::mem::size_of::<CeRecord>();
        let fault_bytes: usize = faults
            .iter()
            .map(|f| std::mem::size_of_val(f) + f.record_indices.len() * 4)
            .sum();
        obs.gauge("pipeline.workingset_bytes")
            .set_max((record_bytes + fault_bytes) as f64);
        span.attach("records_in", records.len() as i64);
        span.attach("faults_out", faults.len() as i64);
        drop(span);

        Analysis {
            system,
            records,
            faults,
            spatial,
        }
    }

    /// Total CE count.
    pub fn total_errors(&self) -> u64 {
        self.records.len() as u64
    }

    /// Total fault count.
    pub fn total_faults(&self) -> u64 {
        self.faults.len() as u64
    }

    /// Errors-per-fault counts (the Fig 4b population).
    pub fn errors_per_fault(&self) -> Vec<u64> {
        self.faults.iter().map(|f| f.error_count).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::generate(1, 42)
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let ds = dataset();
        let (ce, het, inv) = ds.to_text();
        let input = AnalysisInput::from_text(&ce, &het, &inv).unwrap();
        assert_eq!(input.records, ds.sim.ce_log);
        assert_eq!(input.hets, ds.sim.het_log);
        assert_eq!(input.replacements, ds.replacements);
        assert_eq!(input.skipped, 0);
    }

    #[test]
    fn direct_input_matches_text_input() {
        let ds = dataset();
        let (ce, het, inv) = ds.to_text();
        let via_text = AnalysisInput::from_text(&ce, &het, &inv).unwrap();
        let direct = AnalysisInput::from_dataset_direct(ds);
        assert_eq!(via_text.records, direct.records);
        assert_eq!(via_text.hets, direct.hets);
    }

    #[test]
    fn analysis_attributes_every_error_to_a_fault() {
        let ds = dataset();
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let attributed: u64 = analysis.faults.iter().map(|f| f.error_count).sum();
        assert_eq!(attributed, analysis.total_errors());
        assert!(analysis.total_faults() > 0);
        assert!(analysis.total_faults() < analysis.total_errors());
    }

    /// Removes its temp dir on drop, including when the test panics —
    /// otherwise a failing assertion leaks the directory and a later run
    /// (or a parallel test landing on the same name) sees stale logs.
    struct TempDirGuard(std::path::PathBuf);

    impl TempDirGuard {
        fn new(tag: &str) -> TempDirGuard {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            // pid alone collides when two test binaries fork from the
            // same runner or a previous run left the dir behind; a
            // per-process counter makes every call site unique.
            let dir = std::env::temp_dir().join(format!(
                "astra-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            TempDirGuard(dir)
        }
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn astra_profile_generation_is_bit_identical() {
        let plain = Dataset::generate(1, 42);
        let via = Dataset::generate_profile(&PlatformProfile::astra(), Some(1), 42);
        assert_eq!(plain.sim.ce_log, via.sim.ce_log);
        assert_eq!(plain.sim.het_log, via.sim.het_log);
        assert_eq!(plain.replacements, via.replacements);
        assert_eq!(plain.sensor_excerpt(), via.sensor_excerpt());
    }

    #[test]
    fn damaged_manifest_is_typed_error_not_fallback() {
        let guard = TempDirGuard::new("pipeline-manifest");
        std::fs::create_dir_all(&guard.0).unwrap();
        assert!(load_manifest(&guard.0).unwrap().is_none(), "absent → None");
        std::fs::write(guard.0.join("manifest.txt"), "nonsense\n").unwrap();
        match load_manifest(&guard.0) {
            Err(LoadError::Manifest { path, .. }) => {
                assert!(path.ends_with("manifest.txt"));
            }
            other => panic!("expected Manifest error, got {other:?}"),
        }
    }

    #[test]
    fn write_and_read_directory() {
        let ds = dataset();
        let guard = TempDirGuard::new("pipeline-test");
        ds.write_logs(&guard.0).unwrap();
        let input = AnalysisInput::from_dir(&guard.0).unwrap();
        assert_eq!(input.records.len(), ds.sim.ce_log.len());
        // The sensor excerpt roundtrips too.
        assert_eq!(input.sensors.len(), ds.sensor_excerpt().len());
        assert!(!input.sensors.is_empty());
    }

    #[test]
    fn binary_directory_reads_identically_to_text() {
        let ds = dataset();
        let guard = TempDirGuard::new("pipeline-bin");
        ds.write_logs_as(&guard.0, LogFormat::Binary).unwrap();
        let input = AnalysisInput::from_dir(&guard.0).unwrap();
        assert_eq!(input.records, ds.sim.ce_log);
        assert_eq!(input.hets, ds.sim.het_log);
        assert_eq!(input.replacements, ds.replacements);
        assert_eq!(input.skipped, 0);
        // The binary directory parses record-identical to the text one
        // (including the sensor values, which both formats quantize to
        // one decimal on write).
        let text_guard = TempDirGuard::new("pipeline-bin-text");
        ds.write_logs(&text_guard.0).unwrap();
        let text_input = AnalysisInput::from_dir(&text_guard.0).unwrap();
        assert_eq!(input.sensors, text_input.sensors);
        // Binary files are markedly smaller than their text peers.
        let size = |dir: &Path| -> u64 {
            std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().metadata().unwrap().len())
                .sum()
        };
        assert!(size(&guard.0) * 3 < size(&text_guard.0));
    }

    #[test]
    fn strict_dir_load_aborts_with_typed_report() {
        use std::io::Write as _;
        let ds = dataset();
        let guard = TempDirGuard::new("pipeline-strict");
        ds.write_logs(&guard.0).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(guard.0.join("inventory.log"))
            .unwrap();
        writeln!(f, "sshd[1]: accepted publickey for root").unwrap();
        drop(f);
        match AnalysisInput::from_dir(&guard.0) {
            Err(LoadError::Corrupt {
                name, quarantine, ..
            }) => {
                assert_eq!(name, "inventory.log");
                assert_eq!(
                    quarantine.count(astra_logs::QuarantineReason::UnknownFormat),
                    1
                );
            }
            other => panic!("expected Corrupt, got {:?}", other.map(|i| i.records.len())),
        }
    }

    #[test]
    fn lenient_dir_load_quarantines_and_continues() {
        use std::io::Write as _;
        let ds = dataset();
        let guard = TempDirGuard::new("pipeline-lenient");
        ds.write_logs(&guard.0).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(guard.0.join("ce.log"))
            .unwrap();
        writeln!(f, "sshd[1]: accepted publickey for root").unwrap();
        drop(f);
        let input = AnalysisInput::from_dir_with(&guard.0, &IngestOptions::lenient(None)).unwrap();
        assert_eq!(input.records.len(), ds.sim.ce_log.len());
        assert_eq!(input.records, ds.sim.ce_log);
        assert_eq!(input.skipped, 1);
        assert_eq!(input.quarantine.total(), 1);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let ds = dataset();
        let (mut ce, het, inv) = ds.to_text();
        ce.push_str("this is not a CE record\n");
        let input = AnalysisInput::from_text(&ce, &het, &inv).unwrap();
        assert_eq!(input.skipped, 1);
        assert_eq!(input.records.len(), ds.sim.ce_log.len());
    }
}

//! The `astra-mem` command-line interface.
//!
//! ```text
//! astra-mem generate       --racks 4 --seed 42 --out /data/astra-logs
//! astra-mem analyze        /data/astra-logs [--racks 4]
//! astra-mem stream-analyze /data/astra-logs [--checkpoint-every N --checkpoint F]
//! astra-mem report         /data/astra-logs [--racks 4]
//! astra-mem triage         /data/astra-logs [--racks 4]
//! ```
//!
//! `generate` simulates a machine and writes the text logs (`ce.log`,
//! `het.log`, `inventory.log`, plus a `sensors.log` excerpt). The other
//! commands ingest a log directory — from `generate` or, with the same
//! formats, from a real site — and run the analysis at increasing levels
//! of detail: `analyze` prints the coalescing summary, `stream-analyze`
//! prints the identical summary via the single-pass incremental engine
//! (bounded memory, checkpoint/resume), `report` renders every
//! table/figure of the paper, `triage` prints the operational outputs
//! (exclude list, retirement, replacement candidates).
//!
//! The binary in `src/bin/astra-mem.rs` is a thin shim over [`main`];
//! keeping the implementation in the library makes every command path
//! unit-testable and reusable.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::str::FromStr;

use astra_topology::SystemConfig;
use astra_util::time::{het_firmware_date, replacement_span, sensor_span, study_span, TimeSpan};
use astra_util::CalDate;

use astra_logs::binfmt::{self, LogFormat};
use astra_logs::{chaos, io as logio, BinFormat, IngestOptions, LineFormat, QuarantineReason};

use astra_logs::manifest::Manifest;
use astra_platform::PlatformProfile;

use crate::experiments as exp;
use crate::mitigation::{self, ProactivePolicy, RetirementPolicy};
use crate::pipeline::{load_manifest, Analysis, AnalysisInput, Dataset, LoadError};
use crate::reliability;
use crate::stream::{self, Analyzer as _, StreamError, StreamOptions};
use crate::tempcorr::TempCorrConfig;

const USAGE: &str = "\
astra-mem — memory-failure analysis toolkit (HPDC'22 Astra reproduction)

USAGE:
    astra-mem generate       [--profile P] [--racks N] [--seed S] [--format F] --out DIR
    astra-mem profiles
    astra-mem convert        DIR --to F [--out DIR2]
    astra-mem analyze        DIR [--racks N]
    astra-mem stream-analyze DIR [--racks N] [--checkpoint-every N --checkpoint FILE]
                                 [--resume FILE] [--stop-after N --checkpoint FILE]
                                 [--checkpoint-format F]
    astra-mem shard-analyze  DIR [--shards N] [--timeout SECS] [--retries N]
                                 [--degraded] [--racks N]
    astra-mem serve          DIR [DIR ...] [--racks N] [--listen ADDR]
                                 [--checkpoint-every SECS] [--poll-ms N]
    astra-mem report         DIR [--racks N] [--seed S]
    astra-mem triage         DIR [--racks N]
    astra-mem stats          DIR [--racks N] [--check FILE]
    astra-mem predict        DIR [--racks N] [--seed S]
    astra-mem predict        --train DIR [--train DIR ...] --eval DIR [--eval DIR ...]
    astra-mem fsck           DIR
    astra-mem chaos          DIR [--seed S]
    astra-mem trace          FILE

COMMANDS:
    generate        simulate a machine; write ce/het/inventory/sensors logs
                    (text lines by default, or the astra-binlog columnar
                    format with --format binary — same file names, every
                    reader auto-detects by magic bytes) plus a manifest.txt
                    recording the platform profile, seed, racks, and format
                    so consumers never have to guess the provenance
    profiles        list the registered platform profiles (calibration packs
                    for different machine families; pick one with --profile)
    convert         re-encode a log directory to --to {text,binary}; writes
                    in place unless --out names a second directory. Either
                    direction round-trips: analysis output is byte-identical
                    across formats
    analyze         parse a log directory and print the fault summary
    stream-analyze  same summary via the single-pass incremental engine:
                    memory bounded by analyzer state, with optional
                    checkpoint/resume (output is byte-identical to analyze)
    shard-analyze   run the analysis as supervised worker subprocesses, one
                    per contiguous rack range, and merge their serialized
                    snapshots — stdout byte-identical to analyze at any
                    shard count. Workers that crash, hang past --timeout,
                    or return a torn snapshot are retried with exponential
                    backoff; a shard that stays dead aborts the run
                    (strict, default) or — with --degraded — is reported
                    as a `DEGRADED: missing racks R..R'` banner over the
                    merged survivors, with exit code 3
    serve           long-running daemon: tail every DIR as an independent
                    site (text or binary logs, auto-detected), checkpoint
                    each to <dir>/serve.ckpt on a timer and resume from it
                    on restart, and answer concurrent HTTP/1.1 queries
                    (/health, /sites, /site/<name>/{analysis,spatial,
                    alerts,quarantine}, /metrics, /metrics.jsonl) from
                    immutable snapshots — a fully-ingested site's
                    /analysis body is byte-identical to `analyze` output.
                    Stop with GET/POST /shutdown or by closing stdin;
                    both drain in-flight requests and checkpoint first
    report          render every table and figure of the paper
    triage          operational outputs: exclude list, retirement, replacements
    stats           pipeline health report: throughput, drop/skip rates, ratios
                    (ingests leniently so it can diagnose dirty datasets)
    predict         replay the CE stream through online UE predictors; score
                    precision/recall/lead time against simulator ground truth
                    (re-derived from the directory's manifest — profile, racks,
                    seed — or from --racks/--seed for legacy directories).
                    With --train/--eval: fit a logistic predictor on each
                    --train directory, score it on every --eval directory, and
                    print the cross-platform transfer matrix
    fsck            scan a log directory and print a per-file corruption
                    report (what a lenient ingest would quarantine, by
                    reason); exits nonzero when anything is quarantined.
                    Binary logs are verified by a CRC sweep + header
                    validation — no decode — so the scan is near I/O speed
    chaos           deterministically corrupt a dataset in place (test tool:
                    bit flips, truncation, foreign lines, reordering) and
                    print the injected-corruption manifest in fsck's format
    trace           read a Chrome trace JSON written by --trace-out and print
                    the flame table: per-path invocation counts, total vs
                    self time, and peak/net memory when the byte-counting
                    allocator is measuring

OPTIONS:
    --profile P           (generate) platform profile: astra (default),
                          x86-ddr4, datacenter — see `astra-mem profiles`
    --racks N             machine size in racks (default 4; Astra is 36)
    --seed S              master seed (default 42)
    --train DIR           (predict) dataset to fit a predictor on; repeatable
    --eval DIR            (predict) dataset to score predictors on; repeatable
    --out DIR             output directory for generate / convert
    --format F            (generate) on-disk log format: text (default) or
                          binary (astra-binlog columnar, ~10x faster to
                          serialize+parse and a fraction of the bytes)
    --to F                (convert) target format: text or binary
    --metrics-out FILE    write all metrics as JSON lines to FILE on exit
    --trace-out FILE      record the span timeline and write it as Chrome
                          trace-event JSON to FILE on exit (any command;
                          view in chrome://tracing or ui.perfetto.dev, or
                          render with `astra-mem trace FILE`)
    --check FILE          (stats) compare live metrics against the JSON-lines
                          threshold file; exit nonzero on any violation
    --lenient             quarantine unparseable lines instead of aborting
    --max-bad-frac F      per-file quarantine budget for --lenient
                          (fraction of lines, default 0.05; implies --lenient)
    --shards N            (shard-analyze) worker subprocess count (default 2,
                          clamped to the rack count)
    --timeout SECS        (shard-analyze) per-attempt wall-clock deadline:
                          a worker past it is killed, reaped, and retried
                          (default 600)
    --retries N           (shard-analyze) retries per shard after its first
                          attempt (default 2)
    --degraded            (shard-analyze) when a shard exhausts its retries,
                          emit the merged survivors with a missing-racks
                          banner and exit 3 instead of aborting
    --checkpoint FILE     (stream-analyze) where to write checkpoints
    --checkpoint-every N  (stream-analyze) checkpoint every N events;
                          (serve) checkpoint every site every N seconds
    --listen ADDR         (serve) bind address (default 127.0.0.1:7433;
                          port 0 picks an ephemeral port — the bound
                          address is printed on startup either way)
    --poll-ms N           (serve) how often to re-probe dry logs for new
                          records (default 200)
    --resume FILE         (stream-analyze) resume from a checkpoint
    --stop-after N        (stream-analyze) checkpoint and stop after N events
    --checkpoint-format F (stream-analyze) checkpoint encoding: text
                          (default) or binary; resume auto-detects either
";

#[derive(Debug)]
struct Args {
    command: String,
    dir: Option<PathBuf>,
    /// Additional site directories — only `serve` accepts more than one.
    extra_dirs: Vec<PathBuf>,
    listen: Option<String>,
    poll_ms: u64,
    /// `None` when `--racks` was not given: commands use the manifest's
    /// recorded rack count when one exists, else the default of 4.
    racks: Option<u32>,
    /// `None` when `--seed` was not given (manifest seed, else 42).
    seed: Option<u64>,
    /// Platform profile name (`--profile`); `None` means the manifest's
    /// recorded profile, else astra.
    profile: Option<String>,
    /// (predict) training dataset directories for the transfer matrix.
    train_dirs: Vec<PathBuf>,
    /// (predict) evaluation dataset directories for the transfer matrix.
    eval_dirs: Vec<PathBuf>,
    out: Option<PathBuf>,
    format: LogFormat,
    to: Option<LogFormat>,
    checkpoint_format: LogFormat,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    check: Option<PathBuf>,
    lenient: bool,
    max_bad_frac: Option<f64>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: Option<PathBuf>,
    stop_after: Option<u64>,
    /// (shard-analyze) worker count; `None` means the default of 2.
    shards: Option<u32>,
    /// (shard-analyze) per-attempt deadline in seconds.
    timeout_secs: u64,
    /// (shard-analyze) retries per shard after the first attempt.
    retries: u32,
    /// (shard-analyze) partial-results policy after retries run out.
    degraded: bool,
    /// (shard-worker) first rack, inclusive.
    rack_lo: Option<u32>,
    /// (shard-worker) last rack, exclusive.
    rack_hi: Option<u32>,
    /// (shard-worker) which shard this worker is.
    shard_index: u32,
    /// (shard-worker) where the serialized snapshot goes.
    snapshot_out: Option<PathBuf>,
}

impl Args {
    /// Rack count when no manifest overrides it: the explicit flag, else 4.
    fn racks_or_default(&self) -> u32 {
        self.racks.unwrap_or(4)
    }

    /// Seed when no manifest overrides it: the explicit flag, else 42.
    fn seed_or_default(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// The ingest policy the flags ask for: strict unless `--lenient`
    /// (which `--max-bad-frac` implies).
    fn ingest(&self) -> IngestOptions {
        if self.lenient || self.max_bad_frac.is_some() {
            IngestOptions::lenient(self.max_bad_frac)
        } else {
            IngestOptions::default()
        }
    }
}

/// Pull the `text`/`binary` format name that must follow `flag`.
fn format_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<LogFormat, String> {
    let v: String = flag_value(args, flag)?;
    LogFormat::parse(&v).ok_or_else(|| {
        format!(
            "bad {} {v} (expected text or binary)",
            flag.trim_start_matches('-')
        )
    })
}

/// Pull the value that must follow `flag`, parsed as `T`.
fn flag_value<T: FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let v = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse()
        .map_err(|_| format!("bad {} {v}", flag.trim_start_matches('-')))
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut args = argv.into_iter();
    let command = args.next().ok_or("missing command")?;
    let mut parsed = Args {
        command,
        dir: None,
        extra_dirs: Vec::new(),
        listen: None,
        poll_ms: 200,
        racks: None,
        seed: None,
        profile: None,
        train_dirs: Vec::new(),
        eval_dirs: Vec::new(),
        out: None,
        format: LogFormat::Text,
        to: None,
        checkpoint_format: LogFormat::Text,
        metrics_out: None,
        trace_out: None,
        check: None,
        lenient: false,
        max_bad_frac: None,
        checkpoint: None,
        checkpoint_every: None,
        resume: None,
        stop_after: None,
        shards: None,
        timeout_secs: 600,
        retries: 2,
        degraded: false,
        rack_lo: None,
        rack_hi: None,
        shard_index: 0,
        snapshot_out: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--racks" => {
                let racks: u32 = flag_value(&mut args, "--racks")?;
                if racks == 0 {
                    return Err("--racks must be at least 1".into());
                }
                parsed.racks = Some(racks);
            }
            "--seed" => parsed.seed = Some(flag_value(&mut args, "--seed")?),
            "--profile" => {
                let name: String = flag_value(&mut args, "--profile")?;
                // Fail at parse time with the registry listing, not deep
                // inside a command with a bare name.
                astra_platform::by_name(&name).map_err(|e| e.to_string())?;
                parsed.profile = Some(name);
            }
            "--train" => parsed.train_dirs.push(flag_value(&mut args, "--train")?),
            "--eval" => parsed.eval_dirs.push(flag_value(&mut args, "--eval")?),
            "--out" => parsed.out = Some(flag_value(&mut args, "--out")?),
            "--format" => parsed.format = format_value(&mut args, "--format")?,
            "--to" => parsed.to = Some(format_value(&mut args, "--to")?),
            "--checkpoint-format" => {
                parsed.checkpoint_format = format_value(&mut args, "--checkpoint-format")?
            }
            "--metrics-out" => parsed.metrics_out = Some(flag_value(&mut args, "--metrics-out")?),
            "--trace-out" => parsed.trace_out = Some(flag_value(&mut args, "--trace-out")?),
            "--check" => parsed.check = Some(flag_value(&mut args, "--check")?),
            "--lenient" => parsed.lenient = true,
            "--max-bad-frac" => {
                let frac: f64 = flag_value(&mut args, "--max-bad-frac")?;
                if !(0.0..=1.0).contains(&frac) {
                    return Err("--max-bad-frac must be between 0 and 1".into());
                }
                parsed.max_bad_frac = Some(frac);
            }
            "--checkpoint" => parsed.checkpoint = Some(flag_value(&mut args, "--checkpoint")?),
            "--checkpoint-every" => {
                parsed.checkpoint_every = Some(flag_value(&mut args, "--checkpoint-every")?)
            }
            "--resume" => parsed.resume = Some(flag_value(&mut args, "--resume")?),
            "--listen" => parsed.listen = Some(flag_value(&mut args, "--listen")?),
            "--poll-ms" => {
                parsed.poll_ms = flag_value(&mut args, "--poll-ms")?;
                if parsed.poll_ms == 0 {
                    return Err("--poll-ms must be at least 1".into());
                }
            }
            "--stop-after" => parsed.stop_after = Some(flag_value(&mut args, "--stop-after")?),
            "--shards" => {
                let shards: u32 = flag_value(&mut args, "--shards")?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
                parsed.shards = Some(shards);
            }
            "--timeout" => {
                parsed.timeout_secs = flag_value(&mut args, "--timeout")?;
                if parsed.timeout_secs == 0 {
                    return Err("--timeout must be at least 1 second".into());
                }
            }
            "--retries" => parsed.retries = flag_value(&mut args, "--retries")?,
            "--degraded" => parsed.degraded = true,
            "--rack-lo" => parsed.rack_lo = Some(flag_value(&mut args, "--rack-lo")?),
            "--rack-hi" => parsed.rack_hi = Some(flag_value(&mut args, "--rack-hi")?),
            "--shard-index" => parsed.shard_index = flag_value(&mut args, "--shard-index")?,
            "--snapshot-out" => {
                parsed.snapshot_out = Some(flag_value(&mut args, "--snapshot-out")?)
            }
            other if !other.starts_with('-') => {
                if let Some(first) = &parsed.dir {
                    // Only the multi-tenant daemon takes several
                    // directories; everywhere else a second positional is
                    // almost certainly a typo, so keep rejecting it.
                    if parsed.command == "serve" {
                        parsed.extra_dirs.push(PathBuf::from(other));
                    } else {
                        return Err(format!(
                            "unexpected second directory {other} (already got {})",
                            first.display()
                        ));
                    }
                } else {
                    parsed.dir = Some(PathBuf::from(other));
                }
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(parsed)
}

/// Run the CLI on an argument list (without the program name). This is
/// the whole binary: parse, dispatch, export metrics, map errors to the
/// process exit code.
pub fn main(argv: impl IntoIterator<Item = String>) -> ExitCode {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Tracing must be on before the first span completes, so enable it
    // ahead of dispatch. The flag works on every command.
    if args.trace_out.is_some() {
        astra_obs::trace::enable();
    }
    // `shard-analyze --degraded` can succeed *partially*: survivors
    // merged, holes reported. That outcome is distinct from both a
    // clean 0 and an error 1 so scripts can tell the three apart.
    let mut partial = false;
    let result = match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "profiles" => cmd_profiles(),
        "convert" => cmd_convert(&args),
        "analyze" => cmd_analyze(&args),
        "stream-analyze" => cmd_stream_analyze(&args),
        "shard-analyze" => cmd_shard_analyze(&args).map(|p| partial = p),
        crate::shard::WORKER_COMMAND => cmd_shard_worker(&args),
        "serve" => cmd_serve(&args),
        "report" => cmd_report(&args),
        "triage" => cmd_triage(&args),
        "stats" => cmd_stats(&args),
        "predict" => cmd_predict(&args),
        "fsck" => cmd_fsck(&args),
        "chaos" => cmd_chaos(&args),
        "trace" => cmd_trace(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    };
    // Export metrics and the trace even on failure: a run that died
    // half-way is exactly the one whose counters and timeline you want.
    if let Some(path) = &args.metrics_out {
        let jsonl = astra_obs::global().snapshot().to_jsonl();
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace_out {
        let json = astra_obs::trace::to_chrome_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) if partial => ExitCode::from(EXIT_PARTIAL),
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Exit code for a degraded (partial-results) `shard-analyze` run —
/// distinct from both success (0) and hard failure (1).
pub const EXIT_PARTIAL: u8 = 3;

fn cmd_generate(args: &Args) -> Result<(), String> {
    let out = args.out.clone().ok_or("generate requires --out DIR")?;
    let profile = resolve_profile_flag(args)?;
    let racks = args.racks_or_default();
    let seed = args.seed_or_default();
    eprintln!(
        "simulating {} racks of profile {} (seed {seed})...",
        racks, profile.name
    );
    let ds = Dataset::generate_profile(&profile, Some(racks), seed);
    ds.write_logs_as(&out, args.format)
        .map_err(|e| e.to_string())?;
    // The provenance record: which machine, at what scale and seed, in
    // which format. Every consumer reads this instead of guessing.
    Manifest {
        profile: profile.name.to_string(),
        seed,
        racks,
        format: args.format.name().to_string(),
        tool: format!("astra-mem {}", env!("CARGO_PKG_VERSION")),
    }
    .write(&out)
    .map_err(|e| format!("writing manifest.txt: {e}"))?;
    // Persist generation-time metrics next to the logs. Analysis commands
    // fold this file back in, so kernel-buffer drop counts and ECC
    // verdicts — facts only the generator knows — survive into `report
    // --metrics-out` and `stats` on the same directory.
    let jsonl = astra_obs::global().snapshot().to_jsonl();
    std::fs::write(out.join("metrics.jsonl"), jsonl).map_err(|e| e.to_string())?;
    println!(
        "wrote {} CE, {} HET, {} inventory records (+ sensors.log excerpt) to {} ({})",
        ds.sim.ce_log.len(),
        ds.sim.het_log.len(),
        ds.replacements.len(),
        out.display(),
        args.format.name()
    );
    Ok(())
}

/// `convert DIR --to {text,binary} [--out DIR2]`: re-encode every log in a
/// directory. Reads auto-detect the current format per file, so a mixed
/// directory converges on the target; writes go through a `.tmp` + rename
/// so an interrupted in-place conversion never leaves a torn log.
fn cmd_convert(args: &Args) -> Result<(), String> {
    let dir = require_dir(args)?;
    let to = args.to.ok_or("convert requires --to {text,binary}")?;
    let out = args.out.clone().unwrap_or_else(|| dir.clone());
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;
    let opts = args.ingest();
    /// The per-run conversion settings shared by every log.
    struct Convert<'a> {
        dir: &'a Path,
        out: &'a Path,
        to: LogFormat,
        opts: &'a IngestOptions,
    }
    impl Convert<'_> {
        fn one<T: Send>(
            &self,
            name: &str,
            line: LineFormat<T>,
            bin: BinFormat<T>,
            stage: &str,
            fill: impl Fn(&T, &mut String),
        ) -> Result<Option<usize>, String> {
            let path = self.dir.join(name);
            if !path.exists() {
                return Ok(None);
            }
            let (parsed, quarantine) = binfmt::parse_file_auto(&path, line, bin, self.opts, stage)
                .map_err(|e| format!("{name}: {e}"))?;
            if !quarantine.is_empty() {
                eprintln!("note: {}", quarantine.report_line(name));
            }
            let tmp = self.out.join(format!("{name}.convert-tmp"));
            let write = |sink: &mut std::io::BufWriter<std::fs::File>| -> std::io::Result<()> {
                use std::io::Write as _;
                match self.to {
                    LogFormat::Text => {
                        logio::write_lines_with(&mut *sink, parsed.records.iter(), |rec, buf| {
                            fill(rec, buf)
                        })?;
                    }
                    LogFormat::Binary => {
                        binfmt::write_records(&mut *sink, bin, &parsed.records)?;
                    }
                }
                sink.flush()
            };
            std::fs::File::create(&tmp)
                .and_then(|f| write(&mut std::io::BufWriter::new(f)))
                .and_then(|()| std::fs::rename(&tmp, self.out.join(name)))
                .map_err(|e| format!("writing {name}: {e}"))?;
            Ok(Some(parsed.records.len()))
        }
    }
    let cv = Convert {
        dir: &dir,
        out: &out,
        to,
        opts: &opts,
    };
    let mut seen = 0u32;
    let counts = [
        cv.one(
            "ce.log",
            astra_logs::ce::FORMAT,
            binfmt::CE,
            "ce",
            |r, buf| r.to_line_into(buf),
        )?,
        cv.one(
            "het.log",
            astra_logs::het::FORMAT,
            binfmt::HET,
            "het",
            |r, buf| r.to_line_into(buf),
        )?,
        cv.one(
            "inventory.log",
            astra_logs::inventory::FORMAT,
            binfmt::INVENTORY,
            "inventory",
            |r, buf| r.to_line_into(buf),
        )?,
        cv.one(
            "sensors.log",
            astra_logs::sensor::FORMAT,
            binfmt::SENSOR,
            "sensors",
            |r, buf| r.to_line_into(buf),
        )?,
    ];
    let mut total = 0usize;
    for n in counts.into_iter().flatten() {
        seen += 1;
        total += n;
    }
    if seen == 0 {
        return Err(format!("no log files found in {}", dir.display()));
    }
    // Generation-time metrics ride along so `stats` on the converted
    // directory still sees kernel-buffer drops and ECC verdicts.
    let metrics = dir.join("metrics.jsonl");
    if out != dir && metrics.exists() {
        std::fs::copy(&metrics, out.join("metrics.jsonl"))
            .map_err(|e| format!("copying metrics.jsonl: {e}"))?;
    }
    println!(
        "converted {seen} logs ({total} records) to {} in {}",
        to.name(),
        out.display()
    );
    Ok(())
}

/// Render a [`LoadError`] with the operator hint: an absent log points at
/// the extraction job (wrong directory, generate never ran), an
/// unreadable one at the file itself. Shared by every command that opens
/// a log directory, batch or streaming.
fn load_error_hint(dir: &Path, e: &LoadError) -> String {
    match e {
        LoadError::MissingLog { name, .. } => format!(
            "{e}\nhint: {} does not contain the required {name} — point at a directory \
             written by `astra-mem generate --out DIR`, or check that the log extraction \
             completed",
            dir.display()
        ),
        LoadError::Unreadable { name, .. } => format!(
            "{e}\nhint: {name} exists but could not be read — check file permissions and \
             that it is plain UTF-8 text"
        ),
        LoadError::Corrupt { .. } => format!(
            "{e}\nhint: run `astra-mem fsck {}` for the full per-file corruption report, \
             or re-run with --lenient [--max-bad-frac F] to quarantine bad lines and \
             analyze the rest",
            dir.display()
        ),
        LoadError::Manifest { .. } => format!(
            "{e}\nhint: the dataset's provenance record is damaged — re-run \
             `astra-mem generate` to rewrite it, or delete manifest.txt to fall back \
             to the astra profile assumption"
        ),
    }
}

/// Fold in the dataset's generation-time metrics, if present.
fn import_dir_metrics(dir: &Path) {
    if let Ok(text) = std::fs::read_to_string(dir.join("metrics.jsonl")) {
        let bad = astra_obs::global().import_jsonl(&text);
        if bad > 0 {
            eprintln!("note: skipped {bad} unparseable metrics.jsonl lines");
        }
    }
}

fn require_dir(args: &Args) -> Result<PathBuf, String> {
    args.dir
        .clone()
        .ok_or_else(|| "this command needs a log directory".to_string())
}

/// `astra-mem profiles`: list the registry with one-line descriptions.
fn cmd_profiles() -> Result<(), String> {
    println!("registered platform profiles (generate --profile NAME):\n");
    for p in astra_platform::registry() {
        let t = &p.topology;
        println!(
            "  {:<11} {} racks x {} chassis x {} nodes, {:?} ECC",
            p.name, t.default_racks, t.chassis_per_rack, t.nodes_per_chassis, p.ecc.model
        );
        println!("              {}", p.description);
    }
    Ok(())
}

/// The `--profile` flag resolved against the registry (astra by default).
fn resolve_profile_flag(args: &Args) -> Result<PlatformProfile, String> {
    match &args.profile {
        Some(name) => astra_platform::by_name(name).map_err(|e| e.to_string()),
        None => Ok(PlatformProfile::astra()),
    }
}

/// The platform, machine scale, and seed a directory-consuming command
/// should run under, resolved from the dataset's manifest.
struct Resolved {
    profile: PlatformProfile,
    system: SystemConfig,
    seed: u64,
}

/// Resolve a dataset directory's provenance against the command-line
/// flags.
///
/// With a manifest, its recorded profile/racks/seed win; an *explicit*
/// conflicting flag is an error (silently analyzing rack-18 logs as a
/// 4-rack machine, or re-simulating ground truth under the wrong profile,
/// produces confidently wrong numbers). Without one — a legacy or
/// hand-assembled directory — the flags or their defaults apply and the
/// historical Astra assumption holds, noted on stderr.
fn resolve_for_dir(args: &Args, dir: &Path) -> Result<Resolved, String> {
    let manifest = load_manifest(dir).map_err(|e| load_error_hint(dir, &e))?;
    match manifest {
        Some(m) => {
            let profile = astra_platform::by_name(&m.profile).map_err(|e| {
                format!(
                    "{}: recorded profile is not in this tool's registry: {e}\n\
                     hint: the dataset was generated by a different tool version",
                    Manifest::path_in(dir).display()
                )
            })?;
            if let Some(flag) = &args.profile {
                if *flag != m.profile {
                    return Err(format!(
                        "--profile {flag} conflicts with the dataset manifest (profile={}); \
                         drop the flag or regenerate the dataset",
                        m.profile
                    ));
                }
            }
            if let Some(racks) = args.racks {
                if racks != m.racks {
                    return Err(format!(
                        "--racks {racks} conflicts with the dataset manifest (racks={}); \
                         drop the flag or regenerate the dataset",
                        m.racks
                    ));
                }
            }
            if let Some(seed) = args.seed {
                if seed != m.seed {
                    return Err(format!(
                        "--seed {seed} conflicts with the dataset manifest (seed={}); \
                         drop the flag or regenerate the dataset",
                        m.seed
                    ));
                }
            }
            eprintln!(
                "using manifest: profile={} racks={} seed={} format={}",
                m.profile, m.racks, m.seed, m.format
            );
            Ok(Resolved {
                system: profile.system(Some(m.racks)),
                seed: m.seed,
                profile,
            })
        }
        None => {
            let profile = resolve_profile_flag(args)?;
            eprintln!(
                "note: {} has no manifest.txt — assuming profile {} at {} racks \
                 (generate writes a manifest; pass --profile/--racks to override)",
                dir.display(),
                profile.name,
                args.racks_or_default()
            );
            Ok(Resolved {
                system: profile.system(Some(args.racks_or_default())),
                seed: args.seed_or_default(),
                profile,
            })
        }
    }
}

fn load(args: &Args) -> Result<(Resolved, AnalysisInput), String> {
    load_with(args, &args.ingest())
}

fn load_with(args: &Args, opts: &IngestOptions) -> Result<(Resolved, AnalysisInput), String> {
    let dir = require_dir(args)?;
    let resolved = resolve_for_dir(args, &dir)?;
    let input = AnalysisInput::from_dir_with(&dir, opts).map_err(|e| load_error_hint(&dir, &e))?;
    if input.skipped > 0 {
        eprintln!(
            "note: quarantined {} lines {}",
            input.skipped,
            input.quarantine.summary()
        );
    }
    import_dir_metrics(&dir);
    Ok((resolved, input))
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let (resolved, input) = load(args)?;
    let system = resolved.system;
    let analysis = Analysis::run(system, input.records);
    println!(
        "{} errors -> {} faults on {} nodes",
        analysis.total_errors(),
        analysis.total_faults(),
        system.node_count()
    );
    let fig4 = exp::fig4::compute(&analysis, study_span());
    print!("{}", fig4.render());
    let fig5 = exp::fig5::compute(&analysis);
    print!("{}", fig5.render());
    Ok(())
}

fn cmd_stream_analyze(args: &Args) -> Result<(), String> {
    let dir = require_dir(args)?;
    let system = resolve_for_dir(args, &dir)?.system;
    let opts = StreamOptions {
        ingest: args.ingest(),
        checkpoint_every: args.checkpoint_every,
        checkpoint_path: args.checkpoint.clone(),
        resume_from: args.resume.clone(),
        stop_after: args.stop_after,
        checkpoint_format: args.checkpoint_format,
        ..StreamOptions::default()
    };
    let report = stream::stream_analyze(&dir, system, &opts).map_err(|e| match &e {
        StreamError::Load(le) => load_error_hint(&dir, le),
        StreamError::Checkpoint { .. } => e.to_string(),
    })?;
    // `--stop-after` writes a checkpoint and ends the run early; nothing
    // is printed so that a later resumed run's stdout alone is the full
    // analyze output.
    let Some(report) = report else {
        eprintln!(
            "stopped after {} events; checkpoint written",
            args.stop_after.unwrap_or(0)
        );
        return Ok(());
    };
    if report.skipped > 0 {
        eprintln!("note: quarantined {} lines", report.skipped);
    }
    import_dir_metrics(&dir);
    // Byte-identical to `analyze`: same three prints, same renderers.
    println!(
        "{} errors -> {} faults on {} nodes",
        report.total_errors(),
        report.total_faults(),
        system.node_count()
    );
    print!("{}", report.fig4.render());
    print!("{}", report.fig5.render());
    Ok(())
}

/// `shard-analyze DIR --shards N`: the supervised multi-process
/// analysis. Returns whether the output is *partial* (degraded mode
/// with at least one dead shard), which [`main`] maps to
/// [`EXIT_PARTIAL`].
fn cmd_shard_analyze(args: &Args) -> Result<bool, String> {
    let dir = require_dir(args)?;
    let resolved = resolve_for_dir(args, &dir)?;
    let system = resolved.system;
    // Workers re-resolve the dataset themselves, so replay exactly the
    // provenance and ingest flags this process was given — nothing
    // more: an unset flag must stay unset so the manifest keeps winning
    // in the worker too.
    let mut worker_flags: Vec<String> = Vec::new();
    if let Some(p) = &args.profile {
        worker_flags.extend(["--profile".into(), p.clone()]);
    }
    if let Some(racks) = args.racks {
        worker_flags.extend(["--racks".into(), racks.to_string()]);
    }
    if let Some(seed) = args.seed {
        worker_flags.extend(["--seed".into(), seed.to_string()]);
    }
    if args.lenient {
        worker_flags.push("--lenient".into());
    }
    if let Some(frac) = args.max_bad_frac {
        worker_flags.extend(["--max-bad-frac".into(), frac.to_string()]);
    }
    let cfg = crate::shard::SupervisorConfig {
        dir: dir.clone(),
        system,
        shards: args.shards.unwrap_or(2),
        timeout: std::time::Duration::from_secs(args.timeout_secs),
        retries: args.retries,
        degraded: args.degraded,
        seed: resolved.seed,
        worker_flags,
        stream: StreamOptions {
            ingest: args.ingest(),
            checkpoint_format: args.checkpoint_format,
            ..StreamOptions::default()
        },
    };
    let supervised = {
        let _span = astra_obs::span("pipeline.shard");
        crate::shard::supervise(&cfg)?
    };
    import_dir_metrics(&dir);
    let report = supervised.analyzer.snapshot();
    // The banner leads the partial output: nobody should be able to
    // read the numbers without reading the holes first.
    for (lo, hi) in &supervised.missing {
        println!("DEGRADED: missing racks {lo}..{hi}");
    }
    println!(
        "{} errors -> {} faults on {} nodes",
        report.total_errors(),
        report.total_faults(),
        system.node_count()
    );
    print!("{}", report.fig4.render());
    print!("{}", report.fig5.render());
    Ok(!supervised.missing.is_empty())
}

/// The hidden `shard-worker` mode `shard-analyze` spawns itself in:
/// analyze one rack range and serialize the analyzer snapshot.
fn cmd_shard_worker(args: &Args) -> Result<(), String> {
    let dir = require_dir(args)?;
    let (rack_lo, rack_hi) = match (args.rack_lo, args.rack_hi) {
        (Some(lo), Some(hi)) if lo < hi => (lo, hi),
        _ => return Err("shard-worker needs --rack-lo L and --rack-hi H with L < H".into()),
    };
    let snapshot_out = args
        .snapshot_out
        .clone()
        .ok_or("shard-worker needs --snapshot-out FILE")?;
    let system = resolve_for_dir(args, &dir)?.system;
    crate::shard::run_worker(&crate::shard::WorkerConfig {
        dir,
        system,
        rack_lo,
        rack_hi,
        shard_index: args.shard_index,
        snapshot_out,
        stream: StreamOptions {
            ingest: args.ingest(),
            checkpoint_format: args.checkpoint_format,
            ..StreamOptions::default()
        },
    })
}

/// `serve DIR [DIR ...]`: run the multi-tenant analysis daemon until a
/// client requests `/shutdown` or stdin reaches EOF (the service-manager
/// idiom: closing the daemon's stdin asks it to wind down). Exit 0 means
/// every site wrote its final checkpoint.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut dirs = vec![require_dir(args)?];
    dirs.extend(args.extra_dirs.iter().cloned());
    if args.checkpoint.is_some() && dirs.len() > 1 {
        return Err(
            "--checkpoint FILE only works with a single site; multi-site serve \
             checkpoints each site to <dir>/serve.ckpt"
                .into(),
        );
    }
    // Fallback shape for manifest-less sites; sites with a manifest get
    // their own recorded profile topology inside start_sites.
    let system = SystemConfig::scaled(args.racks_or_default());
    let stream_opts = StreamOptions {
        ingest: args.ingest(),
        checkpoint_path: args.checkpoint.clone(),
        resume_from: args.resume.clone(),
        checkpoint_format: args.checkpoint_format,
        ..StreamOptions::default()
    };
    let serve_opts = astra_serve::ServeOptions {
        listen: args
            .listen
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7433".to_string()),
        poll_interval: std::time::Duration::from_millis(args.poll_ms),
        checkpoint_every: args.checkpoint_every.map(std::time::Duration::from_secs),
        ..astra_serve::ServeOptions::default()
    };
    let server = crate::serve::start_sites(&dirs, system, &stream_opts, &serve_opts)?;
    // The one startup line on stdout, flushed, so wrappers (tests, CI,
    // service managers) can scrape the actual port even with `:0`.
    println!("listening on http://{}", server.addr());
    use std::io::{Read as _, Write as _};
    std::io::stdout().flush().ok();
    eprintln!(
        "serving {} site(s); stop with GET/POST /shutdown or by closing stdin",
        dirs.len()
    );
    // Stdin watcher: consume until EOF, then ask the server to wind
    // down. Lives here rather than in astra-serve so in-process servers
    // (bench, tests) never touch the process's stdin.
    let trigger = server.shutdown_trigger();
    std::thread::spawn(move || {
        let mut sink = [0u8; 4096];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        trigger.trigger();
    });
    server.join();
    eprintln!("shutdown complete");
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let (resolved, input) = load(args)?;
    let system = resolved.system;
    let analysis = Analysis::run(system, input.records);
    // The telemetry model is functional: reconstruct it from the recorded
    // (or given) seed under the dataset's thermal profile.
    let telemetry = astra_telemetry::TelemetryModel::new(
        system,
        resolved.profile.thermal.clone(),
        resolved.seed,
    );
    let config = TempCorrConfig::default();

    println!(
        "{}",
        exp::table1::compute(&system, &input.replacements).render()
    );
    // Prefer the parsed sensors.log excerpt when the directory has one;
    // otherwise sample the telemetry model.
    let fig2 = if input.sensors.is_empty() {
        exp::fig2::compute(&telemetry, sensor_span(), 8, 6 * 60)
    } else {
        exp::fig2::compute_from_records(&input.sensors)
    };
    println!("{}", fig2.render());
    println!(
        "{}",
        exp::fig3::compute(&input.replacements, replacement_span()).render()
    );
    println!("{}", exp::fig4::compute(&analysis, study_span()).render());
    println!("{}", exp::fig5::compute(&analysis).render());
    println!("{}", exp::fig6::compute(&analysis).render());
    println!("{}", exp::fig7::compute(&analysis).render());
    println!("{}", exp::fig8::compute(&analysis).render());
    println!(
        "{}",
        exp::fig9::compute(&analysis, &telemetry, sensor_span(), &config).render()
    );
    println!("{}", exp::fig10_12::compute(&analysis).render());
    println!(
        "{}",
        exp::fig13_14::compute_fig13(&analysis, &telemetry, sensor_span(), &config).render()
    );
    println!(
        "{}",
        exp::fig13_14::compute_fig14(&analysis, &telemetry, sensor_span(), &config).render()
    );
    let window = TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14));
    println!(
        "{}",
        exp::fig15::compute(&input.hets, window, system.dimm_count()).render()
    );

    // CE -> DUE escalation addendum.
    if let Some(rr) =
        crate::het::due_relative_risk(&analysis.faults, &input.hets, system.dimm_count())
    {
        println!("DUE relative risk for DIMMs with prior CE faults: {rr:.1}x\n");
    }

    // Failure-model addendum.
    if let Some(model) =
        crate::modeling::NodePopulationModel::fit(&analysis.spatial.fault_counts_all_nodes(&system))
    {
        println!(
            "node fault model: P(zero) = {:.2}, tail alpha = {:.2}; expected nodes \
             with >= 10 faults: {:.0}\n",
            model.p_zero,
            model.tail.alpha,
            model.expected_nodes_at_least(10)
        );
    }

    // Survival addendum.
    println!("Component survival (Kaplan-Meier):");
    for cs in reliability::component_survival(&system, &input.replacements, replacement_span()) {
        println!(
            "  {:<13} failures {:>5} / {:<6}  S(212d) {:.3}  front-loading(30d) {:.2}x",
            cs.component,
            cs.failures,
            cs.population,
            cs.end_survival(212.0),
            cs.front_loading(30.0, 212.0)
        );
    }
    Ok(())
}

fn cmd_triage(args: &Args) -> Result<(), String> {
    let (resolved, input) = load(args)?;
    let analysis = Analysis::run(resolved.system, input.records);

    println!("node exclusion curve:");
    for point in mitigation::exclusion_curve(&analysis, 8) {
        println!(
            "  exclude {:>2} nodes -> avoid {:>5.1}% of CEs at {:.2}% capacity",
            point.excluded_nodes,
            100.0 * point.errors_avoided_fraction,
            100.0 * point.capacity_lost_fraction
        );
    }
    let k = mitigation::smallest_exclusion_for(&analysis, 0.5);
    println!("smallest exclude list removing half of all CEs: {k} nodes\n");

    for (name, policy) in [
        (
            "threshold(8)",
            RetirementPolicy::Threshold { ce_threshold: 8 },
        ),
        (
            "budgeted(8, 16 pages)",
            RetirementPolicy::Budgeted {
                ce_threshold: 8,
                max_pages_per_fault: 16,
            },
        ),
    ] {
        let out = mitigation::simulate_retirement(&analysis.records, &analysis.faults, policy);
        println!(
            "page retirement {name}: retired {} pages ({} KiB), avoided {:.1}% of CEs, \
             contained {} faults, abandoned {}",
            out.retired_pages,
            out.retired_bytes() / 1024,
            100.0 * out.avoidance_rate(),
            out.faults_contained,
            out.faults_abandoned
        );
    }
    Ok(())
}

/// Sum of all timing metrics whose span path ends in `suffix` (span paths
/// nest, e.g. `time.pipeline.parse/parse.ce`, so stats matches by leaf).
fn timing_secs_by_suffix(snap: &astra_obs::Snapshot, suffix: &str) -> f64 {
    snap.entries
        .iter()
        .filter(|(name, _)| {
            name.strip_prefix("time.")
                .map(|path| path == suffix || path.ends_with(&format!("/{suffix}")))
                .unwrap_or(false)
        })
        .map(|(name, _)| snap.timing_secs(name))
        .sum()
}

fn rate_per_sec(count: u64, secs: f64) -> String {
    if secs > 0.0 {
        format!("{:.0}/s", count as f64 / secs)
    } else {
        "-".to_string()
    }
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    // Generation-time metrics (kernel-buffer drops, ECC verdicts) only
    // exist in the directory's metrics.jsonl; without it the report still
    // runs but silently loses that whole section — say so up front.
    if let Some(dir) = &args.dir {
        let metrics_path = dir.join("metrics.jsonl");
        if !metrics_path.exists() {
            eprintln!(
                "note: {} not found — generation-time stats (drop rates, ECC verdicts) \
                 will be missing.\n      regenerate the dataset with `astra-mem generate \
                 --out {}` (which writes metrics.jsonl), or copy the metrics file of the \
                 run that produced these logs into the directory.",
                metrics_path.display(),
                dir.display()
            );
        }
    }
    // A health report must diagnose unhealthy datasets, so `stats` is
    // lenient with an unbounded budget unless the user tightens it.
    let opts = IngestOptions::lenient(Some(args.max_bad_frac.unwrap_or(1.0)));
    let (resolved, input) = load_with(args, &opts)?;
    let system = resolved.system;
    let analysis = Analysis::run(system, input.records);
    let snap = astra_obs::global().snapshot();

    println!("pipeline health ({} nodes)", system.node_count());
    println!("\nparse stages:");
    println!(
        "  {:<10} {:>10} {:>9} {:>8} {:>12}",
        "stage", "lines ok", "skipped", "skip %", "throughput"
    );
    for stage in ["ce", "het", "inventory", "sensors"] {
        let ok = snap.counter(&format!("parse.{stage}.lines_ok"));
        let skipped = snap.counter(&format!("parse.{stage}.lines_skipped"));
        if ok == 0 && skipped == 0 {
            continue;
        }
        let secs = timing_secs_by_suffix(&snap, &format!("parse.{stage}"));
        println!(
            "  {:<10} {:>10} {:>9} {:>7.2}% {:>12}",
            stage,
            ok,
            skipped,
            percent(skipped, ok + skipped),
            rate_per_sec(ok, secs),
        );
    }

    // Ingest robustness: only printed when something was quarantined,
    // retried, or salvaged — a clean run keeps the clean report.
    let quarantined: u64 = QuarantineReason::ALL
        .iter()
        .map(|r| snap.counter(&format!("ingest.quarantined.{}", r.name())))
        .sum();
    let io_retries = snap.counter("ingest.io_retries");
    let salvaged = snap.counter("checkpoint.salvaged");
    if quarantined > 0 || io_retries > 0 || salvaged > 0 {
        println!("\ningest robustness:");
        for reason in QuarantineReason::ALL {
            let n = snap.counter(&format!("ingest.quarantined.{}", reason.name()));
            if n > 0 {
                println!("  quarantined {:<18} {:>8}", reason.name(), n);
            }
        }
        if io_retries > 0 {
            println!("  transient I/O retries      {io_retries:>8}");
        }
        if salvaged > 0 {
            println!("  checkpoints salvaged       {salvaged:>8}");
        }
    }

    let offered = snap.counter("faultsim.events_offered");
    if offered > 0 {
        let dropped = snap.counter("faultsim.ces_dropped");
        println!("\ngeneration (from metrics.jsonl):");
        println!(
            "  CEs offered {} | logged {} | dropped {} ({:.2}% kernel-buffer loss)",
            offered,
            snap.counter("faultsim.ces_logged"),
            dropped,
            percent(dropped, offered),
        );
        println!(
            "  ECC verdicts: {} corrected, {} uncorrected, {} background HET",
            snap.counter("faultsim.ecc.corrected"),
            snap.counter("faultsim.ecc.due"),
            snap.counter("faultsim.ecc.background"),
        );
    }

    let records_in = snap.counter("coalesce.records_in");
    println!("\ncoalesce:");
    println!(
        "  {} errors -> {} faults (ratio {:.1} errors/fault, throughput {})",
        records_in,
        snap.counter("coalesce.faults_out"),
        snap.gauge("coalesce.ratio"),
        rate_per_sec(records_in, timing_secs_by_suffix(&snap, "coalesce")),
    );
    let mode_counts: Vec<(String, u64)> = snap
        .entries
        .iter()
        .filter_map(|(name, _)| {
            name.strip_prefix("coalesce.mode.")
                .map(|mode| (mode.to_string(), snap.counter(name)))
        })
        .collect();
    for (mode, n) in &mode_counts {
        println!(
            "    {:<14} {:>6} ({:.1}%)",
            mode,
            n,
            percent(*n, analysis.faults.len() as u64)
        );
    }

    let ws = snap.gauge("pipeline.workingset_bytes");
    if ws > 0.0 {
        println!(
            "\npeak analysis working set: {:.1} MiB",
            ws / (1024.0 * 1024.0)
        );
    }
    // Per-stage wall time. Generation-side stages (generate, merge) come
    // from the imported metrics.jsonl when the directory was produced by
    // `generate`; the analysis-side stages were just measured live.
    let stages = [
        ("generate", "pipeline.generate"),
        ("merge", "pipeline.merge"),
        ("parse", "pipeline.parse"),
        ("consume", "pipeline.consume"),
        ("stream", "pipeline.stream"),
        ("coalesce", "pipeline.coalesce"),
        ("spatial", "pipeline.spatial"),
        ("predict", "pipeline.predict"),
    ];
    if stages
        .iter()
        .any(|(_, suffix)| timing_secs_by_suffix(&snap, suffix) > 0.0)
    {
        println!("\nstage breakdown:");
        println!(
            "  {:<10} {:>9} {:>10} {:>10} {:>10}",
            "stage", "total", "p50", "p95", "p99"
        );
        for (label, suffix) in stages {
            let secs = timing_secs_by_suffix(&snap, suffix);
            if secs > 0.0 {
                // Percentiles come from the merged histogram across every
                // call context of the stage (same leaf matching as total).
                let (p50, p95, p99) = astra_obs::merged_stage_timing(&snap, suffix)
                    .map(|h| (h.p50(), h.p95(), h.p99()))
                    .unwrap_or((0, 0, 0));
                println!(
                    "  {label:<10} {secs:>8.3}s {:>8.3}ms {:>8.3}ms {:>8.3}ms",
                    p50 as f64 / 1e6,
                    p95 as f64 / 1e6,
                    p99 as f64 / 1e6,
                );
            }
        }
    }
    let analyze_secs = timing_secs_by_suffix(&snap, "pipeline.analyze");
    if analyze_secs > 0.0 {
        println!("analyze wall time: {analyze_secs:.3}s");
    }
    // The regression gate: compare this run's metrics against the
    // checked-in threshold file and fail loudly on any breach.
    if let Some(path) = &args.check {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let thresholds =
            astra_obs::Thresholds::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let report = astra_obs::check(&thresholds, &snap);
        println!();
        print!("{}", report.render());
        if !report.ok() {
            return Err(format!(
                "{} of {} threshold rules exceeded (see report above)",
                report.violations(),
                report.results.len()
            ));
        }
    }
    Ok(())
}

/// `fsck DIR`: scan every log with an unlimited-budget lenient ingest and
/// print, per file, what a lenient analysis run would quarantine — the
/// same `name: quarantined N (reason n, ...)` lines the `chaos` manifest
/// prints, so the two reports diff verbatim in CI. Sample quarantined
/// lines go to stderr; the exit code is nonzero iff anything was
/// quarantined (fsck semantics: a dirty filesystem is not exit 0).
fn cmd_fsck(args: &Args) -> Result<(), String> {
    let dir = require_dir(args)?;
    // Measure everything: unlimited budget so the scan never aborts.
    let opts = IngestOptions::lenient(Some(1.0));
    fn scan<T: Send>(
        dir: &Path,
        name: &str,
        format: LineFormat<T>,
        bin: BinFormat<T>,
        opts: &IngestOptions,
        stage: &str,
    ) -> Result<Option<astra_logs::Quarantine>, String> {
        let path = dir.join(name);
        if !path.exists() {
            return Ok(None);
        }
        // Binary logs verify with a CRC sweep + header validation — no
        // decode — so fsck runs at I/O speed on them.
        if binfmt::file_is_binlog(&path).map_err(|e| format!("{name}: {e}"))? {
            return binfmt::fsck_scan(&path, bin.kind)
                .map(Some)
                .map_err(|e| format!("{name}: {e}"));
        }
        match logio::parse_file_streaming(&path, format, opts, stage) {
            Ok((_, quarantine)) => Ok(Some(quarantine)),
            Err(e) => Err(format!("{name}: {e}")),
        }
    }
    let mut total = astra_logs::Quarantine::default();
    let mut seen = 0u32;
    for (name, report) in [
        (
            "ce.log",
            scan(
                &dir,
                "ce.log",
                astra_logs::ce::FORMAT,
                binfmt::CE,
                &opts,
                "ce",
            )?,
        ),
        (
            "het.log",
            scan(
                &dir,
                "het.log",
                astra_logs::het::FORMAT,
                binfmt::HET,
                &opts,
                "het",
            )?,
        ),
        (
            "inventory.log",
            scan(
                &dir,
                "inventory.log",
                astra_logs::inventory::FORMAT,
                binfmt::INVENTORY,
                &opts,
                "inventory",
            )?,
        ),
        (
            "sensors.log",
            scan(
                &dir,
                "sensors.log",
                astra_logs::sensor::FORMAT,
                binfmt::SENSOR,
                &opts,
                "sensors",
            )?,
        ),
    ] {
        let Some(quarantine) = report else { continue };
        seen += 1;
        println!("{}", quarantine.report_line(name));
        let samples = quarantine.sample_lines();
        if !samples.is_empty() {
            eprint!("{samples}");
        }
        total.merge(&quarantine);
    }
    if seen == 0 {
        return Err(format!("no log files found in {}", dir.display()));
    }
    println!("{}", total.report_line("total"));
    if total.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} lines would be quarantined {}",
            total.total(),
            total.summary()
        ))
    }
}

/// `chaos DIR --seed S`: deterministically corrupt a generated dataset in
/// place and print the injected-corruption manifest (fsck's line format).
fn cmd_chaos(args: &Args) -> Result<(), String> {
    let dir = require_dir(args)?;
    let cfg = chaos::ChaosConfig::with_seed(args.seed_or_default());
    let manifest = chaos::corrupt_dir(&dir, &cfg).map_err(|e| e.to_string())?;
    if manifest.files.is_empty() {
        return Err(format!("no log files found in {}", dir.display()));
    }
    print!("{}", manifest.report());
    Ok(())
}

/// `trace FILE`: parse a Chrome trace JSON written by `--trace-out` and
/// print the flame table. The total column sums the same span durations
/// the `time.*` histograms record, so the two agree to the nanosecond.
fn cmd_trace(args: &Args) -> Result<(), String> {
    let path = args
        .dir
        .clone()
        .ok_or("trace needs a trace JSON file (written by --trace-out)")?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let events = astra_obs::trace::parse_chrome_trace(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if events.is_empty() {
        return Err(format!(
            "{}: no complete span events — was the file written by --trace-out?",
            path.display()
        ));
    }
    println!(
        "{} span events across {} threads\n",
        events.len(),
        events
            .iter()
            .map(|e| e.tid)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );
    print!("{}", astra_obs::trace::flame_table(&events));
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    // Transfer-matrix mode: fit on every --train dataset, score on every
    // --eval dataset, print the cross-platform matrix.
    if !args.train_dirs.is_empty() || !args.eval_dirs.is_empty() {
        return cmd_predict_transfer(args);
    }
    let (resolved, input) = load(args)?;
    let system = resolved.system;

    // Ground truth is not persisted by `generate`; re-derive it from the
    // deterministic simulation under the manifest's recorded profile,
    // scale, and seed (the same reconstruct-from-seed pattern `report`
    // uses for telemetry). On legacy manifest-less directories the flags
    // must match generate's; a mismatch shows up as a CE-count
    // disagreement.
    eprintln!(
        "re-simulating {} racks of profile {} (seed {}) for ground truth...",
        system.racks, resolved.profile.name, resolved.seed
    );
    let ds = Dataset::generate_profile(&resolved.profile, Some(system.racks), resolved.seed);
    if ds.sim.ce_log.len() != input.records.len() {
        eprintln!(
            "warning: directory has {} CE records but profile={} racks={} seed={} simulates \
             {} — ground-truth labels are unreliable; pass the --racks/--seed used at generate",
            input.records.len(),
            resolved.profile.name,
            system.racks,
            resolved.seed,
            ds.sim.ce_log.len()
        );
    }

    let predictors = astra_predict::default_predictors();
    let config = astra_predict::PredictConfig::default();
    let alerts = astra_predict::replay(&input.records, &config, &predictors);
    println!(
        "replayed {} CEs through {} predictors -> {} alerts\n",
        input.records.len(),
        predictors.len(),
        alerts.len()
    );
    let report = astra_predict::evaluate(&alerts, &input.hets, &ds.sim.ground_truth);
    print!("{}", report.render());

    // Cost model: what acting on each predictor's alerts would buy.
    println!("\nproactive mitigation (errors avoided vs memory retired):");
    for eval in &report.predictors {
        let own: Vec<astra_predict::Alert> = alerts
            .iter()
            .filter(|a| a.predictor == eval.name)
            .cloned()
            .collect();
        for (label, policy) in [
            ("retire-rank", ProactivePolicy::RetireRank),
            ("exclude-node", ProactivePolicy::ExcludeNode),
        ] {
            let out = mitigation::simulate_proactive(
                &input.records,
                &input.hets,
                &own,
                policy,
                &system.geometry,
            );
            println!(
                "  {:<10} {:<13} {:>3} units ({:>6.1} GiB) -> avoided {:>5.1}% of CEs, \
                 {}/{} DUEs",
                eval.name,
                label,
                out.units,
                out.reserved_bytes as f64 / (1024.0 * 1024.0 * 1024.0),
                100.0 * out.avoidance_rate(),
                out.dues_avoided,
                out.dues_avoided + out.dues_residual,
            );
        }
    }
    Ok(())
}

/// `astra-mem predict --train DIR... --eval DIR...`: the cross-platform
/// transfer matrix. Every directory must carry a manifest — transfer
/// re-simulates each dataset's ground truth, which is only possible with
/// the recorded profile/racks/seed (a guess would silently mislabel).
fn cmd_predict_transfer(args: &Args) -> Result<(), String> {
    if args.dir.is_some() {
        return Err(
            "transfer mode takes --train/--eval directories, not a positional DIR".to_string(),
        );
    }
    if args.train_dirs.is_empty() || args.eval_dirs.is_empty() {
        return Err("transfer mode needs at least one --train DIR and one --eval DIR".to_string());
    }

    // Load each distinct directory once, even when it appears on both
    // sides of the matrix (the diagonal baseline is the common case).
    let mut dirs: Vec<PathBuf> = Vec::new();
    for d in args.train_dirs.iter().chain(&args.eval_dirs) {
        if !dirs.contains(d) {
            dirs.push(d.clone());
        }
    }
    let mut by_dir: std::collections::BTreeMap<PathBuf, astra_predict::TransferDataset> =
        std::collections::BTreeMap::new();
    for dir in &dirs {
        let m = load_manifest(dir)
            .map_err(|e| load_error_hint(dir, &e))?
            .ok_or_else(|| {
                format!(
                    "{}: no manifest.txt — transfer mode re-simulates ground truth and needs \
                     the recorded profile/racks/seed; regenerate the dataset with this tool's \
                     `generate`",
                    dir.display()
                )
            })?;
        let profile = astra_platform::by_name(&m.profile).map_err(|e| {
            format!(
                "{}: recorded profile is not in this tool's registry: {e}",
                Manifest::path_in(dir).display()
            )
        })?;
        let input = AnalysisInput::from_dir_with(dir, &args.ingest())
            .map_err(|e| load_error_hint(dir, &e))?;
        if input.skipped > 0 {
            eprintln!(
                "note: {}: quarantined {} lines {}",
                dir.display(),
                input.skipped,
                input.quarantine.summary()
            );
        }
        eprintln!(
            "re-simulating {} ({} racks of profile {}, seed {}) for ground truth...",
            dir.display(),
            m.racks,
            m.profile,
            m.seed
        );
        let truth = Dataset::generate_profile(&profile, Some(m.racks), m.seed)
            .sim
            .ground_truth;
        by_dir.insert(
            dir.clone(),
            astra_predict::TransferDataset {
                name: m.profile.clone(),
                records: input.records,
                hets: input.hets,
                ground_truth: truth,
            },
        );
    }

    // Two different directories can share a profile (same platform,
    // different seed); disambiguate those rows/columns by directory name.
    let mut uses: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for ds in by_dir.values() {
        *uses.entry(ds.name.clone()).or_default() += 1;
    }
    for (dir, ds) in by_dir.iter_mut() {
        if uses[&ds.name] > 1 {
            let base = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| dir.display().to_string());
            ds.name = format!("{}:{base}", ds.name);
        }
    }

    let train: Vec<_> = args.train_dirs.iter().map(|d| by_dir[d].clone()).collect();
    let eval: Vec<_> = args.eval_dirs.iter().map(|d| by_dir[d].clone()).collect();
    let matrix =
        astra_predict::transfer_matrix(&train, &eval, &astra_predict::PredictConfig::default());
    print!("{}", matrix.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{cmd_convert, parse_args};

    fn argv(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    struct TempDirGuard(std::path::PathBuf);

    impl TempDirGuard {
        fn new(tag: &str) -> TempDirGuard {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "astra-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDirGuard(dir)
        }
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    const LOGS: [&str; 4] = ["ce.log", "het.log", "inventory.log", "sensors.log"];

    #[test]
    fn convert_round_trips_byte_identically() {
        let tmp = TempDirGuard::new("cli-convert");
        let (a, b, c) = (tmp.0.join("a"), tmp.0.join("b"), tmp.0.join("c"));
        crate::pipeline::Dataset::generate(1, 11)
            .write_logs(&a)
            .unwrap();
        let run = |args: &[&str]| cmd_convert(&parse_args(argv(args)).unwrap()).unwrap();
        run(&[
            "convert",
            a.to_str().unwrap(),
            "--to",
            "binary",
            "--out",
            b.to_str().unwrap(),
        ]);
        for name in LOGS {
            assert!(
                astra_logs::binfmt::file_is_binlog(&b.join(name)).unwrap(),
                "{name} not binary after convert"
            );
            let shrunk = std::fs::metadata(b.join(name)).unwrap().len();
            let text = std::fs::metadata(a.join(name)).unwrap().len();
            assert!(shrunk < text, "{name}: binary {shrunk} >= text {text}");
        }
        // Back to text lands byte-for-byte on the original files.
        run(&[
            "convert",
            b.to_str().unwrap(),
            "--to",
            "text",
            "--out",
            c.to_str().unwrap(),
        ]);
        for name in LOGS {
            assert_eq!(
                std::fs::read(a.join(name)).unwrap(),
                std::fs::read(c.join(name)).unwrap(),
                "{name} changed across text->binary->text"
            );
        }
        // In-place conversion goes through tmp+rename and converges.
        run(&["convert", c.to_str().unwrap(), "--to", "binary"]);
        for name in LOGS {
            assert!(astra_logs::binfmt::file_is_binlog(&c.join(name)).unwrap());
            assert_eq!(
                std::fs::read(b.join(name)).unwrap(),
                std::fs::read(c.join(name)).unwrap(),
                "{name}: in-place binary differs from out-of-place binary"
            );
        }
    }

    #[test]
    fn parses_a_full_command_line() {
        let a = parse_args(argv(&[
            "report",
            "/tmp/logs",
            "--racks",
            "2",
            "--seed",
            "7",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(a.command, "report");
        assert_eq!(a.dir.as_deref().unwrap().to_str().unwrap(), "/tmp/logs");
        assert_eq!(a.racks, Some(2));
        assert_eq!(a.seed, Some(7));
        assert_eq!(
            a.metrics_out.as_deref().unwrap().to_str().unwrap(),
            "m.json"
        );
    }

    #[test]
    fn parses_profile_and_transfer_flags() {
        let a = parse_args(argv(&["generate", "out", "--profile", "x86-ddr4"])).unwrap();
        assert_eq!(a.profile.as_deref(), Some("x86-ddr4"));
        assert_eq!(a.racks, None);
        assert_eq!(a.seed, None);

        let a = parse_args(argv(&[
            "predict", "--train", "a", "--train", "b", "--eval", "c",
        ]))
        .unwrap();
        assert_eq!(a.train_dirs.len(), 2);
        assert_eq!(a.eval_dirs.len(), 1);
        assert_eq!(a.train_dirs[1].to_str().unwrap(), "b");

        assert!(parse_args(argv(&["profiles"])).is_ok());
    }

    #[test]
    fn unknown_profile_is_rejected_at_parse_time_with_registry() {
        let err = parse_args(argv(&["generate", "out", "--profile", "sparc"])).unwrap_err();
        assert!(err.contains("sparc"), "{err}");
        for name in astra_platform::PROFILE_NAMES {
            assert!(err.contains(name), "{err} should list {name}");
        }
    }

    #[test]
    fn parses_streaming_flags() {
        let a = parse_args(argv(&[
            "stream-analyze",
            "/tmp/logs",
            "--checkpoint",
            "ck.txt",
            "--checkpoint-every",
            "5000",
            "--resume",
            "old.txt",
            "--stop-after",
            "100",
        ]))
        .unwrap();
        assert_eq!(a.command, "stream-analyze");
        assert_eq!(a.checkpoint.as_deref().unwrap().to_str().unwrap(), "ck.txt");
        assert_eq!(a.checkpoint_every, Some(5000));
        assert_eq!(a.resume.as_deref().unwrap().to_str().unwrap(), "old.txt");
        assert_eq!(a.stop_after, Some(100));
    }

    #[test]
    fn parses_trace_and_check_flags() {
        let a = parse_args(argv(&[
            "stats",
            "/tmp/logs",
            "--trace-out",
            "trace.json",
            "--check",
            "thresholds.json",
        ]))
        .unwrap();
        assert_eq!(
            a.trace_out.as_deref().unwrap().to_str().unwrap(),
            "trace.json"
        );
        assert_eq!(
            a.check.as_deref().unwrap().to_str().unwrap(),
            "thresholds.json"
        );
    }

    #[test]
    fn parses_format_flags() {
        use astra_logs::binfmt::LogFormat;
        let a = parse_args(argv(&[
            "generate",
            "--out",
            "/tmp/logs",
            "--format",
            "binary",
        ]))
        .unwrap();
        assert_eq!(a.format, LogFormat::Binary);
        let a = parse_args(argv(&["convert", "/tmp/logs", "--to", "text"])).unwrap();
        assert_eq!(a.to, Some(LogFormat::Text));
        let a = parse_args(argv(&[
            "stream-analyze",
            "/tmp/logs",
            "--checkpoint-format",
            "binary",
        ]))
        .unwrap();
        assert_eq!(a.checkpoint_format, LogFormat::Binary);
        assert!(parse_args(argv(&["generate", "--format", "csv"])).is_err());
        assert!(parse_args(argv(&["convert", "d", "--to"])).is_err());
    }

    #[test]
    fn parses_shard_flags() {
        let a = parse_args(argv(&[
            "shard-analyze",
            "/tmp/logs",
            "--shards",
            "4",
            "--timeout",
            "30",
            "--retries",
            "5",
            "--degraded",
        ]))
        .unwrap();
        assert_eq!(a.shards, Some(4));
        assert_eq!(a.timeout_secs, 30);
        assert_eq!(a.retries, 5);
        assert!(a.degraded);

        let w = parse_args(argv(&[
            "shard-worker",
            "/tmp/logs",
            "--rack-lo",
            "6",
            "--rack-hi",
            "12",
            "--shard-index",
            "1",
            "--snapshot-out",
            "/tmp/s.snap",
        ]))
        .unwrap();
        assert_eq!(w.rack_lo, Some(6));
        assert_eq!(w.rack_hi, Some(12));
        assert_eq!(w.shard_index, 1);
        assert_eq!(
            w.snapshot_out.as_deref().unwrap().to_str().unwrap(),
            "/tmp/s.snap"
        );

        assert!(parse_args(argv(&["shard-analyze", "d", "--shards", "0"])).is_err());
        assert!(parse_args(argv(&["shard-analyze", "d", "--timeout", "0"])).is_err());
        assert!(parse_args(argv(&["shard-analyze", "d", "--shards"])).is_err());
    }

    #[test]
    fn shard_worker_validates_its_range() {
        let args = parse_args(argv(&[
            "shard-worker",
            "/nonexistent",
            "--rack-lo",
            "4",
            "--rack-hi",
            "4",
            "--snapshot-out",
            "/tmp/s.snap",
        ]))
        .unwrap();
        let err = super::cmd_shard_worker(&args).unwrap_err();
        assert!(err.contains("--rack-lo"), "{err}");
    }

    #[test]
    fn rejects_zero_racks() {
        let err = parse_args(argv(&["generate", "--racks", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn rejects_duplicate_directory() {
        let err = parse_args(argv(&["analyze", "dir1", "dir2"])).unwrap_err();
        assert!(err.contains("dir2") && err.contains("dir1"), "{err}");
    }

    #[test]
    fn serve_accepts_multiple_directories_and_flags() {
        let a = parse_args(argv(&[
            "serve",
            "siteA",
            "siteB",
            "siteC",
            "--listen",
            "127.0.0.1:0",
            "--poll-ms",
            "50",
            "--checkpoint-every",
            "30",
        ]))
        .unwrap();
        assert_eq!(a.dir.as_deref().unwrap().to_str().unwrap(), "siteA");
        assert_eq!(
            a.extra_dirs
                .iter()
                .map(|p| p.to_str().unwrap())
                .collect::<Vec<_>>(),
            vec!["siteB", "siteC"]
        );
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.poll_ms, 50);
        assert_eq!(a.checkpoint_every, Some(30));
        assert!(parse_args(argv(&["serve", "d", "--poll-ms", "0"])).is_err());
        assert!(parse_args(argv(&["serve", "d", "--listen"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag_and_missing_value() {
        assert!(parse_args(argv(&["analyze", "--bogus"])).is_err());
        assert!(parse_args(argv(&["generate", "--racks"])).is_err());
        assert!(parse_args(argv(&["analyze", "--metrics-out"])).is_err());
        assert!(parse_args(argv(&["stream-analyze", "--checkpoint-every"])).is_err());
        assert!(parse_args(argv(&["stream-analyze", "--stop-after", "x"])).is_err());
    }
}

//! Error → fault coalescing.
//!
//! The algorithm groups the CE stream by `(node, slot, rank)` — the DRAM
//! device population a physical fault is confined to — then, within each
//! group:
//!
//! 1. **Rank-level extraction**: a bit lane whose errors appear in at
//!    least [`CoalesceConfig::pin_bank_threshold`] distinct banks is a
//!    pin/lane defect; all its errors become one rank-level fault. This
//!    runs first because a pin fault would otherwise shatter into one
//!    spurious fault per bank.
//! 2. **Per-bank footprint classification** of the remaining errors:
//!    one address and one bit → single-bit; one address, several bits →
//!    single-word; several addresses in one column → single-column;
//!    several columns → single-bank (which, on Astra, also covers true
//!    single-row faults — the records carry no row).
//!
//! The limitation is the standard one for field studies: two independent
//! faults with overlapping footprints in the same bank merge. The
//! simulator's ground truth lets the test suite measure that confusion
//! instead of guessing at it.

use std::collections::HashMap;

use astra_logs::CeRecord;
use astra_topology::{DimmSlot, NodeId, RankId};
use astra_util::Minute;

use crate::classify::ObservedMode;

/// Tunables for coalescing.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// Minimum distinct banks sharing a bit lane before the lane is
    /// declared a rank-level (pin) fault.
    pub pin_bank_threshold: usize,
    /// Minimum distinct columns for a bank group to be considered a
    /// genuinely bank-dispersed fault. Below this, the group is split per
    /// column — two independent faults that happen to share a bank stay
    /// separate (the "minimal fault set" principle).
    pub bank_dispersion_cols: usize,
    /// A bank-dispersed fault must also spread its addresses: if one
    /// column holds more than this share of the distinct addresses, the
    /// group is split per column instead.
    pub bank_max_col_share: f64,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            pin_bank_threshold: 4,
            bank_dispersion_cols: 6,
            bank_max_col_share: 0.5,
        }
    }
}

/// A fault inferred from the error stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedFault {
    /// Node the fault lives on.
    pub node: NodeId,
    /// DIMM slot.
    pub slot: DimmSlot,
    /// Rank within the DIMM.
    pub rank: RankId,
    /// Bank, for per-bank modes; `None` for rank-level faults.
    pub bank: Option<u16>,
    /// Column, for modes confined to one column.
    pub col: Option<u16>,
    /// Inferred mode.
    pub mode: ObservedMode,
    /// Representative bit position (the most common logged value).
    pub bit_pos: u16,
    /// Representative physical address (for single-address modes).
    pub addr: Option<u64>,
    /// Number of errors attributed to this fault.
    pub error_count: u64,
    /// First and last error times.
    pub first_seen: Minute,
    /// Last attributed error.
    pub last_seen: Minute,
    /// Indices into the input record slice for the attributed errors.
    pub record_indices: Vec<u32>,
}

impl ObservedFault {
    /// Month index (Jan 2019 = 0) of each attributed error.
    pub fn error_months<'a>(&'a self, records: &'a [CeRecord]) -> impl Iterator<Item = i64> + 'a {
        self.record_indices
            .iter()
            .map(move |&i| records[i as usize].time.month_index())
    }
}

/// Below this many records the parallel path's partition/spawn overhead
/// outweighs the win; coalesce runs sequentially.
const PARALLEL_COALESCE_MIN_RECORDS: usize = 50_000;

/// The per-error footprint coalescing actually consumes: everything the
/// classifier reads from a [`CeRecord`], in 32 bytes instead of the full
/// record. The incremental engine buffers these instead of whole records,
/// which is what bounds its coalesce state below the batch working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CeFootprint {
    /// Index of the record in the originating CE stream (file order).
    pub idx: u32,
    /// Error time.
    pub time: Minute,
    /// Bank within the rank.
    pub bank: u16,
    /// Column within the bank.
    pub col: u16,
    /// Failing bit position.
    pub bit_pos: u16,
    /// Physical address of the error.
    pub addr: u64,
}

impl CeFootprint {
    /// Extracts the footprint of `rec`, remembered as stream index `idx`.
    pub fn of_record(idx: u32, rec: &CeRecord) -> CeFootprint {
        CeFootprint {
            idx,
            time: rec.time,
            bank: rec.bank,
            col: rec.col,
            bit_pos: rec.bit_pos,
            addr: rec.addr.0,
        }
    }
}

/// Device-population group key: `(node, slot index, rank)`.
pub(crate) type GroupKey = (u32, u8, u8);

/// Footprints of one CE record stream partitioned by device population.
///
/// Both the batch [`coalesce`] entry point and the incremental engine's
/// coalesce analyzer accumulate into this map, then classify through the
/// same [`classify_groups`] — which is what makes their outputs provably
/// identical.
pub(crate) fn group_footprints(records: &[CeRecord]) -> HashMap<GroupKey, Vec<CeFootprint>> {
    let mut groups: HashMap<GroupKey, Vec<CeFootprint>> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        groups
            .entry((rec.node.0, rec.slot.index() as u8, rec.rank.0))
            .or_default()
            .push(CeFootprint::of_record(i as u32, rec));
    }
    groups
}

/// Classify grouped footprints into the sorted fault list, fanning groups
/// across workers when `total_records` crosses the parallel threshold.
/// Emits the `coalesce.groups` / `coalesce.mode.*` counters and the
/// `coalesce` span. Single code path for batch and streaming — groups are
/// borrowed so a streaming snapshot classifies in place without cloning
/// its accumulated footprint state.
pub(crate) fn classify_groups(
    mut groups: Vec<(GroupKey, &[CeFootprint])>,
    total_records: usize,
    config: &CoalesceConfig,
) -> Vec<ObservedFault> {
    let _span = astra_obs::span("coalesce");
    groups.sort_unstable_by_key(|(key, _)| *key);
    let groups_seen = groups.len() as u64;

    let run_group = |(key, feet): &(GroupKey, &[CeFootprint])| -> Vec<ObservedFault> {
        let &(node, slot_idx, rank) = key;
        let node = NodeId(node);
        let slot = DimmSlot::from_index(slot_idx).expect("slot from grouping");
        let rank = RankId(rank);
        let mut local = Vec::new();
        coalesce_group(node, slot, rank, feet, config, &mut local);
        local
    };

    let parallel = total_records >= PARALLEL_COALESCE_MIN_RECORDS
        && astra_util::par::worker_count(groups.len()) > 1;
    let per_group: Vec<Vec<ObservedFault>> = if parallel {
        astra_util::par::par_map(&groups, run_group)
    } else {
        groups.iter().map(run_group).collect()
    };
    let mut out: Vec<ObservedFault> = Vec::with_capacity(per_group.iter().map(Vec::len).sum());
    out.extend(per_group.into_iter().flatten());
    out.sort_by_key(|f| {
        (
            f.node.0,
            f.slot.index() as u8,
            f.rank.0,
            f.first_seen,
            f.bit_pos,
            f.bank,
        )
    });

    let obs = astra_obs::global();
    obs.counter("coalesce.groups").add(groups_seen);
    for fault in &out {
        obs.counter(&format!("coalesce.mode.{}", fault.mode.name()))
            .inc();
    }
    out
}

/// Coalesce a CE record stream into observed faults.
///
/// Records may arrive in any order; output is sorted by
/// `(node, slot, rank, first_seen)` and is deterministic.
///
/// `(node, slot, rank)` groups are independent by construction, so large
/// inputs fan the groups out across workers with `par_map`; the group
/// list is key-sorted first and each group's work is order-insensitive,
/// so the output is bit-identical to the sequential path at any worker
/// count.
pub fn coalesce(records: &[CeRecord], config: &CoalesceConfig) -> Vec<ObservedFault> {
    let groups = group_footprints(records);
    let views: Vec<(GroupKey, &[CeFootprint])> = groups
        .iter()
        .map(|(key, feet)| (*key, feet.as_slice()))
        .collect();
    classify_groups(views, records.len(), config)
}

/// Coalesce one `(node, slot, rank)` group.
fn coalesce_group(
    node: NodeId,
    slot: DimmSlot,
    rank: RankId,
    feet: &[CeFootprint],
    config: &CoalesceConfig,
    out: &mut Vec<ObservedFault>,
) {
    // Pass 1: find pin lanes — bit positions seen in many banks.
    let mut lane_banks: HashMap<u16, std::collections::BTreeSet<u16>> = HashMap::new();
    for f in feet {
        lane_banks.entry(f.bit_pos).or_default().insert(f.bank);
    }
    let pin_lanes: std::collections::BTreeSet<u16> = lane_banks
        .iter()
        .filter(|(_, banks)| banks.len() >= config.pin_bank_threshold)
        .map(|(&lane, _)| lane)
        .collect();

    let mut per_lane: HashMap<u16, Vec<CeFootprint>> = HashMap::new();
    let mut per_bank: HashMap<u16, Vec<CeFootprint>> = HashMap::new();
    for f in feet {
        if pin_lanes.contains(&f.bit_pos) {
            per_lane.entry(f.bit_pos).or_default().push(*f);
        } else {
            per_bank.entry(f.bank).or_default().push(*f);
        }
    }

    // Rank-level faults, one per pin lane.
    let mut lanes: Vec<(u16, Vec<CeFootprint>)> = per_lane.into_iter().collect();
    lanes.sort_by_key(|(lane, _)| *lane);
    for (lane, lane_feet) in lanes {
        out.push(build_fault(
            node,
            slot,
            rank,
            None,
            None,
            ObservedMode::RankLevel,
            lane,
            None,
            lane_feet,
        ));
    }

    // Per-bank footprint classification.
    let mut banks: Vec<(u16, Vec<CeFootprint>)> = per_bank.into_iter().collect();
    banks.sort_by_key(|(bank, _)| *bank);
    for (bank, bank_feet) in banks {
        classify_bank_group(node, slot, rank, bank, bank_feet, config, out);
    }
}

/// Classify the errors of one `(node, slot, rank, bank)` group into the
/// minimal consistent fault set.
///
/// A *bank-dispersed* footprint — many columns, no single column holding
/// most of the addresses — is one single-bank fault (on Astra this bucket
/// also covers true single-row faults, §3.2). Anything narrower is split
/// per column, so two independent faults sharing a bank are not merged:
/// a column holding several addresses is a single-column fault; a single
/// address is a single-bit or single-word fault.
#[allow(clippy::too_many_arguments)]
fn classify_bank_group(
    node: NodeId,
    slot: DimmSlot,
    rank: RankId,
    bank: u16,
    feet: Vec<CeFootprint>,
    config: &CoalesceConfig,
    out: &mut Vec<ObservedFault>,
) {
    let mut addrs = std::collections::BTreeSet::new();
    let mut cols = std::collections::BTreeSet::new();
    let mut col_addrs: HashMap<u16, std::collections::BTreeSet<u64>> = HashMap::new();
    for f in &feet {
        addrs.insert(f.addr);
        cols.insert(f.col);
        col_addrs.entry(f.col).or_default().insert(f.addr);
    }

    // Bank-dispersed: many columns, addresses spread across them.
    let max_col_addrs = col_addrs.values().map(|a| a.len()).max().unwrap_or(0);
    let dispersed = cols.len() >= config.bank_dispersion_cols
        && (max_col_addrs as f64) < config.bank_max_col_share * addrs.len() as f64;
    if dispersed {
        let lane = majority_bit(&feet);
        out.push(build_fault(
            node,
            slot,
            rank,
            Some(bank),
            None,
            ObservedMode::SingleBank,
            lane,
            None,
            feet,
        ));
        return;
    }

    // Otherwise split per column.
    let mut per_col: HashMap<u16, Vec<CeFootprint>> = HashMap::new();
    for f in feet {
        per_col.entry(f.col).or_default().push(f);
    }
    let mut col_groups: Vec<(u16, Vec<CeFootprint>)> = per_col.into_iter().collect();
    col_groups.sort_by_key(|(col, _)| *col);
    for (col, col_feet) in col_groups {
        let mut col_addr_bits = std::collections::BTreeSet::new();
        let mut col_addr_set = std::collections::BTreeSet::new();
        for f in &col_feet {
            col_addr_set.insert(f.addr);
            col_addr_bits.insert((f.addr, f.bit_pos));
        }
        let (mode, addr) = if col_addr_set.len() == 1 {
            let addr = Some(*col_addr_set.iter().next().expect("nonempty"));
            if col_addr_bits.len() == 1 {
                (ObservedMode::SingleBit, addr)
            } else {
                (ObservedMode::SingleWord, addr)
            }
        } else {
            (ObservedMode::SingleColumn, None)
        };
        let lane = majority_bit(&col_feet);
        out.push(build_fault(
            node,
            slot,
            rank,
            Some(bank),
            Some(col),
            mode,
            lane,
            addr,
            col_feet,
        ));
    }
}

/// Most common bit position in a set of footprints (ties → smallest).
fn majority_bit(feet: &[CeFootprint]) -> u16 {
    let mut counts: HashMap<u16, u32> = HashMap::new();
    for f in feet {
        *counts.entry(f.bit_pos).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(bit, _)| bit)
        .expect("nonempty footprint set")
}

#[allow(clippy::too_many_arguments)]
fn build_fault(
    node: NodeId,
    slot: DimmSlot,
    rank: RankId,
    bank: Option<u16>,
    col: Option<u16>,
    mode: ObservedMode,
    bit_pos: u16,
    addr: Option<u64>,
    feet: Vec<CeFootprint>,
) -> ObservedFault {
    let mut record_indices: Vec<u32> = feet.iter().map(|f| f.idx).collect();
    record_indices.sort_unstable();
    let first = feet
        .iter()
        .map(|f| f.time)
        .min()
        .expect("fault with no records");
    let last = feet
        .iter()
        .map(|f| f.time)
        .max()
        .expect("fault with no records");
    ObservedFault {
        node,
        slot,
        rank,
        bank,
        col,
        mode,
        bit_pos,
        addr,
        error_count: record_indices.len() as u64,
        first_seen: first,
        last_seen: last,
        record_indices,
    }
}

#[cfg(test)]
#[allow(clippy::too_many_arguments)]
mod tests {
    use super::*;
    use astra_topology::{PhysAddr, SocketId};
    use astra_util::CalDate;

    fn rec(
        node: u32,
        slot: char,
        rank: u8,
        bank: u16,
        col: u16,
        bit: u16,
        addr: u64,
        minute: i64,
    ) -> CeRecord {
        let slot = DimmSlot::from_letter(slot).unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 1).midnight().plus(minute),
            node: NodeId(node),
            socket: slot.socket(),
            slot,
            rank: RankId(rank),
            bank,
            row: None,
            col,
            bit_pos: bit,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    fn run(records: &[CeRecord]) -> Vec<ObservedFault> {
        coalesce(records, &CoalesceConfig::default())
    }

    #[test]
    fn empty_input() {
        assert!(run(&[]).is_empty());
    }

    #[test]
    fn one_error_is_single_bit() {
        let faults = run(&[rec(1, 'A', 0, 3, 7, 42, 0x1000, 0)]);
        assert_eq!(faults.len(), 1);
        let f = &faults[0];
        assert_eq!(f.mode, ObservedMode::SingleBit);
        assert_eq!(f.error_count, 1);
        assert_eq!(f.bank, Some(3));
        assert_eq!(f.addr, Some(0x1000));
        assert_eq!(f.socket_id(), SocketId(0));
    }

    #[test]
    fn repeated_same_location_is_one_single_bit_fault() {
        let records: Vec<CeRecord> = (0..50)
            .map(|m| rec(1, 'B', 1, 2, 9, 100, 0x2000, m))
            .collect();
        let faults = run(&records);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].mode, ObservedMode::SingleBit);
        assert_eq!(faults[0].error_count, 50);
    }

    #[test]
    fn same_word_different_bits_is_single_word() {
        let records = vec![
            rec(1, 'C', 0, 1, 5, 64, 0x3000, 0),
            rec(1, 'C', 0, 1, 5, 65, 0x3000, 1),
            rec(1, 'C', 0, 1, 5, 70, 0x3000, 2),
        ];
        let faults = run(&records);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].mode, ObservedMode::SingleWord);
    }

    #[test]
    fn same_column_many_addresses_is_single_column() {
        let records: Vec<CeRecord> = (0..10)
            .map(|i| rec(1, 'D', 0, 6, 33, 9, 0x4000 + i, i as i64))
            .collect();
        let faults = run(&records);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].mode, ObservedMode::SingleColumn);
        assert_eq!(faults[0].col, Some(33));
    }

    #[test]
    fn multi_column_same_bank_is_single_bank() {
        let records: Vec<CeRecord> = (0..10)
            .map(|i| rec(1, 'E', 0, 6, i as u16, 9, 0x5000 + i, i as i64))
            .collect();
        let faults = run(&records);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].mode, ObservedMode::SingleBank);
        assert_eq!(faults[0].bank, Some(6));
    }

    #[test]
    fn pin_lane_across_banks_is_rank_level() {
        // Same bit lane in 6 banks.
        let records: Vec<CeRecord> = (0..12)
            .map(|i| {
                rec(
                    1,
                    'F',
                    1,
                    (i % 6) as u16,
                    i as u16,
                    200,
                    0x6000 + i,
                    i as i64,
                )
            })
            .collect();
        let faults = run(&records);
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].mode, ObservedMode::RankLevel);
        assert_eq!(faults[0].bank, None);
        assert_eq!(faults[0].error_count, 12);
        assert_eq!(faults[0].bit_pos, 200);
    }

    #[test]
    fn below_pin_threshold_stays_per_bank() {
        // Same bit in only 3 banks (< default threshold 4): three
        // independent single-bit faults.
        let records: Vec<CeRecord> = (0..3)
            .map(|i| rec(1, 'G', 0, i as u16, 5, 77, 0x7000 + i, i as i64))
            .collect();
        let faults = run(&records);
        assert_eq!(faults.len(), 3);
        assert!(faults.iter().all(|f| f.mode == ObservedMode::SingleBit));
    }

    #[test]
    fn pin_lane_coexists_with_independent_fault() {
        let mut records: Vec<CeRecord> = (0..8)
            .map(|i| rec(1, 'H', 0, i as u16, 2, 300, 0x8000 + i, i as i64))
            .collect();
        // An unrelated stuck bit in bank 0, different lane.
        records.push(rec(1, 'H', 0, 0, 9, 17, 0x9000, 20));
        records.push(rec(1, 'H', 0, 0, 9, 17, 0x9000, 21));
        let faults = run(&records);
        assert_eq!(faults.len(), 2);
        let modes: Vec<ObservedMode> = faults.iter().map(|f| f.mode).collect();
        assert!(modes.contains(&ObservedMode::RankLevel));
        assert!(modes.contains(&ObservedMode::SingleBit));
    }

    #[test]
    fn separate_ranks_do_not_merge() {
        let records = vec![
            rec(1, 'I', 0, 1, 1, 10, 0xA000, 0),
            rec(1, 'I', 1, 1, 1, 10, 0xA000, 1),
        ];
        let faults = run(&records);
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn separate_nodes_do_not_merge() {
        let records = vec![
            rec(1, 'J', 0, 1, 1, 10, 0xB000, 0),
            rec(2, 'J', 0, 1, 1, 10, 0xB000, 1),
        ];
        assert_eq!(run(&records).len(), 2);
    }

    #[test]
    fn independent_bit_faults_in_same_bank_stay_separate() {
        // Two sticky single-bit faults that happen to share a bank must
        // not merge into a phantom single-bank fault (the minimal-fault-
        // set principle).
        let mut records: Vec<CeRecord> = (0..40)
            .map(|m| rec(1, 'O', 0, 3, 10, 21, 0xAA00, m))
            .collect();
        records.extend((0..25).map(|m| rec(1, 'O', 0, 3, 55, 99, 0xBB00, 100 + m)));
        let faults = run(&records);
        assert_eq!(faults.len(), 2, "faults: {faults:?}");
        assert!(faults.iter().all(|f| f.mode == ObservedMode::SingleBit));
        let counts: Vec<u64> = faults.iter().map(|f| f.error_count).collect();
        assert!(counts.contains(&40) && counts.contains(&25));
    }

    #[test]
    fn column_fault_plus_bit_fault_in_same_bank_split() {
        // A column fault (many addresses, one column) plus an unrelated
        // stuck bit in another column of the same bank.
        let mut records: Vec<CeRecord> = (0..20)
            .map(|i| rec(1, 'P', 1, 7, 12, 5, 0xC000 + i, i as i64))
            .collect();
        records.push(rec(1, 'P', 1, 7, 90, 300, 0xD000, 50));
        records.push(rec(1, 'P', 1, 7, 90, 300, 0xD000, 51));
        let faults = run(&records);
        assert_eq!(faults.len(), 2, "faults: {faults:?}");
        let modes: Vec<ObservedMode> = faults.iter().map(|f| f.mode).collect();
        assert!(modes.contains(&ObservedMode::SingleColumn));
        assert!(modes.contains(&ObservedMode::SingleBit));
    }

    #[test]
    fn record_indices_cover_input_exactly_once() {
        let records: Vec<CeRecord> = (0..40)
            .map(|i| {
                rec(
                    (i % 3) as u32,
                    if i % 2 == 0 { 'K' } else { 'L' },
                    (i % 2) as u8,
                    (i % 5) as u16,
                    (i % 7) as u16,
                    (i % 11) as u16 * 13,
                    0xC000 + (i % 13),
                    i as i64,
                )
            })
            .collect();
        let faults = run(&records);
        let mut seen = vec![false; records.len()];
        for f in &faults {
            assert_eq!(f.error_count as usize, f.record_indices.len());
            for &i in &f.record_indices {
                assert!(!seen[i as usize], "record {i} attributed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v), "every record must be attributed");
    }

    #[test]
    fn first_and_last_seen() {
        let records = vec![
            rec(1, 'M', 0, 1, 1, 10, 0xD000, 500),
            rec(1, 'M', 0, 1, 1, 10, 0xD000, 100),
            rec(1, 'M', 0, 1, 1, 10, 0xD000, 900),
        ];
        let f = &run(&records)[0];
        assert_eq!(f.first_seen.value() % 1440, 100);
        assert_eq!(f.last_seen.value() % 1440, 900);
    }

    #[test]
    fn deterministic_regardless_of_input_order() {
        let mut records: Vec<CeRecord> = (0..30)
            .map(|i| {
                rec(
                    1,
                    'N',
                    0,
                    (i % 8) as u16,
                    (i % 4) as u16,
                    50,
                    0xE000 + i,
                    i as i64,
                )
            })
            .collect();
        let a = run(&records);
        records.reverse();
        let b = run(&records);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.error_count, y.error_count);
            assert_eq!(x.bank, y.bank);
        }
    }

    impl ObservedFault {
        fn socket_id(&self) -> SocketId {
            self.slot.socket()
        }
    }
}

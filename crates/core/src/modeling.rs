//! Failure modeling and prediction.
//!
//! §3.2: "the frequency and distribution shape is critical to modeling
//! failures." This module turns the measured distributions into usable
//! models:
//!
//! * [`NodePopulationModel`] — the zero-inflated power law that Fig 5a
//!   exhibits, fitted from per-node fault counts, with closed-form tail
//!   queries for capacity planners ("what fraction of nodes will exceed
//!   k faults?");
//! * [`temporal_prediction`] — the operational question behind the
//!   exclude-list advice: does a node's error history predict its
//!   *future* faults? Train on the first part of the interval, rank
//!   nodes, and measure precision/lift on the remainder.

use astra_stats::{fit_power_law_auto, PowerLawFit};
use astra_util::Minute;

use crate::pipeline::Analysis;

/// A zero-inflated power-law model of faults per node.
#[derive(Debug, Clone, Copy)]
pub struct NodePopulationModel {
    /// Probability a node has zero faults.
    pub p_zero: f64,
    /// Power-law fit over the positive fault counts.
    pub tail: PowerLawFit,
    /// Number of nodes the model was fitted on.
    pub nodes: usize,
}

impl NodePopulationModel {
    /// Fit from per-node fault counts (including zeros).
    pub fn fit(fault_counts: &[u64]) -> Option<Self> {
        if fault_counts.is_empty() {
            return None;
        }
        let zeros = fault_counts.iter().filter(|&&c| c == 0).count();
        let positive: Vec<u64> = fault_counts.iter().copied().filter(|&c| c > 0).collect();
        let tail = fit_power_law_auto(&positive, 10, 16)?;
        Some(NodePopulationModel {
            p_zero: zeros as f64 / fault_counts.len() as f64,
            tail,
            nodes: fault_counts.len(),
        })
    }

    /// Model probability a node has at least `k` faults (`k ≥ 1`).
    ///
    /// Uses the fitted tail's complementary CDF; below the fitted `xmin`
    /// the empirical zero-inflation dominates and the model interpolates
    /// conservatively from `P(>0)`.
    pub fn p_at_least(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let p_positive = 1.0 - self.p_zero;
        if k <= self.tail.xmin {
            p_positive
        } else {
            p_positive * self.tail.ccdf(k as f64)
        }
    }

    /// Expected number of nodes with at least `k` faults.
    pub fn expected_nodes_at_least(&self, k: u64) -> f64 {
        self.p_at_least(k) * self.nodes as f64
    }
}

/// Result of the history-predicts-future experiment.
#[derive(Debug, Clone, Copy)]
pub struct PredictionEval {
    /// Nodes flagged (the k with most pre-split errors).
    pub flagged: usize,
    /// Nodes that developed at least one *new* fault after the split.
    pub positives: usize,
    /// Flagged nodes that were true positives.
    pub hits: usize,
    /// Precision among the flagged set.
    pub precision: f64,
    /// Base rate: positives / all nodes.
    pub base_rate: f64,
}

impl PredictionEval {
    /// How much better than random flagging: precision / base rate.
    pub fn lift(&self) -> f64 {
        if self.base_rate == 0.0 {
            0.0
        } else {
            self.precision / self.base_rate
        }
    }
}

/// Flag the `k` nodes with the most errors before `split`; score against
/// nodes whose first *new* fault appears at or after `split`.
pub fn temporal_prediction(analysis: &Analysis, split: Minute, k: usize) -> PredictionEval {
    let node_count = analysis.system.node_count() as usize;

    // Training signal: errors per node strictly before the split.
    let mut pre_errors = vec![0u64; node_count];
    for rec in &analysis.records {
        if rec.time < split {
            pre_errors[rec.node.0 as usize] += 1;
        }
    }

    // Targets: nodes with a fault first seen at/after the split.
    let mut is_positive = vec![false; node_count];
    for fault in &analysis.faults {
        if fault.first_seen >= split {
            is_positive[fault.node.0 as usize] = true;
        }
    }
    let positives = is_positive.iter().filter(|&&p| p).count();

    // Rank by pre-split errors (ties by node id for determinism).
    let mut order: Vec<usize> = (0..node_count).collect();
    order.sort_by_key(|&n| (std::cmp::Reverse(pre_errors[n]), n));
    let flagged = k.min(node_count);
    let hits = order[..flagged]
        .iter()
        .filter(|&&n| is_positive[n] && pre_errors[n] > 0)
        .count();

    PredictionEval {
        flagged,
        positives,
        hits,
        precision: if flagged == 0 {
            0.0
        } else {
            hits as f64 / flagged as f64
        },
        base_rate: positives as f64 / node_count as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig5;
    use crate::pipeline::Dataset;
    use astra_util::CalDate;

    fn analysis() -> Analysis {
        let ds = Dataset::generate(4, 42);
        Analysis::run(ds.system, ds.sim.ce_log.clone())
    }

    #[test]
    fn model_fits_and_reproduces_zero_fraction() {
        let a = analysis();
        let counts = a.spatial.fault_counts_all_nodes(&a.system);
        let model = NodePopulationModel::fit(&counts).expect("fit");
        let empirical_zero =
            counts.iter().filter(|&&c| c == 0).count() as f64 / counts.len() as f64;
        assert!((model.p_zero - empirical_zero).abs() < 1e-12);
        assert!(model.p_zero > 0.5, "most nodes are fault-free");
        // Model tail prediction vs empirical tail, order of magnitude.
        let k = 10;
        let empirical = counts.iter().filter(|&&c| c >= k).count() as f64;
        let predicted = model.expected_nodes_at_least(k);
        assert!(
            predicted > empirical * 0.3 && predicted < empirical * 3.0 + 10.0,
            "k={k}: predicted {predicted} vs empirical {empirical}"
        );
    }

    #[test]
    fn p_at_least_is_monotone() {
        let a = analysis();
        let counts = a.spatial.fault_counts_all_nodes(&a.system);
        let model = NodePopulationModel::fit(&counts).expect("fit");
        let mut prev = model.p_at_least(1);
        for k in 2..40 {
            let p = model.p_at_least(k);
            assert!(p <= prev + 1e-12, "k={k}: {p} > {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert_eq!(model.p_at_least(0), 1.0);
    }

    #[test]
    fn fit_rejects_degenerate() {
        assert!(NodePopulationModel::fit(&[]).is_none());
        // All zeros: no positive tail to fit.
        assert!(NodePopulationModel::fit(&[0, 0, 0]).is_none());
    }

    #[test]
    fn history_predicts_future_faults() {
        let a = analysis();
        let split = CalDate::new(2019, 5, 20).midnight();
        let eval = temporal_prediction(&a, split, 20);
        assert!(eval.positives > 10, "positives {}", eval.positives);
        assert!(
            eval.lift() > 2.0,
            "error history should beat random flagging: lift {:.2} \
             (precision {:.2}, base {:.3})",
            eval.lift(),
            eval.precision,
            eval.base_rate
        );
    }

    #[test]
    fn prediction_handles_degenerate_k() {
        let a = analysis();
        let split = CalDate::new(2019, 5, 20).midnight();
        let zero = temporal_prediction(&a, split, 0);
        assert_eq!(zero.precision, 0.0);
        let all = temporal_prediction(&a, split, 10_000);
        assert_eq!(all.flagged, a.system.node_count() as usize);
    }

    #[test]
    fn model_is_consistent_with_fig5_fit() {
        // The model's tail and Fig 5's power-law fit are computed from the
        // same data — they must agree.
        let a = analysis();
        let counts = a.spatial.fault_counts_all_nodes(&a.system);
        let model = NodePopulationModel::fit(&counts).expect("fit");
        let fig = fig5::compute(&a);
        let fig_fit = fig.fault_power_law.expect("fig5 fit");
        assert!((model.tail.alpha - fig_fit.alpha).abs() < 0.5);
    }
}

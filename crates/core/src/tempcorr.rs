//! Temperature / utilization ↔ correctable-error analyses (§3.3).
//!
//! Three analyses, mirroring the paper's methodology exactly:
//!
//! * [`window_correlation`] (Fig 9) — for each CE, the mean temperature of
//!   the errored DIMM's sensor over the interval immediately preceding the
//!   error (one hour to one month), binned by temperature, with an OLS fit
//!   whose slope sign is the verdict;
//! * [`temperature_deciles`] (Fig 13, after Schroeder et al.) — monthly
//!   average sensor temperature per (node, month) sample, cut into
//!   deciles, vs the average monthly CE count within each decile;
//! * [`power_hot_cold`] (Fig 14) — monthly average node DC power (the
//!   utilization proxy; Astra has no direct CPU-utilization telemetry) cut
//!   into deciles, split into "hot" and "cold" halves by the sensor's
//!   median temperature — Schroeder et al.'s method for separating the
//!   temperature effect from the utilization effect.
//!
//! All three operate on the *sensor assigned to the errored component*:
//! CE records carry the DIMM slot, and §2.2 defines which of the four
//! DIMM sensors covers each slot.

use astra_logs::CeRecord;
use astra_stats::{deciles, linear_fit, median, LinearFit};
use astra_telemetry::TelemetryModel;
use astra_topology::{DimmGroup, NodeId, SensorId, SystemConfig};
use astra_util::time::TimeSpan;

/// Sampling knobs — the full dataset is large, so the analyses subsample
/// deterministically (every k-th CE / configurable telemetry strides).
#[derive(Debug, Clone, Copy)]
pub struct TempCorrConfig {
    /// Maximum CEs to evaluate in [`window_correlation`].
    pub max_ce_samples: usize,
    /// Telemetry sampling stride (minutes) inside a pre-error window.
    pub window_stride: u64,
    /// Telemetry sampling stride (minutes) for monthly means.
    pub monthly_stride: u64,
    /// Temperature bin width (°C) for the Fig 9 scatter.
    pub bin_width: f64,
}

impl Default for TempCorrConfig {
    fn default() -> Self {
        TempCorrConfig {
            max_ce_samples: 20_000,
            window_stride: 30,
            monthly_stride: 12 * 60,
            bin_width: 1.0,
        }
    }
}

/// Result of the Fig 9 analysis for one window length.
#[derive(Debug, Clone)]
pub struct WindowCorrelation {
    /// Window length in minutes.
    pub window_minutes: u64,
    /// `(bin center °C, CE count)` points, ascending by temperature.
    pub points: Vec<(f64, f64)>,
    /// OLS fit over the points (`None` if degenerate).
    pub fit: Option<LinearFit>,
    /// CEs actually evaluated.
    pub sampled: usize,
    /// Scale factor from sampling (total CEs ÷ sampled); multiply counts
    /// by this to estimate full-population bin counts.
    pub sample_scale: f64,
}

impl WindowCorrelation {
    /// Slope relative to the mean bin height — the dimensionless "is
    /// temperature driving errors" number. Near zero ⇒ the paper's
    /// negative result.
    pub fn relative_slope_per_degree(&self) -> Option<f64> {
        let fit = self.fit?;
        let mean_y: f64 =
            self.points.iter().map(|(_, y)| *y).sum::<f64>() / self.points.len() as f64;
        (mean_y > 0.0).then(|| fit.slope / mean_y)
    }
}

/// Fig 9: CE count vs mean errored-DIMM temperature over the preceding
/// window.
pub fn window_correlation(
    records: &[CeRecord],
    telemetry: &TelemetryModel,
    span: TimeSpan,
    window_minutes: u64,
    config: &TempCorrConfig,
) -> WindowCorrelation {
    // Only errors inside the sensor-data interval can be attributed.
    let eligible: Vec<&CeRecord> = records
        .iter()
        .filter(|r| span.contains(r.time) && r.time.value() - (window_minutes as i64) >= 0)
        .collect();
    let step = (eligible.len() / config.max_ce_samples).max(1);
    let sampled: Vec<&CeRecord> = eligible.iter().step_by(step).copied().collect();

    let mut temps: Vec<f64> = Vec::with_capacity(sampled.len());
    for rec in &sampled {
        let sensor = SensorId::for_slot(rec.slot);
        if let Some(mean) = telemetry.window_mean(
            rec.node,
            sensor,
            rec.time,
            window_minutes,
            config.window_stride.min(window_minutes.max(1)),
        ) {
            temps.push(mean);
        }
    }

    // Bin by temperature.
    let mut points: Vec<(f64, f64)> = Vec::new();
    if !temps.is_empty() {
        let lo = temps.iter().cloned().fold(f64::MAX, f64::min);
        let hi = temps.iter().cloned().fold(f64::MIN, f64::max) + 1e-9;
        let bins = (((hi - lo) / config.bin_width).ceil() as usize).max(1);
        let mut counts = vec![0u64; bins];
        for &t in &temps {
            let idx = (((t - lo) / config.bin_width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                points.push((lo + config.bin_width * (i as f64 + 0.5), c as f64));
            }
        }
    }
    let xs: Vec<f64> = points.iter().map(|(x, _)| *x).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
    let fit = linear_fit(&xs, &ys);
    let sample_scale = if sampled.is_empty() {
        1.0
    } else {
        eligible.len() as f64 / sampled.len() as f64
    };
    WindowCorrelation {
        window_minutes,
        points,
        fit,
        sampled: sampled.len(),
        sample_scale,
    }
}

/// A `(node, month)` observation: the unit of the Fig 13/14 analyses.
#[derive(Debug, Clone, Copy)]
pub struct MonthlySample {
    /// The node.
    pub node: NodeId,
    /// Month index (Jan 2019 = 0).
    pub month: i64,
    /// Monthly mean of the sensor's temperature (or power).
    pub mean_value: f64,
    /// CEs attributed to the sensor's components in that month.
    pub ce_count: u64,
}

/// One decile point: max sample value in the decile vs mean monthly CE
/// count over the decile.
pub type DecilePoint = (f64, f64);

/// A labeled decile series (one line in Fig 13 / Fig 14).
#[derive(Debug, Clone)]
pub struct DecileSeries {
    /// Legend label, e.g. `CPU1` or `CPU2 DIMMs 1-4 (hot)`.
    pub label: String,
    /// Ten (or fewer) decile points.
    pub points: Vec<DecilePoint>,
}

/// Which months (indices from Jan 2019) intersect a span.
fn months_in(span: TimeSpan) -> Vec<i64> {
    let first = span.start.month_index();
    let last = span.end.plus(-1).month_index();
    (first..=last).collect()
}

/// Collect `(node, month)` samples for one sensor: its monthly mean value
/// and the CE count on its associated components.
pub fn monthly_samples(
    records: &[CeRecord],
    telemetry: &TelemetryModel,
    system: &SystemConfig,
    span: TimeSpan,
    sensor: SensorId,
    config: &TempCorrConfig,
) -> Vec<MonthlySample> {
    // Pre-tally CE counts per (node, month) for this sensor's components.
    let relevant = |rec: &CeRecord| match sensor.kind() {
        astra_topology::SensorKind::CpuTemp(socket) => rec.socket == socket,
        astra_topology::SensorKind::DimmTemp(group) => DimmGroup::of_slot(rec.slot) == group,
        astra_topology::SensorKind::DcPower => true,
    };
    let mut ce: std::collections::HashMap<(u32, i64), u64> = std::collections::HashMap::new();
    for rec in records {
        if span.contains(rec.time) && relevant(rec) {
            *ce.entry((rec.node.0, rec.time.month_index())).or_insert(0) += 1;
        }
    }

    let months = months_in(span);
    let mut out = Vec::new();
    for node in system.nodes() {
        for &month in &months {
            // Month window clipped to the span.
            let m_start = month_start(month).max(span.start.value());
            let m_end = month_start(month + 1).min(span.end.value());
            if m_end <= m_start {
                continue;
            }
            let mut sum = 0.0;
            let mut n = 0u64;
            let mut t = m_start;
            while t < m_end {
                if let Some(v) = telemetry
                    .reading(node, sensor, astra_util::Minute::from_i64(t))
                    .valid_value()
                {
                    sum += v;
                    n += 1;
                }
                t += config.monthly_stride as i64;
            }
            if n == 0 {
                continue;
            }
            out.push(MonthlySample {
                node,
                month,
                mean_value: sum / n as f64,
                ce_count: ce.get(&(node.0, month)).copied().unwrap_or(0),
            });
        }
    }
    out
}

/// First minute of a month index (Jan 2019 = 0).
fn month_start(month: i64) -> i64 {
    let year = 2019 + month.div_euclid(12);
    let m = month.rem_euclid(12) as u32 + 1;
    astra_util::CalDate::new(year, m, 1).midnight().value()
}

/// Reduce samples to a decile series: x = decile max of `mean_value`,
/// y = mean `ce_count` in the decile.
pub fn decile_series(label: &str, samples: &[MonthlySample]) -> DecileSeries {
    let values: Vec<f64> = samples.iter().map(|s| s.mean_value).collect();
    let points = deciles(&values)
        .into_iter()
        .map(|bucket| {
            let mean_ce = bucket
                .members
                .iter()
                .map(|&i| samples[i].ce_count as f64)
                .sum::<f64>()
                / bucket.members.len() as f64;
            (bucket.max_value, mean_ce)
        })
        .collect();
    DecileSeries {
        label: label.to_string(),
        points,
    }
}

/// Fig 13: decile series for the temperature sensors.
///
/// Returns `(cpu_series, dimm_series)`: two CPU lines and four DIMM-group
/// lines.
pub fn temperature_deciles(
    records: &[CeRecord],
    telemetry: &TelemetryModel,
    system: &SystemConfig,
    span: TimeSpan,
    config: &TempCorrConfig,
) -> (Vec<DecileSeries>, Vec<DecileSeries>) {
    let mut cpu = Vec::new();
    for socket in astra_topology::SocketId::ALL {
        let sensor = SensorId::cpu(socket);
        let samples = monthly_samples(records, telemetry, system, span, sensor, config);
        cpu.push(decile_series(socket.cpu_label(), &samples));
    }
    let mut dimm = Vec::new();
    for group in DimmGroup::ALL {
        let sensor = SensorId::dimm_group(group);
        let samples = monthly_samples(records, telemetry, system, span, sensor, config);
        dimm.push(decile_series(&group.panel_label(), &samples));
    }
    (cpu, dimm)
}

/// Fig 14: for one temperature sensor, split `(node, month)` samples into
/// hot/cold halves by the sensor's median monthly temperature, then decile
/// each half by monthly mean node power.
pub fn power_hot_cold(
    records: &[CeRecord],
    telemetry: &TelemetryModel,
    system: &SystemConfig,
    span: TimeSpan,
    temp_sensor: SensorId,
    config: &TempCorrConfig,
) -> Vec<DecileSeries> {
    let temp_samples = monthly_samples(records, telemetry, system, span, temp_sensor, config);
    let power_samples = monthly_samples(
        records,
        telemetry,
        system,
        span,
        SensorId::dc_power(),
        config,
    );
    // Index power means by (node, month).
    let mut power: std::collections::HashMap<(u32, i64), f64> = std::collections::HashMap::new();
    for s in &power_samples {
        power.insert((s.node.0, s.month), s.mean_value);
    }

    let temps: Vec<f64> = temp_samples.iter().map(|s| s.mean_value).collect();
    let Some(med) = median(&temps) else {
        return Vec::new();
    };

    let label = |hot: bool| {
        let sensor_name = match temp_sensor.kind() {
            astra_topology::SensorKind::CpuTemp(s) => s.cpu_label().to_string(),
            astra_topology::SensorKind::DimmTemp(g) => g.panel_label(),
            astra_topology::SensorKind::DcPower => "power".to_string(),
        };
        format!("{sensor_name} ({})", if hot { "hot" } else { "cold" })
    };

    let mut series = Vec::new();
    for hot in [true, false] {
        let half: Vec<MonthlySample> = temp_samples
            .iter()
            .filter(|s| (s.mean_value > med) == hot)
            .filter_map(|s| {
                power.get(&(s.node.0, s.month)).map(|&p| MonthlySample {
                    node: s.node,
                    month: s.month,
                    mean_value: p,
                    ce_count: s.ce_count,
                })
            })
            .collect();
        series.push(decile_series(&label(hot), &half));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_logs::CeRecord;
    use astra_telemetry::ThermalProfile;
    use astra_topology::{DimmSlot, PhysAddr, RankId};
    use astra_util::time::MINUTES_PER_DAY;
    use astra_util::CalDate;

    fn system() -> SystemConfig {
        SystemConfig::scaled(1)
    }

    fn telemetry() -> TelemetryModel {
        TelemetryModel::new(system(), ThermalProfile::astra(), 42)
    }

    fn span() -> TimeSpan {
        TimeSpan::dates(CalDate::new(2019, 6, 1), CalDate::new(2019, 8, 1))
    }

    fn ce(node: u32, slot: char, day: u32, month: u32) -> CeRecord {
        let slot = DimmSlot::from_letter(slot).unwrap();
        CeRecord {
            time: CalDate::new(2019, month, day).midnight().plus(600),
            node: NodeId(node),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 0,
            row: None,
            col: 0,
            bit_pos: 0,
            addr: PhysAddr(0),
            syndrome: 0,
        }
    }

    fn quick_config() -> TempCorrConfig {
        TempCorrConfig {
            max_ce_samples: 500,
            window_stride: 30,
            monthly_stride: MINUTES_PER_DAY, // daily sampling in tests
            bin_width: 1.0,
        }
    }

    #[test]
    fn months_enumeration() {
        let s = TimeSpan::dates(CalDate::new(2019, 5, 20), CalDate::new(2019, 9, 19));
        assert_eq!(months_in(s), vec![4, 5, 6, 7, 8]);
    }

    #[test]
    fn month_start_boundaries() {
        assert_eq!(month_start(0), 0);
        assert_eq!(month_start(6), CalDate::new(2019, 7, 1).midnight().value());
        assert_eq!(month_start(12), CalDate::new(2020, 1, 1).midnight().value());
    }

    #[test]
    fn window_correlation_runs_and_is_flat() {
        // Errors placed independent of temperature: relative slope small.
        let records: Vec<CeRecord> = (0..300)
            .map(|i| {
                ce(
                    (i % 60) as u32,
                    ['A', 'E', 'J', 'O'][i % 4],
                    1 + (i % 25) as u32,
                    7,
                )
            })
            .collect();
        let wc = window_correlation(&records, &telemetry(), span(), 60, &quick_config());
        assert!(wc.sampled > 0);
        assert!(!wc.points.is_empty());
        if let Some(rel) = wc.relative_slope_per_degree() {
            assert!(rel.abs() < 0.6, "relative slope {rel} should be weak");
        }
    }

    #[test]
    fn window_correlation_empty_records() {
        let wc = window_correlation(&[], &telemetry(), span(), 60, &quick_config());
        assert_eq!(wc.sampled, 0);
        assert!(wc.points.is_empty());
        assert!(wc.fit.is_none());
    }

    #[test]
    fn monthly_samples_attribute_ces_to_right_sensor() {
        // Slot E is in group ACEG (sensor dimmg0); slot B is in BDFH
        // (dimmg1). CEs on E must count for dimmg0 only.
        let records = vec![ce(3, 'E', 10, 6), ce(3, 'E', 11, 6), ce(3, 'B', 12, 6)];
        let s0 = monthly_samples(
            &records,
            &telemetry(),
            &system(),
            span(),
            SensorId::for_slot(DimmSlot::from_letter('E').unwrap()),
            &quick_config(),
        );
        let s1 = monthly_samples(
            &records,
            &telemetry(),
            &system(),
            span(),
            SensorId::for_slot(DimmSlot::from_letter('B').unwrap()),
            &quick_config(),
        );
        let june = 5;
        let node3_june_g0 = s0
            .iter()
            .find(|s| s.node.0 == 3 && s.month == june)
            .unwrap();
        let node3_june_g1 = s1
            .iter()
            .find(|s| s.node.0 == 3 && s.month == june)
            .unwrap();
        assert_eq!(node3_june_g0.ce_count, 2);
        assert_eq!(node3_june_g1.ce_count, 1);
    }

    #[test]
    fn decile_series_shape() {
        let samples: Vec<MonthlySample> = (0..100)
            .map(|i| MonthlySample {
                node: NodeId(i),
                month: 5,
                mean_value: f64::from(i),
                ce_count: 3,
            })
            .collect();
        let series = decile_series("test", &samples);
        assert_eq!(series.points.len(), 10);
        // Constant CE count → flat series.
        assert!(series.points.iter().all(|(_, y)| (*y - 3.0).abs() < 1e-12));
        // X values ascend.
        assert!(series.points.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn temperature_deciles_produce_six_series() {
        let records = vec![ce(1, 'A', 5, 6), ce(2, 'K', 6, 7)];
        let (cpu, dimm) =
            temperature_deciles(&records, &telemetry(), &system(), span(), &quick_config());
        assert_eq!(cpu.len(), 2);
        assert_eq!(dimm.len(), 4);
        assert_eq!(cpu[0].label, "CPU1");
        assert_eq!(dimm[3].label, "CPU2 DIMMs 5-8");
        // CPU1 deciles should sit at higher temperatures than CPU2.
        let max_x = |s: &DecileSeries| s.points.last().map(|p| p.0).unwrap_or(0.0);
        assert!(max_x(&cpu[0]) > max_x(&cpu[1]));
    }

    #[test]
    fn power_hot_cold_splits_in_two() {
        let records = vec![ce(1, 'A', 5, 6)];
        let series = power_hot_cold(
            &records,
            &telemetry(),
            &system(),
            span(),
            SensorId::cpu(astra_topology::SocketId(0)),
            &quick_config(),
        );
        assert_eq!(series.len(), 2);
        assert!(series[0].label.contains("hot"));
        assert!(series[1].label.contains("cold"));
        assert!(!series[0].points.is_empty());
        assert!(!series[1].points.is_empty());
        // Hot samples should be shifted toward higher power (power and
        // temperature share the utilization driver).
        let mean_x =
            |s: &DecileSeries| s.points.iter().map(|p| p.0).sum::<f64>() / s.points.len() as f64;
        assert!(mean_x(&series[0]) > mean_x(&series[1]));
    }
}

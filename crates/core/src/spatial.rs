//! Spatial aggregation of errors and faults.
//!
//! Every positional analysis in the paper reduces to "count errors and
//! count faults along some axis of the machine": socket, bank, column
//! (Fig 6), rank, DIMM slot (Fig 7), bit position, physical address
//! (Fig 8), node (Fig 5), rack region (Fig 10/11), and rack (Fig 12).
//! [`SpatialCounts`] computes all of them in one pass over the records
//! plus one pass over the coalesced faults — the pairing is the point:
//! the paper's lesson is that the two tell different stories.

use astra_logs::CeRecord;
use astra_stats::FreqTable;
use astra_topology::{DimmSlot, RackRegion, SystemConfig};

use crate::coalesce::ObservedFault;

/// Error and fault counts along every axis the paper analyzes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpatialCounts {
    /// Errors per CPU socket (0, 1).
    pub errors_by_socket: [u64; 2],
    /// Faults per CPU socket.
    pub faults_by_socket: [u64; 2],
    /// Errors per bank.
    pub errors_by_bank: Vec<u64>,
    /// Faults per bank (rank-level faults span banks and are excluded,
    /// matching the per-bank semantics of Fig 6).
    pub faults_by_bank: Vec<u64>,
    /// Errors per column.
    pub errors_by_col: Vec<u64>,
    /// Faults per column (only faults confined to one column have one).
    pub faults_by_col: Vec<u64>,
    /// Errors per DIMM rank (0, 1).
    pub errors_by_rank: [u64; 2],
    /// Faults per DIMM rank.
    pub faults_by_rank: [u64; 2],
    /// Errors per DIMM slot A–P.
    pub errors_by_slot: [u64; 16],
    /// Faults per DIMM slot.
    pub faults_by_slot: [u64; 16],
    /// Errors per node id.
    pub errors_by_node: FreqTable,
    /// Faults per node id.
    pub faults_by_node: FreqTable,
    /// Errors per rack.
    pub errors_by_rack: Vec<u64>,
    /// Faults per rack.
    pub faults_by_rack: Vec<u64>,
    /// Errors per rack region (bottom, middle, top).
    pub errors_by_region: [u64; 3],
    /// Faults per rack region.
    pub faults_by_region: [u64; 3],
    /// Faults per rack **and** region: `[rack][region]`.
    pub faults_by_rack_region: Vec<[u64; 3]>,
    /// Faults per logged bit position (the paper's Fig 8a; values are
    /// opaque labels because of the vendor encoding).
    pub faults_by_bit: FreqTable,
    /// Faults per physical address (Fig 8b; single-address faults only).
    pub faults_by_addr: FreqTable,
}

/// Below this many records the parallel aggregation's per-worker partial
/// allocation outweighs the win; compute runs sequentially.
const PARALLEL_SPATIAL_MIN_RECORDS: usize = 50_000;

impl SpatialCounts {
    /// A zeroed table shaped for `system` — the fold identity. Shared
    /// with the incremental engine's spatial analyzer.
    pub(crate) fn empty(system: &SystemConfig) -> Self {
        let banks = system.geometry.banks as usize;
        let cols = system.geometry.cols as usize;
        let racks = system.racks as usize;
        SpatialCounts {
            errors_by_socket: [0; 2],
            faults_by_socket: [0; 2],
            errors_by_bank: vec![0; banks],
            faults_by_bank: vec![0; banks],
            errors_by_col: vec![0; cols],
            faults_by_col: vec![0; cols],
            errors_by_rank: [0; 2],
            faults_by_rank: [0; 2],
            errors_by_slot: [0; 16],
            faults_by_slot: [0; 16],
            errors_by_node: FreqTable::new(),
            faults_by_node: FreqTable::new(),
            errors_by_rack: vec![0; racks],
            faults_by_rack: vec![0; racks],
            errors_by_region: [0; 3],
            faults_by_region: [0; 3],
            faults_by_rack_region: vec![[0; 3]; racks],
            faults_by_bit: FreqTable::new(),
            faults_by_addr: FreqTable::new(),
        }
    }

    /// Fold one CE record into the error-side counts.
    pub(crate) fn absorb_record(&mut self, system: &SystemConfig, rec: &CeRecord) {
        self.errors_by_socket[usize::from(rec.socket.0)] += 1;
        self.errors_by_bank[usize::from(rec.bank)] += 1;
        self.errors_by_col[usize::from(rec.col)] += 1;
        self.errors_by_rank[usize::from(rec.rank.0)] += 1;
        self.errors_by_slot[rec.slot.index()] += 1;
        self.errors_by_node.bump(u64::from(rec.node.0));
        let rack = system.rack_of(rec.node).0 as usize;
        self.errors_by_rack[rack] += 1;
        self.errors_by_region[system.region_of(rec.node).index()] += 1;
    }

    /// Fold one coalesced fault into the fault-side counts.
    pub(crate) fn absorb_fault(&mut self, system: &SystemConfig, f: &ObservedFault) {
        self.faults_by_socket[usize::from(f.slot.socket().0)] += 1;
        if let Some(bank) = f.bank {
            self.faults_by_bank[usize::from(bank)] += 1;
        }
        if let Some(col) = f.col {
            self.faults_by_col[usize::from(col)] += 1;
        }
        self.faults_by_rank[usize::from(f.rank.0)] += 1;
        self.faults_by_slot[f.slot.index()] += 1;
        self.faults_by_node.bump(u64::from(f.node.0));
        let rack = system.rack_of(f.node).0 as usize;
        self.faults_by_rack[rack] += 1;
        let region = system.region_of(f.node).index();
        self.faults_by_region[region] += 1;
        self.faults_by_rack_region[rack][region] += 1;
        self.faults_by_bit.bump(u64::from(f.bit_pos));
        if let Some(addr) = f.addr {
            self.faults_by_addr.bump(addr);
        }
    }

    /// Combine two partial tables. Every field is a sum of per-item
    /// contributions, so merging is exact elementwise addition —
    /// associative and commutative, which is what makes the parallel fold
    /// bit-identical to the sequential pass.
    pub(crate) fn merge(mut self, other: SpatialCounts) -> SpatialCounts {
        fn add(a: &mut [u64], b: &[u64]) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        add(&mut self.errors_by_socket, &other.errors_by_socket);
        add(&mut self.faults_by_socket, &other.faults_by_socket);
        add(&mut self.errors_by_bank, &other.errors_by_bank);
        add(&mut self.faults_by_bank, &other.faults_by_bank);
        add(&mut self.errors_by_col, &other.errors_by_col);
        add(&mut self.faults_by_col, &other.faults_by_col);
        add(&mut self.errors_by_rank, &other.errors_by_rank);
        add(&mut self.faults_by_rank, &other.faults_by_rank);
        add(&mut self.errors_by_slot, &other.errors_by_slot);
        add(&mut self.faults_by_slot, &other.faults_by_slot);
        add(&mut self.errors_by_rack, &other.errors_by_rack);
        add(&mut self.faults_by_rack, &other.faults_by_rack);
        add(&mut self.errors_by_region, &other.errors_by_region);
        add(&mut self.faults_by_region, &other.faults_by_region);
        for (row, other_row) in self
            .faults_by_rack_region
            .iter_mut()
            .zip(&other.faults_by_rack_region)
        {
            add(row, other_row);
        }
        self.errors_by_node.merge(&other.errors_by_node);
        self.faults_by_node.merge(&other.faults_by_node);
        self.faults_by_bit.merge(&other.faults_by_bit);
        self.faults_by_addr.merge(&other.faults_by_addr);
        self
    }

    /// Compute all aggregations for a machine.
    ///
    /// Large record streams are folded in parallel shards whose partial
    /// tables merge by exact addition ([`SpatialCounts::merge`]), so the
    /// result is identical at any worker count.
    pub fn compute(system: &SystemConfig, records: &[CeRecord], faults: &[ObservedFault]) -> Self {
        let _span = astra_obs::span("spatial.compute");
        if records.len() < PARALLEL_SPATIAL_MIN_RECORDS {
            let mut s = SpatialCounts::empty(system);
            for rec in records {
                s.absorb_record(system, rec);
            }
            for f in faults {
                s.absorb_fault(system, f);
            }
            return s;
        }
        let errors = astra_util::par::par_fold(
            records,
            || SpatialCounts::empty(system),
            |acc, rec| acc.absorb_record(system, rec),
            SpatialCounts::merge,
        );
        let with_faults = astra_util::par::par_fold(
            faults,
            || SpatialCounts::empty(system),
            |acc, f| acc.absorb_fault(system, f),
            SpatialCounts::merge,
        );
        errors.merge(with_faults)
    }

    /// Faults-per-node counts including zero-fault nodes — the Fig 5
    /// population.
    pub fn fault_counts_all_nodes(&self, system: &SystemConfig) -> Vec<u64> {
        (0..u64::from(system.node_count()))
            .map(|n| self.faults_by_node.get(n))
            .collect()
    }

    /// Errors-per-node counts including zero-error nodes.
    pub fn error_counts_all_nodes(&self, system: &SystemConfig) -> Vec<u64> {
        (0..u64::from(system.node_count()))
            .map(|n| self.errors_by_node.get(n))
            .collect()
    }

    /// Fraction of faults in each region of one rack (Fig 11); `None` for
    /// a rack with no faults.
    pub fn region_fractions(&self, rack: usize) -> Option<[f64; 3]> {
        let row = self.faults_by_rack_region.get(rack)?;
        let total: u64 = row.iter().sum();
        if total == 0 {
            return None;
        }
        Some([
            row[0] as f64 / total as f64,
            row[1] as f64 / total as f64,
            row[2] as f64 / total as f64,
        ])
    }

    /// Region label order used by the arrays here.
    pub fn region_labels() -> [&'static str; 3] {
        [
            RackRegion::Bottom.name(),
            RackRegion::Middle.name(),
            RackRegion::Top.name(),
        ]
    }

    /// Slot letters in array order.
    pub fn slot_labels() -> Vec<char> {
        DimmSlot::all().map(|s| s.letter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::{coalesce, CoalesceConfig};
    use astra_topology::{NodeId, PhysAddr, RankId};
    use astra_util::CalDate;

    fn rec(node: u32, slot: char, rank: u8, bank: u16, col: u16, addr: u64) -> CeRecord {
        let slot = DimmSlot::from_letter(slot).unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 1).midnight(),
            node: NodeId(node),
            socket: slot.socket(),
            slot,
            rank: RankId(rank),
            bank,
            row: None,
            col,
            bit_pos: 5,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    fn compute(records: &[CeRecord]) -> SpatialCounts {
        let system = SystemConfig::scaled(2);
        let faults = coalesce(records, &CoalesceConfig::default());
        SpatialCounts::compute(&system, records, &faults)
    }

    #[test]
    fn errors_and_faults_diverge() {
        // 100 errors from one fault on node 0; 1 error each on 3 nodes.
        let mut records: Vec<CeRecord> = (0..100).map(|_| rec(0, 'E', 0, 1, 2, 0x100)).collect();
        records.push(rec(10, 'A', 1, 0, 0, 0x200));
        records.push(rec(20, 'B', 1, 3, 1, 0x300));
        records.push(rec(30, 'C', 0, 5, 9, 0x400));
        let s = compute(&records);
        assert_eq!(s.errors_by_node.get(0), 100);
        assert_eq!(s.faults_by_node.get(0), 1);
        assert_eq!(s.faults_by_node.total(), 4);
        assert_eq!(s.errors_by_node.total(), 103);
    }

    #[test]
    fn socket_split_follows_slots() {
        let records = vec![rec(0, 'A', 0, 0, 0, 0x1), rec(0, 'I', 0, 0, 0, 0x2)];
        let s = compute(&records);
        assert_eq!(s.errors_by_socket, [1, 1]);
        assert_eq!(s.faults_by_socket, [1, 1]);
    }

    #[test]
    fn rank_and_slot_axes() {
        let records = vec![
            rec(0, 'J', 0, 0, 0, 0x1),
            rec(0, 'J', 0, 0, 0, 0x1),
            rec(0, 'K', 1, 0, 0, 0x2),
        ];
        let s = compute(&records);
        assert_eq!(s.errors_by_rank, [2, 1]);
        assert_eq!(s.faults_by_rank, [1, 1]);
        let j = DimmSlot::from_letter('J').unwrap().index();
        let k = DimmSlot::from_letter('K').unwrap().index();
        assert_eq!(s.errors_by_slot[j], 2);
        assert_eq!(s.errors_by_slot[k], 1);
        assert_eq!(s.faults_by_slot[j], 1);
    }

    #[test]
    fn rack_and_region() {
        // Node 0 is rack 0 bottom; node 71 is rack 0 top; node 100 is
        // rack 1 chassis 7 (middle).
        let records = vec![
            rec(0, 'A', 0, 0, 0, 0x1),
            rec(71, 'B', 0, 1, 0, 0x2),
            rec(100, 'C', 0, 2, 0, 0x3),
        ];
        let s = compute(&records);
        assert_eq!(s.errors_by_rack, vec![2, 1]);
        assert_eq!(s.faults_by_rack, vec![2, 1]);
        assert_eq!(s.errors_by_region, [1, 1, 1]);
        let fr = s.region_fractions(0).unwrap();
        assert!((fr[0] - 0.5).abs() < 1e-12);
        assert!((fr[2] - 0.5).abs() < 1e-12);
        assert_eq!(s.region_fractions(1).unwrap(), [0.0, 1.0, 0.0]);
    }

    #[test]
    fn region_fraction_empty_rack_is_none() {
        let s = compute(&[rec(0, 'A', 0, 0, 0, 0x1)]);
        assert_eq!(s.region_fractions(1), None);
        assert_eq!(s.region_fractions(99), None);
    }

    #[test]
    fn all_node_vectors_cover_machine() {
        let s = compute(&[rec(5, 'A', 0, 0, 0, 0x1)]);
        let system = SystemConfig::scaled(2);
        let faults = s.fault_counts_all_nodes(&system);
        let errors = s.error_counts_all_nodes(&system);
        assert_eq!(faults.len(), 144);
        assert_eq!(errors.len(), 144);
        assert_eq!(faults.iter().sum::<u64>(), 1);
        assert_eq!(errors[5], 1);
        assert_eq!(errors[6], 0);
    }

    #[test]
    fn bank_and_column_faults_exclude_wide_modes() {
        // A single-bank fault (bank-dispersed: >= 8 columns, addresses
        // spread) has a bank but no column.
        let records: Vec<CeRecord> = (0..10)
            .map(|i| rec(0, 'D', 0, 7, i as u16, 0x100 + i))
            .collect();
        let s = compute(&records);
        assert_eq!(s.faults_by_bank[7], 1);
        assert_eq!(s.faults_by_col.iter().sum::<u64>(), 0);
        assert_eq!(s.errors_by_col.iter().sum::<u64>(), 10);
    }
}

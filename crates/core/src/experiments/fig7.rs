//! Fig 7: errors and faults per DIMM rank and per DIMM slot.
//!
//! §3.2: rank 0 experiences more faults (and errors) than rank 1; slots
//! J, E, I, P see the most faults and A, K, L, M, N the fewest — the
//! positional skew the paper tentatively attributes to temperature
//! differences across the DIMM.

use astra_topology::DimmSlot;

use super::render::{table, thousands};
use crate::pipeline::Analysis;

/// The four panels of Fig 7.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Errors per rank (0, 1).
    pub errors_by_rank: [u64; 2],
    /// Faults per rank.
    pub faults_by_rank: [u64; 2],
    /// Errors per slot A–P.
    pub errors_by_slot: [u64; 16],
    /// Faults per slot A–P.
    pub faults_by_slot: [u64; 16],
}

/// Compute Fig 7 from an analysis.
pub fn compute(analysis: &Analysis) -> Fig7 {
    let _span = super::figure_span("fig7");
    let s = &analysis.spatial;
    Fig7 {
        errors_by_rank: s.errors_by_rank,
        faults_by_rank: s.faults_by_rank,
        errors_by_slot: s.errors_by_slot,
        faults_by_slot: s.faults_by_slot,
    }
}

impl Fig7 {
    /// The paper's rank finding: rank 0 out-faults rank 1.
    pub fn rank0_dominates(&self) -> bool {
        self.faults_by_rank[0] > self.faults_by_rank[1]
    }

    /// Mean faults over a set of slot letters.
    pub fn mean_faults(&self, letters: &[char]) -> f64 {
        let total: u64 = letters
            .iter()
            .map(|&c| self.faults_by_slot[DimmSlot::from_letter(c).unwrap().index()])
            .sum();
        total as f64 / letters.len() as f64
    }

    /// The paper's slot finding: J, E, I, P out-fault A, K, L, M, N.
    pub fn hot_slots_dominate(&self) -> bool {
        self.mean_faults(&['J', 'E', 'I', 'P']) > self.mean_faults(&['A', 'K', 'L', 'M', 'N'])
    }

    /// Render the rank and slot tables.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig 7: rank and slot distributions\n\
             rank 0: errors {} faults {}\n\
             rank 1: errors {} faults {}\n",
            thousands(self.errors_by_rank[0]),
            thousands(self.faults_by_rank[0]),
            thousands(self.errors_by_rank[1]),
            thousands(self.faults_by_rank[1]),
        );
        let mut rows = vec![vec![
            "Slot".to_string(),
            "Errors".to_string(),
            "Faults".to_string(),
        ]];
        for slot in DimmSlot::all() {
            rows.push(vec![
                slot.letter().to_string(),
                thousands(self.errors_by_slot[slot.index()]),
                thousands(self.faults_by_slot[slot.index()]),
            ]);
        }
        out.push_str(&table(&rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;

    fn fig() -> Fig7 {
        let ds = Dataset::generate(4, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        compute(&analysis)
    }

    #[test]
    fn rank_zero_sees_more_faults() {
        let f = fig();
        assert!(f.rank0_dominates(), "rank counts {:?}", f.faults_by_rank);
    }

    #[test]
    fn slot_skew_matches_paper() {
        let f = fig();
        assert!(
            f.hot_slots_dominate(),
            "hot {} vs cold {}",
            f.mean_faults(&['J', 'E', 'I', 'P']),
            f.mean_faults(&['A', 'K', 'L', 'M', 'N'])
        );
    }

    #[test]
    fn every_slot_column_sums_to_totals() {
        let f = fig();
        let slot_errors: u64 = f.errors_by_slot.iter().sum();
        let rank_errors: u64 = f.errors_by_rank.iter().sum();
        assert_eq!(slot_errors, rank_errors);
        let slot_faults: u64 = f.faults_by_slot.iter().sum();
        let rank_faults: u64 = f.faults_by_rank.iter().sum();
        assert_eq!(slot_faults, rank_faults);
    }

    #[test]
    fn render_lists_all_slots() {
        let s = fig().render();
        for c in 'A'..='P' {
            assert!(s.contains(&format!("\n{c}")), "missing slot {c}");
        }
    }
}

//! Figs 13–14: the Schroeder-et-al.-style temperature and utilization
//! analyses.
//!
//! Fig 13 plots monthly-average sensor temperature deciles against the
//! monthly CE rate in each decile, per sensor. The paper's findings:
//! CPU1 runs hotter than CPU2; the first-to-ninth-decile spreads are
//! ≈ 7 °C (CPU) and ≈ 4 °C (DIMM); and there is *no* monotone trend of CE
//! rate with temperature.
//!
//! Fig 14 repeats the exercise with node DC power (the utilization proxy)
//! on the x-axis, splitting samples into hot/cold halves by the sensor's
//! median temperature — and again finds no strong relationship.

use astra_stats::spearman;
use astra_telemetry::TelemetryModel;
use astra_topology::{DimmGroup, SensorId, SocketId};
use astra_util::time::TimeSpan;

use crate::pipeline::Analysis;
use crate::tempcorr::{power_hot_cold, temperature_deciles, DecileSeries, TempCorrConfig};

/// The data behind Fig 13.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// CPU1 and CPU2 series.
    pub cpu: Vec<DecileSeries>,
    /// Four DIMM-group series.
    pub dimm: Vec<DecileSeries>,
}

/// The data behind Fig 14: six panels (two CPU sensors, four DIMM
/// groups), each a hot and a cold series.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// `(panel label, [hot, cold])` series.
    pub panels: Vec<(String, Vec<DecileSeries>)>,
}

/// Compute Fig 13.
pub fn compute_fig13(
    analysis: &Analysis,
    telemetry: &TelemetryModel,
    span: TimeSpan,
    config: &TempCorrConfig,
) -> Fig13 {
    let _span = super::figure_span("fig13");
    let (cpu, dimm) =
        temperature_deciles(&analysis.records, telemetry, &analysis.system, span, config);
    Fig13 { cpu, dimm }
}

/// Compute Fig 14.
pub fn compute_fig14(
    analysis: &Analysis,
    telemetry: &TelemetryModel,
    span: TimeSpan,
    config: &TempCorrConfig,
) -> Fig14 {
    let _span = super::figure_span("fig14");
    let mut panels = Vec::new();
    for socket in SocketId::ALL {
        let sensor = SensorId::cpu(socket);
        let series = power_hot_cold(
            &analysis.records,
            telemetry,
            &analysis.system,
            span,
            sensor,
            config,
        );
        panels.push((socket.cpu_label().to_string(), series));
    }
    for group in DimmGroup::ALL {
        let sensor = SensorId::dimm_group(group);
        let series = power_hot_cold(
            &analysis.records,
            telemetry,
            &analysis.system,
            span,
            sensor,
            config,
        );
        panels.push((group.panel_label(), series));
    }
    Fig14 { panels }
}

/// Decile x-spread: difference between the ninth and first decile maxima.
pub fn decile_spread(series: &DecileSeries) -> Option<f64> {
    if series.points.len() < 9 {
        return None;
    }
    Some(series.points[8].0 - series.points[0].0)
}

/// Spearman rank correlation between decile temperature and CE rate —
/// the "is there a monotone trend" statistic.
pub fn trend(series: &DecileSeries) -> Option<f64> {
    let xs: Vec<f64> = series.points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = series.points.iter().map(|p| p.1).collect();
    spearman(&xs, &ys)
}

impl Fig13 {
    /// The paper's negative result: no sensor shows a strong monotone
    /// temperature→CE trend (|Spearman ρ| < `threshold` across sensors,
    /// allowing individual noisy series).
    pub fn no_monotone_trend(&self, threshold: f64) -> bool {
        let rhos: Vec<f64> = self
            .cpu
            .iter()
            .chain(&self.dimm)
            .filter_map(trend)
            .collect();
        if rhos.is_empty() {
            return true;
        }
        let mean_abs = rhos.iter().map(|r| r.abs()).sum::<f64>() / rhos.len() as f64;
        mean_abs < threshold
    }

    /// Render the decile tables.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 13: temperature deciles vs monthly CE rate\n");
        for series in self.cpu.iter().chain(&self.dimm) {
            out.push_str(&format!("  {}:", series.label));
            for (x, y) in &series.points {
                out.push_str(&format!(" ({x:.1}C,{y:.2})"));
            }
            if let Some(spread) = decile_spread(series) {
                out.push_str(&format!("  [d9-d1 spread {spread:.1}C]"));
            }
            if let Some(rho) = trend(series) {
                out.push_str(&format!("  [rho {rho:+.2}]"));
            }
            out.push('\n');
        }
        out
    }
}

impl Fig14 {
    /// The paper's negative result for utilization: across the panels,
    /// power deciles show no strong monotone CE trend.
    pub fn no_strong_power_trend(&self, threshold: f64) -> bool {
        let rhos: Vec<f64> = self
            .panels
            .iter()
            .flat_map(|(_, series)| series.iter().filter_map(trend))
            .collect();
        if rhos.is_empty() {
            return true;
        }
        let mean_abs = rhos.iter().map(|r| r.abs()).sum::<f64>() / rhos.len() as f64;
        mean_abs < threshold
    }

    /// The positive control the paper *does* see: hot samples sit at
    /// higher power than cold samples (power and temperature share the
    /// utilization driver).
    pub fn hot_series_shifted_right(&self) -> bool {
        let mut right = 0;
        let mut total = 0;
        for (_, series) in &self.panels {
            if series.len() == 2 && !series[0].points.is_empty() && !series[1].points.is_empty() {
                let mean_x = |s: &DecileSeries| {
                    s.points.iter().map(|p| p.0).sum::<f64>() / s.points.len() as f64
                };
                total += 1;
                if mean_x(&series[0]) > mean_x(&series[1]) {
                    right += 1;
                }
            }
        }
        total > 0 && right * 2 > total
    }

    /// Render all panels.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig 14: node power deciles vs monthly CE rate (hot/cold split)\n");
        for (label, series) in &self.panels {
            out.push_str(&format!("  panel {label}\n"));
            for s in series {
                out.push_str(&format!("    {}:", s.label));
                for (x, y) in &s.points {
                    out.push_str(&format!(" ({x:.0}W,{y:.2})"));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;
    use astra_util::time::{sensor_span, MINUTES_PER_DAY};

    fn setup() -> (Analysis, TelemetryModel) {
        let ds = Dataset::generate(1, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        (analysis, ds.telemetry)
    }

    fn quick() -> TempCorrConfig {
        TempCorrConfig {
            max_ce_samples: 200,
            window_stride: 60,
            monthly_stride: 2 * MINUTES_PER_DAY,
            bin_width: 1.0,
        }
    }

    #[test]
    fn fig13_series_shapes() {
        let (analysis, telemetry) = setup();
        let f = compute_fig13(&analysis, &telemetry, sensor_span(), &quick());
        assert_eq!(f.cpu.len(), 2);
        assert_eq!(f.dimm.len(), 4);
        for s in f.cpu.iter().chain(&f.dimm) {
            assert_eq!(s.points.len(), 10, "{} deciles", s.label);
        }
    }

    #[test]
    fn fig13_decile_spreads_match_paper() {
        let (analysis, telemetry) = setup();
        let f = compute_fig13(&analysis, &telemetry, sensor_span(), &quick());
        // Paper: ~7C for CPUs, ~4C for DIMMs (we allow generous bands).
        for s in &f.cpu {
            let spread = decile_spread(s).unwrap();
            assert!((3.0..12.0).contains(&spread), "{} spread {spread}", s.label);
        }
        for s in &f.dimm {
            let spread = decile_spread(s).unwrap();
            assert!((1.5..8.0).contains(&spread), "{} spread {spread}", s.label);
        }
    }

    #[test]
    fn fig13_cpu1_hotter_and_no_trend() {
        let (analysis, telemetry) = setup();
        let f = compute_fig13(&analysis, &telemetry, sensor_span(), &quick());
        let max_x = |s: &DecileSeries| s.points.last().unwrap().0;
        assert!(max_x(&f.cpu[0]) > max_x(&f.cpu[1]), "CPU1 hotter");
        assert!(f.no_monotone_trend(0.55), "unexpected temperature trend");
    }

    #[test]
    fn fig14_panels_and_controls() {
        let (analysis, telemetry) = setup();
        let f = compute_fig14(&analysis, &telemetry, sensor_span(), &quick());
        assert_eq!(f.panels.len(), 6);
        assert!(
            f.hot_series_shifted_right(),
            "hot half should use more power"
        );
        assert!(f.no_strong_power_trend(0.6), "unexpected power trend");
    }

    #[test]
    fn renders() {
        let (analysis, telemetry) = setup();
        let f13 = compute_fig13(&analysis, &telemetry, sensor_span(), &quick());
        let f14 = compute_fig14(&analysis, &telemetry, sensor_span(), &quick());
        assert!(f13.render().contains("CPU1"));
        assert!(f14.render().contains("hot"));
    }
}

//! One driver per paper table/figure.
//!
//! Each submodule computes the data behind one exhibit of the paper's
//! evaluation and renders it as the rows/series the paper reports. The
//! `astra-bench` figure binaries are thin wrappers over these drivers;
//! `EXPERIMENTS.md` records paper-vs-measured values for every one.
//!
//! | Module       | Paper exhibit                                             |
//! |--------------|-----------------------------------------------------------|
//! | [`table1`]   | Table 1 — component replacements                          |
//! | [`fig2`]     | Fig 2 — sensor value distributions                        |
//! | [`fig3`]     | Fig 3 — daily replacement series                          |
//! | [`fig4`]     | Fig 4 — error/fault-mode series and errors-per-fault      |
//! | [`fig5`]     | Fig 5 — per-node fault counts and CE concentration        |
//! | [`fig6`]     | Fig 6 — socket/bank/column errors vs faults               |
//! | [`fig7`]     | Fig 7 — rank and DIMM-slot errors vs faults               |
//! | [`fig8`]     | Fig 8 — faults per bit position / physical address        |
//! | [`fig9`]     | Fig 9 — pre-error temperature windows                     |
//! | [`fig10_12`] | Figs 10–12 — rack-region and rack positional effects      |
//! | [`fig13_14`] | Figs 13–14 — temperature deciles and hot/cold power split |
//! | [`fig15`]    | Fig 15 — HET events and the FIT computation               |

/// Instrument one figure driver: bump `experiments.<figure>.computed` and
/// time the body under `time.experiments.<figure>`. Every `compute` entry
/// point opens with this, so a `--metrics-out` export shows exactly which
/// exhibits a run produced and what each cost.
pub(crate) fn figure_span(figure: &str) -> astra_obs::SpanGuard<'static> {
    astra_obs::global()
        .counter(&format!("experiments.{figure}.computed"))
        .inc();
    astra_obs::span(&format!("experiments.{figure}"))
}

pub mod fig10_12;
pub mod fig13_14;
pub mod fig15;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod render;
pub mod table1;
pub mod verdicts;

//! Fig 15: Hardware Event Tracker analysis and the FIT computation.
//!
//! §3.5: HET recording began after the August 2019 firmware update; over
//! the recorded window the DUE rate is 0.00948 per DIMM per year, i.e.
//! FIT ≈ 1081 per DIMM.

use astra_logs::HetRecord;
use astra_util::time::TimeSpan;

use super::render::spark;
use crate::het::{all_events, due_stats, non_recoverable, DueStats, HetSeries};

/// The data behind Fig 15.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// All events by kind (Fig 15a).
    pub all: HetSeries,
    /// NON-RECOVERABLE subset (Fig 15b).
    pub non_recoverable: HetSeries,
    /// DUE statistics over the recording window.
    pub dues: DueStats,
}

/// Compute Fig 15 over the HET recording window.
pub fn compute(records: &[HetRecord], window: TimeSpan, dimms: u64) -> Fig15 {
    let _span = super::figure_span("fig15");
    Fig15 {
        all: all_events(records, window),
        non_recoverable: non_recoverable(records, window),
        dues: due_stats(records, window, dimms),
    }
}

impl Fig15 {
    /// Render both panels plus the FIT line.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 15a: HET events by kind (daily)\n");
        for (kind, series) in &self.all.by_kind {
            let v: Vec<f64> = series.iter().map(|&c| c as f64).collect();
            out.push_str(&format!(
                "  {:<38} total {:>3} {}\n",
                kind.name(),
                series.iter().sum::<u64>(),
                spark(&v)
            ));
        }
        out.push_str("Fig 15b: NON-RECOVERABLE events\n");
        for (kind, series) in &self.non_recoverable.by_kind {
            let v: Vec<f64> = series.iter().map(|&c| c as f64).collect();
            out.push_str(&format!(
                "  {:<38} total {:>3} {}\n",
                kind.name(),
                series.iter().sum::<u64>(),
                spark(&v)
            ));
        }
        out.push_str(&format!(
            "DUEs {} over {:.1} DIMM-years -> {:.5} DUE/DIMM/yr, FIT/DIMM ~ {:.0}\n",
            self.dues.dues,
            self.dues.dimms as f64 * self.dues.years,
            self.dues.dues_per_dimm_year,
            self.dues.fit_per_dimm
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;
    use astra_util::time::het_firmware_date;
    use astra_util::{time::study_span, CalDate};

    fn window() -> TimeSpan {
        TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14))
    }

    fn fig(racks: u32) -> Fig15 {
        let ds = Dataset::generate(racks, 42);
        compute(&ds.sim.het_log, window(), ds.system.dimm_count())
    }

    #[test]
    fn non_recoverable_is_subset_of_all() {
        let f = fig(8);
        assert!(f.non_recoverable.total() <= f.all.total());
        assert!(f.all.total() > 0);
    }

    #[test]
    fn due_rate_near_paper_at_full_scale() {
        // Full machine so the Poisson mean (~24) is meaningful.
        let f = fig(36);
        assert!(f.dues.dues > 5, "dues {}", f.dues.dues);
        // Rate within a factor of ~2 of 0.00948 (Poisson noise on ~24).
        assert!(
            (0.004..0.02).contains(&f.dues.dues_per_dimm_year),
            "rate {}",
            f.dues.dues_per_dimm_year
        );
        // FIT in the paper's ballpark of 1081.
        assert!(
            (500.0..2300.0).contains(&f.dues.fit_per_dimm),
            "FIT {}",
            f.dues.fit_per_dimm
        );
    }

    #[test]
    fn no_events_outside_recording_window() {
        let ds = Dataset::generate(4, 42);
        let pre = TimeSpan::dates(study_span().start.date(), het_firmware_date());
        let before = all_events(&ds.sim.het_log, pre);
        assert_eq!(before.total(), 0, "HET must be silent before firmware");
    }

    #[test]
    fn render_includes_fit() {
        let s = fig(8).render();
        assert!(s.contains("FIT/DIMM"));
        assert!(s.contains("Fig 15b"));
    }
}

//! Table 1: component replacements over the stabilization period.

use astra_logs::ReplacementRecord;
use astra_topology::SystemConfig;

use super::render::{table, thousands};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Component category label.
    pub component: &'static str,
    /// Number replaced.
    pub replaced: u64,
    /// Installed population.
    pub population: u64,
}

impl Table1Row {
    /// Percent of the installed population replaced.
    pub fn percent(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            100.0 * self.replaced as f64 / self.population as f64
        }
    }
}

/// The computed table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Processor / motherboard / DIMM rows.
    pub rows: [Table1Row; 3],
}

/// Tally replacements per category.
pub fn compute(system: &SystemConfig, records: &[ReplacementRecord]) -> Table1 {
    let _span = super::figure_span("table1");
    let mut counts = [0u64; 3];
    for rec in records {
        counts[rec.component.category_index()] += 1;
    }
    Table1 {
        rows: [
            Table1Row {
                component: "Processors",
                replaced: counts[0],
                population: u64::from(system.socket_count()),
            },
            Table1Row {
                component: "Motherboards",
                replaced: counts[1],
                population: u64::from(system.node_count()),
            },
            Table1Row {
                component: "DIMMs",
                replaced: counts[2],
                population: system.dimm_count(),
            },
        ],
    }
}

impl Table1 {
    /// Render in the paper's format.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "Component".to_string(),
            "Number Replaced".to_string(),
            "Percent of Total".to_string(),
        ]];
        for row in &self.rows {
            rows.push(vec![
                row.component.to_string(),
                thousands(row.replaced),
                format!("{:.1}% of {}", row.percent(), thousands(row.population)),
            ]);
        }
        format!(
            "Table 1: Astra component replacements (Feb 17 - Sep 17, 2019)\n{}",
            table(&rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_logs::Component;
    use astra_topology::{DimmSlot, NodeId, SocketId};
    use astra_util::CalDate;

    #[test]
    fn tallies_by_category() {
        let system = SystemConfig::astra();
        let date = CalDate::new(2019, 3, 1);
        let records = vec![
            ReplacementRecord {
                date,
                node: NodeId(1),
                component: Component::Processor(SocketId(0)),
            },
            ReplacementRecord {
                date,
                node: NodeId(2),
                component: Component::Processor(SocketId(1)),
            },
            ReplacementRecord {
                date,
                node: NodeId(3),
                component: Component::Dimm(DimmSlot::from_letter('A').unwrap()),
            },
        ];
        let t = compute(&system, &records);
        assert_eq!(t.rows[0].replaced, 2);
        assert_eq!(t.rows[1].replaced, 0);
        assert_eq!(t.rows[2].replaced, 1);
        assert_eq!(t.rows[0].population, 5184);
        assert_eq!(t.rows[2].population, 41_472);
    }

    #[test]
    fn percent_computation() {
        let row = Table1Row {
            component: "Processors",
            replaced: 836,
            population: 5184,
        };
        assert!((row.percent() - 16.1).abs() < 0.05);
    }

    #[test]
    fn render_contains_paper_columns() {
        let system = SystemConfig::astra();
        let t = compute(&system, &[]);
        let s = t.render();
        assert!(s.contains("Number Replaced"));
        assert!(s.contains("Percent of Total"));
        assert!(s.contains("DIMMs"));
    }
}

//! Fig 6: errors vs faults per CPU socket, bank, and column — the
//! "errors mislead, faults are uniform" exhibit.
//!
//! §3.2: "memory faults in these structures are fairly uniformly
//! distributed and ... variation can be explained by statistical noise",
//! while raw error counts are wildly skewed by a few sticky faults. The
//! χ² tests here quantify both halves of the claim.

use astra_stats::{chi_square_uniform, ChiSquareResult};

use super::render::{table, thousands};
use crate::pipeline::Analysis;

/// The six panels of Fig 6 plus uniformity tests.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Errors per socket.
    pub errors_by_socket: [u64; 2],
    /// Faults per socket.
    pub faults_by_socket: [u64; 2],
    /// Errors per bank.
    pub errors_by_bank: Vec<u64>,
    /// Faults per bank.
    pub faults_by_bank: Vec<u64>,
    /// Errors per column.
    pub errors_by_col: Vec<u64>,
    /// Faults per column (column-confined faults only).
    pub faults_by_col: Vec<u64>,
    /// χ² of faults per socket against uniform.
    pub socket_fault_chi2: Option<ChiSquareResult>,
    /// χ² of faults per bank against uniform.
    pub bank_fault_chi2: Option<ChiSquareResult>,
    /// χ² of *errors* per bank against uniform (expected to fail — the
    /// contrast the paper draws).
    pub bank_error_chi2: Option<ChiSquareResult>,
}

/// Compute Fig 6 from an analysis.
pub fn compute(analysis: &Analysis) -> Fig6 {
    let _span = super::figure_span("fig6");
    let s = &analysis.spatial;
    Fig6 {
        errors_by_socket: s.errors_by_socket,
        faults_by_socket: s.faults_by_socket,
        errors_by_bank: s.errors_by_bank.clone(),
        faults_by_bank: s.faults_by_bank.clone(),
        errors_by_col: s.errors_by_col.clone(),
        faults_by_col: s.faults_by_col.clone(),
        socket_fault_chi2: chi_square_uniform(&s.faults_by_socket),
        bank_fault_chi2: chi_square_uniform(&s.faults_by_bank),
        bank_error_chi2: chi_square_uniform(&s.errors_by_bank),
    }
}

impl Fig6 {
    /// Coefficient of variation of a count vector (skew summary).
    pub fn cv(counts: &[u64]) -> f64 {
        let n = counts.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = counts.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// The paper's claim in one predicate: fault distributions are much
    /// closer to uniform than error distributions on the same axis.
    pub fn faults_flatter_than_errors(&self) -> bool {
        Self::cv(&self.faults_by_bank) < Self::cv(&self.errors_by_bank)
            && Self::cv(&self.faults_by_socket) < Self::cv(&self.errors_by_socket).max(1e-9)
            || Self::cv(&self.faults_by_bank) < Self::cv(&self.errors_by_bank)
    }

    /// Render the panel summaries.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "Axis".to_string(),
            "Errors total".to_string(),
            "Errors CV".to_string(),
            "Faults total".to_string(),
            "Faults CV".to_string(),
        ]];
        let mut push = |axis: &str, errors: &[u64], faults: &[u64]| {
            rows.push(vec![
                axis.to_string(),
                thousands(errors.iter().sum()),
                format!("{:.2}", Self::cv(errors)),
                thousands(faults.iter().sum()),
                format!("{:.2}", Self::cv(faults)),
            ]);
        };
        push("socket", &self.errors_by_socket, &self.faults_by_socket);
        push("bank", &self.errors_by_bank, &self.faults_by_bank);
        push("column", &self.errors_by_col, &self.faults_by_col);
        let mut out = format!(
            "Fig 6: errors vs faults by socket/bank/column\n{}",
            table(&rows)
        );
        if let Some(chi) = self.bank_fault_chi2 {
            out.push_str(&format!(
                "faults-by-bank chi2 p = {:.3} (uniform at 5%: {})\n",
                chi.p_value,
                chi.is_uniform_at(0.05)
            ));
        }
        if let Some(chi) = self.bank_error_chi2 {
            out.push_str(&format!(
                "errors-by-bank chi2 p = {:.3e} (skewed, as the paper warns)\n",
                chi.p_value
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;

    fn fig() -> Fig6 {
        // 4 racks for enough faults to make the chi-square meaningful.
        let ds = Dataset::generate(4, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        compute(&analysis)
    }

    #[test]
    fn faults_are_flatter_than_errors() {
        let f = fig();
        assert!(
            Fig6::cv(&f.faults_by_bank) < Fig6::cv(&f.errors_by_bank),
            "bank faults CV {} vs errors CV {}",
            Fig6::cv(&f.faults_by_bank),
            Fig6::cv(&f.errors_by_bank)
        );
        assert!(f.faults_flatter_than_errors());
    }

    #[test]
    fn fault_distribution_passes_uniformity() {
        let f = fig();
        let chi = f.bank_fault_chi2.expect("bank faults present");
        assert!(
            chi.is_uniform_at(0.01),
            "faults by bank should look uniform, p = {}",
            chi.p_value
        );
    }

    #[test]
    fn error_distribution_fails_uniformity() {
        let f = fig();
        let chi = f.bank_error_chi2.expect("bank errors present");
        assert!(
            !chi.is_uniform_at(0.05),
            "errors by bank should be skewed, p = {}",
            chi.p_value
        );
    }

    #[test]
    fn socket_faults_balanced() {
        let f = fig();
        let [a, b] = f.faults_by_socket;
        let ratio = a.max(b) as f64 / a.min(b).max(1) as f64;
        assert!(ratio < 1.35, "socket fault ratio {ratio}");
    }

    #[test]
    fn cv_edge_cases() {
        assert_eq!(Fig6::cv(&[]), 0.0);
        assert_eq!(Fig6::cv(&[0, 0]), 0.0);
        assert_eq!(Fig6::cv(&[5, 5, 5]), 0.0);
        assert!(Fig6::cv(&[0, 10]) > 0.9);
    }

    #[test]
    fn render_has_axes() {
        let s = fig().render();
        assert!(s.contains("socket"));
        assert!(s.contains("bank"));
        assert!(s.contains("column"));
    }
}

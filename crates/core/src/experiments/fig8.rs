//! Fig 8: faults per cache-line bit position and per physical address —
//! both power-law shaped.
//!
//! The bit-position values carry an undeciphered vendor encoding
//! (footnote 1), so they are treated as opaque labels; the analysis only
//! needs counts per label. Addresses are the (scrambled) cache-line
//! addresses of single-address faults.

use astra_stats::{fit_power_law_auto, FreqTable, PowerLawFit};

use super::render::{table, thousands};
use crate::pipeline::Analysis;

/// The data behind Fig 8.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Faults per bit-position label.
    pub faults_by_bit: FreqTable,
    /// Faults per physical address.
    pub faults_by_addr: FreqTable,
    /// Power-law fit over counts-per-bit-position.
    pub bit_fit: Option<PowerLawFit>,
    /// Power-law fit over counts-per-address.
    pub addr_fit: Option<PowerLawFit>,
}

/// Compute Fig 8 from an analysis.
pub fn compute(analysis: &Analysis) -> Fig8 {
    let _span = super::figure_span("fig8");
    let faults_by_bit = analysis.spatial.faults_by_bit.clone();
    let faults_by_addr = analysis.spatial.faults_by_addr.clone();
    let bit_counts = faults_by_bit.count_values();
    let addr_counts = faults_by_addr.count_values();
    Fig8 {
        bit_fit: fit_power_law_auto(&bit_counts, 20, 16),
        addr_fit: fit_power_law_auto(&addr_counts, 20, 16),
        faults_by_bit,
        faults_by_addr,
    }
}

impl Fig8 {
    /// Fraction of bit positions seeing exactly one fault (the "vast
    /// majority of locations see very few faults" observation).
    pub fn single_fault_bit_fraction(&self) -> f64 {
        let cc = self.faults_by_bit.count_of_counts();
        let ones = cc.get(1);
        let total = self.faults_by_bit.distinct() as u64;
        if total == 0 {
            0.0
        } else {
            ones as f64 / total as f64
        }
    }

    /// Render the two panels' histograms-of-counts.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 8: faults per bit position and physical address\n");
        let panel = |name: &str, freq: &FreqTable, fit: &Option<PowerLawFit>| -> String {
            let cc = freq.count_of_counts();
            let mut rows = vec![vec![format!("Faults/{name}"), "Locations".to_string()]];
            for (count, locations) in cc.iter().take(8) {
                rows.push(vec![count.to_string(), thousands(locations)]);
            }
            let mut s = table(&rows);
            if let Some(f) = fit {
                s.push_str(&format!(
                    "power law: alpha={:.2} xmin={} ks={:.3}\n",
                    f.alpha, f.xmin, f.ks
                ));
            }
            s
        };
        out.push_str(&panel("bit-position", &self.faults_by_bit, &self.bit_fit));
        out.push_str(&panel("address", &self.faults_by_addr, &self.addr_fit));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;

    fn fig() -> Fig8 {
        let ds = Dataset::generate(4, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        compute(&analysis)
    }

    #[test]
    fn most_locations_see_one_fault() {
        let f = fig();
        assert!(
            f.single_fault_bit_fraction() > 0.5,
            "single-fault fraction {}",
            f.single_fault_bit_fraction()
        );
    }

    #[test]
    fn tables_are_populated() {
        let f = fig();
        assert!(f.faults_by_bit.distinct() > 50);
        assert!(f.faults_by_addr.distinct() > 50);
        assert!(f.faults_by_bit.total() >= f.faults_by_addr.total());
    }

    #[test]
    fn address_counts_are_heavy_tailed_enough_to_fit() {
        let f = fig();
        // With enough data a fit exists; when it does, alpha is sensible.
        if let Some(fit) = f.addr_fit {
            assert!(fit.alpha > 1.0 && fit.alpha < 6.0, "alpha {}", fit.alpha);
        }
    }

    #[test]
    fn render_shows_both_panels() {
        let s = fig().render();
        assert!(s.contains("bit-position"));
        assert!(s.contains("address"));
    }
}

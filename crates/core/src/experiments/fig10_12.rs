//! Figs 10–12: positional effects — rack region and rack number.
//!
//! * Fig 10: errors peak at the **bottom** of racks while faults tilt
//!   slightly toward the **top**, and the fault differences are much
//!   smaller than the error differences.
//! * Fig 11: per-rack region fractions of faults — no region dominates
//!   consistently.
//! * Fig 12: per-rack errors show spikes (rack 31 more than twice any
//!   other) that vanish in the fault counts.

use astra_stats::chi_square_uniform;

use super::render::{table, thousands};
use crate::pipeline::Analysis;

/// The data behind Figs 10, 11, and 12.
#[derive(Debug, Clone)]
pub struct Fig10To12 {
    /// Errors per region (bottom, middle, top).
    pub errors_by_region: [u64; 3],
    /// Faults per region.
    pub faults_by_region: [u64; 3],
    /// Errors per rack.
    pub errors_by_rack: Vec<u64>,
    /// Faults per rack.
    pub faults_by_rack: Vec<u64>,
    /// Fig 11: per rack, fraction of its faults in each region (`None`
    /// for rack with no faults).
    pub region_fractions: Vec<Option<[f64; 3]>>,
}

/// Compute Figs 10–12 from an analysis.
pub fn compute(analysis: &Analysis) -> Fig10To12 {
    let _span = super::figure_span("fig10_12");
    let s = &analysis.spatial;
    let region_fractions = (0..analysis.system.racks as usize)
        .map(|rack| s.region_fractions(rack))
        .collect();
    Fig10To12 {
        errors_by_region: s.errors_by_region,
        faults_by_region: s.faults_by_region,
        errors_by_rack: s.errors_by_rack.clone(),
        faults_by_rack: s.faults_by_rack.clone(),
        region_fractions,
    }
}

impl Fig10To12 {
    /// Relative spread (max−min)/mean of a count triple.
    fn spread(counts: &[u64]) -> f64 {
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let min = counts.iter().copied().min().unwrap_or(0) as f64;
        let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
        if mean == 0.0 {
            0.0
        } else {
            (max - min) / mean
        }
    }

    /// Fig 10's contrast: region fault spread is smaller than region
    /// error spread.
    pub fn fault_region_spread_is_smaller(&self) -> bool {
        Self::spread(&self.faults_by_region) < Self::spread(&self.errors_by_region)
    }

    /// Fig 12's contrast: the error-spike rack (argmax of errors) does not
    /// stand out in faults (its fault count is within `factor`× of the
    /// rack mean).
    pub fn spike_rack_vanishes_in_faults(&self, factor: f64) -> bool {
        let Some((spike_rack, _)) = self
            .errors_by_rack
            .iter()
            .enumerate()
            .max_by_key(|(_, &e)| e)
        else {
            return true;
        };
        let mean_faults = self.faults_by_rack.iter().sum::<u64>() as f64
            / self.faults_by_rack.len().max(1) as f64;
        (self.faults_by_rack[spike_rack] as f64) <= mean_faults * factor
    }

    /// Whether the max-error rack carries at least `ratio`× the errors of
    /// every other rack (the rack-31 spike shape).
    pub fn error_spike_ratio(&self) -> f64 {
        let mut sorted: Vec<u64> = self.errors_by_rack.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        match (sorted.first(), sorted.get(1)) {
            (Some(&top), Some(&second)) if second > 0 => top as f64 / second as f64,
            _ => 1.0,
        }
    }

    /// χ² p-value of faults-per-rack against uniform (Fig 12b: "no
    /// significant trends").
    pub fn rack_fault_uniformity_p(&self) -> Option<f64> {
        chi_square_uniform(&self.faults_by_rack).map(|r| r.p_value)
    }

    /// Render all three exhibits.
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "Region".to_string(),
            "Errors".to_string(),
            "Faults".to_string(),
        ]];
        for (i, name) in ["bottom", "middle", "top"].iter().enumerate() {
            rows.push(vec![
                name.to_string(),
                thousands(self.errors_by_region[i]),
                thousands(self.faults_by_region[i]),
            ]);
        }
        let mut out = format!("Fig 10: errors and faults by rack region\n{}", table(&rows));

        out.push_str("Fig 11: fault fractions per region by rack (bottom/middle/top)\n");
        for (rack, fr) in self.region_fractions.iter().enumerate() {
            if let Some(f) = fr {
                out.push_str(&format!(
                    "  rack {rack:>2}: {:.2} / {:.2} / {:.2}\n",
                    f[0], f[1], f[2]
                ));
            }
        }

        out.push_str("Fig 12: errors and faults by rack\n");
        let mut rows = vec![vec![
            "Rack".to_string(),
            "Errors".to_string(),
            "Faults".to_string(),
        ]];
        for rack in 0..self.errors_by_rack.len() {
            rows.push(vec![
                rack.to_string(),
                thousands(self.errors_by_rack[rack]),
                thousands(self.faults_by_rack[rack]),
            ]);
        }
        out.push_str(&table(&rows));
        out.push_str(&format!(
            "error spike ratio (top rack / runner-up): {:.2}\n",
            self.error_spike_ratio()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;

    fn fig(racks: u32) -> Fig10To12 {
        let ds = Dataset::generate(racks, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        compute(&analysis)
    }

    #[test]
    fn fault_regions_flatter_than_error_regions() {
        let f = fig(8);
        assert!(
            f.fault_region_spread_is_smaller(),
            "faults {:?} vs errors {:?}",
            f.faults_by_region,
            f.errors_by_region
        );
    }

    #[test]
    fn errors_peak_at_bottom() {
        // Pathological DIMMs concentrate in the bottom region.
        let f = fig(8);
        assert!(
            f.errors_by_region[0] > f.errors_by_region[1],
            "bottom should out-error middle: {:?}",
            f.errors_by_region
        );
    }

    #[test]
    fn spike_rack_has_no_fault_spike() {
        let f = fig(8);
        assert!(
            f.spike_rack_vanishes_in_faults(2.5),
            "errors {:?} faults {:?}",
            f.errors_by_rack,
            f.faults_by_rack
        );
    }

    #[test]
    fn region_fractions_sum_to_one() {
        let f = fig(4);
        for fr in f.region_fractions.iter().flatten() {
            let sum: f64 = fr.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn render_contains_all_three_figures() {
        let s = fig(2).render();
        assert!(s.contains("Fig 10"));
        assert!(s.contains("Fig 11"));
        assert!(s.contains("Fig 12"));
    }
}

//! Fig 4: monthly error series per fault mode, and the errors-per-fault
//! violin.
//!
//! §3.2's headline numbers: 4,369,731 total CEs; per-mode error counts of
//! 1,412,738 (single-bit), 31,055 (single-word), 54,126 (single-column),
//! 7,658 (single-bank); median errors-per-fault of 1 with a maximum just
//! over 91,000. The four listed modes cover about a third of the total;
//! our analyzer additionally attributes the remaining volume to
//! rank-level (pin) faults, which the paper's figure legend does not
//! break out (see EXPERIMENTS.md).

use astra_stats::ViolinSummary;
use astra_util::time::TimeSpan;

use super::render::{spark, table, thousands};
use crate::classify::ObservedMode;
use crate::pipeline::Analysis;

/// The data behind Fig 4.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Month indices covered (Jan 2019 = 0).
    pub months: Vec<i64>,
    /// All-errors monthly series.
    pub all_errors: Vec<u64>,
    /// New-fault (first-seen) monthly series.
    pub fault_onsets: Vec<u64>,
    /// Per observed mode: total errors attributed and the monthly series.
    pub by_mode: Vec<(ObservedMode, u64, Vec<u64>)>,
    /// Violin summary of errors per fault.
    pub violin: Option<ViolinSummary>,
}

/// Compute Fig 4 from an analysis over `span`.
pub fn compute(analysis: &Analysis, span: TimeSpan) -> Fig4 {
    compute_with(
        analysis.records.iter().map(|r| r.time.month_index()),
        &analysis.faults,
        |i| analysis.records[i as usize].time.month_index(),
        span,
    )
}

/// Shared implementation behind [`compute`]: `error_months` yields the
/// month of every CE in the stream, `month_of` maps a fault's attributed
/// record index to its month. The batch path reads both from the record
/// vector; the incremental engine reads them from its coalesce
/// footprints — one code path, two backing stores.
pub(crate) fn compute_with(
    error_months: impl Iterator<Item = i64>,
    faults: &[crate::coalesce::ObservedFault],
    month_of: impl Fn(u32) -> i64,
    span: TimeSpan,
) -> Fig4 {
    let _span = super::figure_span("fig4");
    let first = span.start.month_index();
    let last = span.end.plus(-1).month_index();
    let months: Vec<i64> = (first..=last).collect();
    let bucket = |m: i64| (m - first) as usize;

    let mut all_errors = vec![0u64; months.len()];
    for m in error_months {
        if (first..=last).contains(&m) {
            all_errors[bucket(m)] += 1;
        }
    }

    let mut fault_onsets = vec![0u64; months.len()];
    for fault in faults {
        let m = fault.first_seen.month_index();
        if (first..=last).contains(&m) {
            fault_onsets[bucket(m)] += 1;
        }
    }

    let mut by_mode = Vec::new();
    for mode in ObservedMode::ALL {
        let mut series = vec![0u64; months.len()];
        let mut total = 0u64;
        for fault in faults.iter().filter(|f| f.mode == mode) {
            for m in fault.record_indices.iter().map(|&i| month_of(i)) {
                if (first..=last).contains(&m) {
                    series[bucket(m)] += 1;
                    total += 1;
                }
            }
        }
        by_mode.push((mode, total, series));
    }

    let counts: Vec<u64> = faults.iter().map(|f| f.error_count).collect();
    let violin = ViolinSummary::from_counts(&counts, 64);

    Fig4 {
        months,
        all_errors,
        fault_onsets,
        by_mode,
        violin,
    }
}

impl Fig4 {
    /// Total CEs in the covered months.
    pub fn total_errors(&self) -> u64 {
        self.all_errors.iter().sum()
    }

    /// Errors attributed to one mode.
    pub fn mode_total(&self, mode: ObservedMode) -> u64 {
        self.by_mode
            .iter()
            .find(|(m, _, _)| *m == mode)
            .map(|(_, t, _)| *t)
            .unwrap_or(0)
    }

    /// Whether fault onsets trend downward over the interval — §3.2: "the
    /// number of faults show a slightly downward trend as time
    /// progresses", which the paper credits to page retirement and good
    /// maintenance. (Error counts are dominated by a few long-lived
    /// sticky faults and need not decline.) Compares the first and last
    /// thirds of fully-covered months.
    pub fn trends_downward(&self) -> bool {
        let n = self.fault_onsets.len();
        if n < 3 {
            return false;
        }
        // Skip the partial first and last months.
        let inner = &self.fault_onsets[1..n - 1];
        let third = (inner.len() / 3).max(1);
        let head: u64 = inner[..third].iter().sum();
        let tail: u64 = inner[inner.len() - third..].iter().sum();
        head > tail
    }

    /// Render the monthly table plus the violin summary.
    pub fn render(&self) -> String {
        let mut rows = vec![{
            let mut header = vec!["Series".to_string(), "Total".to_string()];
            header.push("Monthly".to_string());
            header
        }];
        let spark_of = |series: &[u64]| {
            let v: Vec<f64> = series.iter().map(|&c| c as f64).collect();
            spark(&v)
        };
        rows.push(vec![
            "All errors".to_string(),
            thousands(self.total_errors()),
            spark_of(&self.all_errors),
        ]);
        rows.push(vec![
            "New faults".to_string(),
            thousands(self.fault_onsets.iter().sum()),
            spark_of(&self.fault_onsets),
        ]);
        for (mode, total, series) in &self.by_mode {
            rows.push(vec![
                format!("{mode} faults"),
                thousands(*total),
                spark_of(series),
            ]);
        }
        let mut out = format!(
            "Fig 4a: errors and fault-mode series by month\n{}",
            table(&rows)
        );
        if let Some(v) = &self.violin {
            out.push_str(&format!(
                "Fig 4b: errors per fault — n={} median={} q1={} q3={} max={} mean={:.1}\n",
                v.n, v.median, v.q1, v.q3, v.max, v.mean
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;
    use astra_util::time::study_span;

    fn fig() -> (Analysis, Fig4) {
        let ds = Dataset::generate(2, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let fig = compute(&analysis, study_span());
        (analysis, fig)
    }

    #[test]
    fn totals_are_consistent() {
        let (analysis, fig) = fig();
        assert_eq!(fig.total_errors(), analysis.total_errors());
        let mode_sum: u64 = ObservedMode::ALL.iter().map(|&m| fig.mode_total(m)).sum();
        assert_eq!(mode_sum, fig.total_errors(), "every error has a mode");
    }

    #[test]
    fn single_bit_dominates_per_bank_modes() {
        let (_, fig) = fig();
        let bit = fig.mode_total(ObservedMode::SingleBit);
        for mode in [
            ObservedMode::SingleWord,
            ObservedMode::SingleColumn,
            ObservedMode::SingleBank,
        ] {
            assert!(bit > fig.mode_total(mode), "{mode} exceeds single-bit");
        }
    }

    #[test]
    fn violin_matches_paper_shape() {
        let (_, fig) = fig();
        let v = fig.violin.expect("faults exist");
        assert_eq!(v.median, 1.0, "median errors per fault is one");
        assert!(v.max > 10_000, "a sticky fault dominates: max {}", v.max);
    }

    #[test]
    fn months_cover_study_span() {
        let (_, fig) = fig();
        assert_eq!(fig.months, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(fig.all_errors.len(), 9);
    }

    #[test]
    fn render_mentions_modes() {
        let (_, fig) = fig();
        let s = fig.render();
        assert!(s.contains("single-bit faults"));
        assert!(s.contains("Fig 4b"));
    }
}

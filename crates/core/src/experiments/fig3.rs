//! Fig 3: daily hardware-replacement series per component.

use astra_logs::ReplacementRecord;
use astra_replace::daily_series;
use astra_util::time::TimeSpan;
use astra_util::CalDate;

use super::render::spark;

/// The three daily series of Fig 3.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Dates covered.
    pub dates: Vec<CalDate>,
    /// `[processors, motherboards, dimms]` daily counts.
    pub series: [Vec<u64>; 3],
}

/// Aggregate replacement records into the daily series.
pub fn compute(records: &[ReplacementRecord], span: TimeSpan) -> Fig3 {
    let _span = super::figure_span("fig3");
    let (dates, series) = daily_series(records, span);
    Fig3 { dates, series }
}

impl Fig3 {
    /// Check for the paper's qualitative shape: an infant-mortality burst
    /// (first 30 days above the next 30) for the given category.
    pub fn infant_mortality_visible(&self, category: usize) -> bool {
        let s = &self.series[category];
        if s.len() < 60 {
            return false;
        }
        let first: u64 = s[..30].iter().sum();
        let second: u64 = s[30..60].iter().sum();
        first > second
    }

    /// Render sparkline series plus totals.
    pub fn render(&self) -> String {
        let labels = ["Processors", "Motherboards", "DIMMs"];
        let mut out = String::from("Fig 3: daily hardware replacements (Feb 17 - Sep 17, 2019)\n");
        for (label, series) in labels.iter().zip(&self.series) {
            let values: Vec<f64> = series.iter().map(|&c| c as f64).collect();
            // Compress to weekly buckets for terminal width.
            let weekly: Vec<f64> = values.chunks(7).map(|w| w.iter().sum()).collect();
            out.push_str(&format!(
                "  {:<13} total {:>5}  weekly {}\n",
                label,
                series.iter().sum::<u64>(),
                spark(&weekly)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_replace::{simulate_replacements, ReplacementProfile};
    use astra_topology::SystemConfig;
    use astra_util::time::replacement_span;

    fn fig() -> Fig3 {
        let system = SystemConfig::astra();
        let records = simulate_replacements(&system, &ReplacementProfile::astra(), 42);
        compute(&records, replacement_span())
    }

    #[test]
    fn covers_whole_span() {
        let f = fig();
        assert_eq!(f.dates.len(), 212);
        assert_eq!(f.dates[0], CalDate::new(2019, 2, 17));
    }

    #[test]
    fn infant_mortality_in_every_series() {
        let f = fig();
        for cat in 0..3 {
            assert!(
                f.infant_mortality_visible(cat),
                "category {cat} missing infant-mortality burst"
            );
        }
    }

    #[test]
    fn render_lists_components() {
        let s = fig().render();
        assert!(s.contains("Processors"));
        assert!(s.contains("Motherboards"));
        assert!(s.contains("DIMMs"));
    }
}

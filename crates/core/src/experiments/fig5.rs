//! Fig 5: per-node fault counts (power law) and the CE concentration
//! curve.
//!
//! §3.2: "more than 60% of nodes experienced no CEs. The 8 nodes with the
//! most CEs account for more than 50% of the overall total. The top 2% of
//! nodes account for approximately 90%."

use astra_stats::{fit_power_law_auto, top_share, FreqTable, PowerLawFit, TopShareCurve};
use astra_topology::SystemConfig;

use super::render::{table, thousands};
use crate::pipeline::Analysis;
use crate::spatial::SpatialCounts;

/// The data behind Fig 5.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Nodes in the machine.
    pub node_count: u64,
    /// Nodes with at least one CE.
    pub nodes_with_ce: u64,
    /// Faults-per-node frequency: key = fault count, value = number of
    /// nodes with that count (Fig 5a's axes).
    pub fault_count_freq: FreqTable,
    /// Power-law fit over the nonzero per-node fault counts.
    pub fault_power_law: Option<PowerLawFit>,
    /// Concentration curve of CEs by node (Fig 5b).
    pub ce_concentration: TopShareCurve,
}

/// Compute Fig 5 from an analysis.
pub fn compute(analysis: &Analysis) -> Fig5 {
    compute_from_parts(&analysis.system, &analysis.spatial)
}

/// As [`compute`], from the raw parts — for the incremental engine, which
/// carries spatial counts but no `Analysis`.
pub fn compute_from_parts(system: &SystemConfig, spatial: &SpatialCounts) -> Fig5 {
    let _span = super::figure_span("fig5");
    let fault_counts = spatial.fault_counts_all_nodes(system);
    let error_counts = spatial.error_counts_all_nodes(system);

    let fault_count_freq: FreqTable = fault_counts.iter().copied().collect();
    let nonzero: Vec<u64> = fault_counts.iter().copied().filter(|&c| c > 0).collect();
    let fault_power_law = fit_power_law_auto(&nonzero, 20, 32);

    Fig5 {
        node_count: u64::from(system.node_count()),
        nodes_with_ce: error_counts.iter().filter(|&&c| c > 0).count() as u64,
        fault_count_freq,
        fault_power_law,
        ce_concentration: top_share(&error_counts),
    }
}

impl Fig5 {
    /// Fraction of nodes with zero CEs.
    pub fn zero_ce_fraction(&self) -> f64 {
        1.0 - self.nodes_with_ce as f64 / self.node_count as f64
    }

    /// Share of all CEs carried by the top `k` nodes.
    pub fn top_k_share(&self, k: usize) -> f64 {
        self.ce_concentration.share_of_top(k)
    }

    /// Share carried by the top `percent`% of nodes.
    pub fn top_percent_share(&self, percent: f64) -> f64 {
        let k = ((self.node_count as f64) * percent / 100.0).round() as usize;
        self.top_k_share(k.max(1))
    }

    /// Render the headline statistics and frequency rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Fig 5: per-node faults and CE concentration\n\
             nodes with >=1 CE : {} / {} ({:.1}% zero)\n\
             top 8 nodes carry : {:.1}% of CEs\n\
             top 2%  of nodes  : {:.1}% of CEs\n",
            self.nodes_with_ce,
            self.node_count,
            100.0 * self.zero_ce_fraction(),
            100.0 * self.top_k_share(8),
            100.0 * self.top_percent_share(2.0),
        );
        if let Some(fit) = self.fault_power_law {
            out.push_str(&format!(
                "faults/node power law: alpha={:.2} xmin={} ks={:.3} (n_tail={})\n",
                fit.alpha, fit.xmin, fit.ks, fit.n_tail
            ));
        }
        let mut rows = vec![vec!["Faults/node".to_string(), "Nodes".to_string()]];
        for (count, nodes) in self.fault_count_freq.iter().take(12) {
            rows.push(vec![count.to_string(), thousands(nodes)]);
        }
        out.push_str(&table(&rows));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;

    fn fig() -> Fig5 {
        let ds = Dataset::generate(2, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        compute(&analysis)
    }

    #[test]
    fn majority_of_nodes_have_zero_ces() {
        let f = fig();
        assert!(
            f.zero_ce_fraction() > 0.5,
            "zero fraction {}",
            f.zero_ce_fraction()
        );
    }

    #[test]
    fn concentration_matches_paper_shape() {
        let f = fig();
        // At 2 racks the paper's "top 8 of 2592" scales to ~1 node; the
        // qualitative claim is heavy concentration.
        let scaled_top = ((8.0 * f.node_count as f64 / 2592.0).round() as usize).max(1);
        assert!(
            f.top_k_share(scaled_top) > 0.3,
            "top {} share {}",
            scaled_top,
            f.top_k_share(scaled_top)
        );
        assert!(f.top_percent_share(2.0) > 0.5);
        assert!(f.top_k_share(f.node_count as usize) > 0.999);
    }

    #[test]
    fn frequency_table_covers_all_nodes() {
        let f = fig();
        assert_eq!(f.fault_count_freq.total(), f.node_count);
        // Most nodes sit at zero faults.
        assert!(f.fault_count_freq.get(0) > f.node_count / 2);
    }

    #[test]
    fn power_law_fit_exists_and_is_heavy_tailed() {
        let f = fig();
        let fit = f.fault_power_law.expect("enough faulty nodes to fit");
        assert!(fit.alpha > 1.0 && fit.alpha < 4.0, "alpha {}", fit.alpha);
    }

    #[test]
    fn render_has_headlines() {
        let s = fig().render();
        assert!(s.contains("top 8 nodes"));
        assert!(s.contains("Faults/node"));
    }
}

//! Executable paper-claim verdicts.
//!
//! Each entry pairs one quantitative claim from the paper with the
//! measurement extracted from a dataset and a pass predicate — the live
//! version of EXPERIMENTS.md. The `verdicts` binary prints the table;
//! the integration suite asserts that the expected claims pass at scale.

use astra_telemetry::TelemetryModel;
use astra_util::time::{het_firmware_date, sensor_span, study_span, TimeSpan};
use astra_util::CalDate;

use super::{fig10_12, fig13_14, fig15, fig4, fig5, fig6, fig7, fig9};
use crate::classify::ObservedMode;
use crate::pipeline::{Analysis, Dataset};
use crate::tempcorr::TempCorrConfig;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Which exhibit the claim comes from.
    pub exhibit: &'static str,
    /// The claim, as the paper states it.
    pub claim: &'static str,
    /// What the paper reports (textual, for the table).
    pub paper: String,
    /// What we measured.
    pub measured: String,
    /// Whether the claim holds on the regenerated data.
    pub pass: bool,
}

/// Scale-aware tolerance: absolute totals are only comparable at full
/// scale, so totals are checked as per-node rates.
fn per_node(total: u64, nodes: u32) -> f64 {
    total as f64 / f64::from(nodes)
}

/// Evaluate every claim on a dataset.
///
/// `tc` controls the sampling cost of the temperature analyses; pass
/// [`TempCorrConfig::default`] for report-quality numbers.
pub fn evaluate(ds: &Dataset, analysis: &Analysis, tc: &TempCorrConfig) -> Vec<Verdict> {
    let nodes = ds.system.node_count();
    let mut out = Vec::new();

    // ---- Fig 4 ----
    let f4 = fig4::compute(analysis, study_span());
    let rate = per_node(f4.total_errors(), nodes);
    out.push(Verdict {
        exhibit: "Fig 4a",
        claim: "over 4,369,731 total correctable errors",
        paper: "1,686 CEs/node over the interval".into(),
        measured: format!("{rate:.0} CEs/node"),
        pass: (800.0..3400.0).contains(&rate),
    });
    let v = f4.violin.as_ref();
    out.push(Verdict {
        exhibit: "Fig 4b",
        claim: "median errors per fault is one",
        paper: "median 1".into(),
        measured: format!("median {:?}", v.map(|v| v.median)),
        pass: v.map(|v| v.median) == Some(1.0),
    });
    out.push(Verdict {
        exhibit: "Fig 4b",
        claim: "maximum errors per fault just over 91,000",
        paper: "~91,000".into(),
        measured: format!("{:?}", v.map(|v| v.max)),
        pass: v
            .map(|v| v.max >= 20_000 && v.max <= 91_000)
            .unwrap_or(false),
    });
    let bit = f4.mode_total(ObservedMode::SingleBit);
    let word = f4.mode_total(ObservedMode::SingleWord);
    let col = f4.mode_total(ObservedMode::SingleColumn);
    let bank = f4.mode_total(ObservedMode::SingleBank);
    out.push(Verdict {
        exhibit: "Fig 4a",
        claim: "mode error ordering bit >> column > word > bank",
        paper: "1.41M / 54k / 31k / 7.7k".into(),
        measured: format!("{bit} / {col} / {word} / {bank}"),
        pass: bit > col && col > word && word > bank,
    });
    out.push(Verdict {
        exhibit: "Fig 4a",
        claim: "faults show a slightly downward trend over time",
        paper: "downward".into(),
        measured: format!("onsets {:?}", f4.fault_onsets),
        pass: f4.trends_downward(),
    });

    // ---- Fig 5 ----
    let f5 = fig5::compute(analysis);
    out.push(Verdict {
        exhibit: "Fig 5b",
        claim: "more than 60% of nodes experienced no CEs",
        paper: "> 60%".into(),
        measured: format!("{:.1}%", 100.0 * f5.zero_ce_fraction()),
        pass: f5.zero_ce_fraction() > 0.55,
    });
    let top8 = ((8.0 * f64::from(nodes) / 2592.0).round() as usize).max(1);
    out.push(Verdict {
        exhibit: "Fig 5b",
        claim: "the 8 nodes with most CEs carry more than 50%",
        paper: "> 50%".into(),
        measured: format!(
            "top {} nodes carry {:.1}%",
            top8,
            100.0 * f5.top_k_share(top8)
        ),
        pass: f5.top_k_share(top8) > 0.4,
    });
    out.push(Verdict {
        exhibit: "Fig 5b",
        claim: "top 2% of nodes account for ~90% of CEs",
        paper: "~90%".into(),
        measured: format!("{:.1}%", 100.0 * f5.top_percent_share(2.0)),
        pass: f5.top_percent_share(2.0) > 0.75,
    });
    out.push(Verdict {
        exhibit: "Fig 5a",
        claim: "faults per node resemble a power law",
        paper: "power law (Clauset et al.)".into(),
        measured: f5
            .fault_power_law
            .map(|f| format!("alpha {:.2}, ks {:.3}", f.alpha, f.ks))
            .unwrap_or_else(|| "no fit".into()),
        pass: f5
            .fault_power_law
            .map(|f| f.alpha > 1.1 && f.alpha < 3.5 && f.ks < 0.15)
            .unwrap_or(false),
    });

    // ---- Fig 6 ----
    let f6 = fig6::compute(analysis);
    out.push(Verdict {
        exhibit: "Fig 6",
        claim: "fault distributions uniform across banks (statistical noise)",
        paper: "uniform".into(),
        measured: f6
            .bank_fault_chi2
            .map(|c| format!("chi2 p = {:.3}", c.p_value))
            .unwrap_or_else(|| "n/a".into()),
        pass: f6
            .bank_fault_chi2
            .map(|c| c.is_uniform_at(0.01))
            .unwrap_or(false),
    });
    out.push(Verdict {
        exhibit: "Fig 6",
        claim: "error counts alone give an inaccurate (skewed) picture",
        paper: "skewed".into(),
        measured: format!(
            "error CV {:.2} vs fault CV {:.2} (bank axis)",
            fig6::Fig6::cv(&f6.errors_by_bank),
            fig6::Fig6::cv(&f6.faults_by_bank)
        ),
        pass: f6.faults_flatter_than_errors(),
    });

    // ---- Fig 7 ----
    let f7 = fig7::compute(analysis);
    out.push(Verdict {
        exhibit: "Fig 7b",
        claim: "rank 0 experiences more faults",
        paper: "rank 0 ahead".into(),
        measured: format!("{:?}", f7.faults_by_rank),
        pass: f7.rank0_dominates(),
    });
    out.push(Verdict {
        exhibit: "Fig 7d",
        claim: "slots J,E,I,P most faults; A,K,L,M,N fewest",
        paper: "J,E,I,P high".into(),
        measured: format!(
            "hot mean {:.0}, cold mean {:.0}",
            f7.mean_faults(&['J', 'E', 'I', 'P']),
            f7.mean_faults(&['A', 'K', 'L', 'M', 'N'])
        ),
        pass: f7.hot_slots_dominate(),
    });

    // ---- Fig 9 ----
    let f9 = fig9::compute(analysis, &ds.telemetry, sensor_span(), tc);
    out.push(Verdict {
        exhibit: "Fig 9",
        claim: "higher pre-error temperature not strongly correlated with CEs",
        paper: "no strong correlation".into(),
        measured: f9
            .windows
            .iter()
            .map(|(l, w)| {
                format!(
                    "{l}: {:+.3}/C",
                    w.relative_slope_per_degree().unwrap_or(0.0)
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
        pass: f9.no_strong_correlation(0.35),
    });

    // ---- Figs 10-12 ----
    let f10 = fig10_12::compute(analysis);
    out.push(Verdict {
        exhibit: "Fig 10",
        claim: "region fault differences smaller than error differences",
        paper: "smaller".into(),
        measured: format!(
            "errors {:?}, faults {:?}",
            f10.errors_by_region, f10.faults_by_region
        ),
        pass: f10.fault_region_spread_is_smaller(),
    });
    out.push(Verdict {
        exhibit: "Fig 12",
        claim: "an error-spike rack exists (rack 31: >2x any other)",
        paper: ">= 2x".into(),
        measured: format!("{:.2}x", f10.error_spike_ratio()),
        pass: f10.error_spike_ratio() > 1.5,
    });
    out.push(Verdict {
        exhibit: "Fig 12b",
        claim: "the spike vanishes in fault counts",
        paper: "no fault spike".into(),
        measured: "spike rack within 2.5x of rack mean".into(),
        pass: f10.spike_rack_vanishes_in_faults(2.5),
    });

    // ---- Fig 13/14 ----
    let f13 = fig13_14::compute_fig13(analysis, &ds.telemetry, sensor_span(), tc);
    out.push(Verdict {
        exhibit: "Fig 13",
        claim: "no discernible CE trend with temperature deciles",
        paper: "no trend".into(),
        measured: "mean |Spearman rho| across six sensors".into(),
        pass: f13.no_monotone_trend(0.55),
    });
    let cpu1_hotter = f13.cpu[0]
        .points
        .iter()
        .zip(&f13.cpu[1].points)
        .all(|(a, b)| a.0 > b.0);
    out.push(Verdict {
        exhibit: "Fig 13a",
        claim: "CPU1 temperatures above CPU2 (airflow order)",
        paper: "CPU1 hotter".into(),
        measured: format!("every decile hotter: {cpu1_hotter}"),
        pass: cpu1_hotter,
    });
    let f14 = fig13_14::compute_fig14(analysis, &ds.telemetry, sensor_span(), tc);
    out.push(Verdict {
        exhibit: "Fig 14",
        claim: "power (utilization proxy) not strongly correlated with CEs",
        paper: "no strong relation".into(),
        measured: "12 hot/cold power-decile series".into(),
        pass: f14.no_strong_power_trend(0.6),
    });
    out.push(Verdict {
        exhibit: "Fig 14",
        claim: "hot samples sit at higher power than cold samples",
        paper: "shifted right".into(),
        measured: format!("{}", f14.hot_series_shifted_right()),
        pass: f14.hot_series_shifted_right(),
    });

    // ---- Fig 15 ----
    let window = TimeSpan::dates(het_firmware_date(), CalDate::new(2019, 9, 14));
    let f15 = fig15::compute(&ds.sim.het_log, window, ds.system.dimm_count());
    out.push(Verdict {
        exhibit: "Fig 15",
        claim: "0.00948 DUEs per DIMM-year (FIT ~ 1081)",
        paper: "FIT ~ 1081".into(),
        measured: format!(
            "{:.5} DUE/DIMM/yr, FIT {:.0}",
            f15.dues.dues_per_dimm_year, f15.dues.fit_per_dimm
        ),
        // Wide band: the Poisson mean is ~24 even at full scale.
        pass: f15.dues.dues == 0 || (0.003..0.03).contains(&f15.dues.dues_per_dimm_year),
    });

    out
}

/// Convenience: telemetry handle type used by [`evaluate`].
pub type Telemetry = TelemetryModel;

/// Render verdicts as an aligned table.
pub fn render(verdicts: &[Verdict]) -> String {
    let mut rows = vec![vec![
        "".to_string(),
        "Exhibit".to_string(),
        "Claim".to_string(),
        "Measured".to_string(),
    ]];
    for v in verdicts {
        rows.push(vec![
            if v.pass { "PASS".into() } else { "FAIL".into() },
            v.exhibit.to_string(),
            v.claim.to_string(),
            v.measured.clone(),
        ]);
    }
    super::render::table(&rows)
}

/// Count of passing verdicts.
pub fn passing(verdicts: &[Verdict]) -> usize {
    verdicts.iter().filter(|v| v.pass).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_util::MINUTES_PER_DAY;

    #[test]
    fn all_claims_pass_at_moderate_scale() {
        let ds = Dataset::generate(8, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let tc = TempCorrConfig {
            max_ce_samples: 400,
            window_stride: 60,
            monthly_stride: 2 * MINUTES_PER_DAY,
            bin_width: 1.0,
        };
        let verdicts = evaluate(&ds, &analysis, &tc);
        let failing: Vec<&Verdict> = verdicts.iter().filter(|v| !v.pass).collect();
        assert!(
            failing.is_empty(),
            "failing claims:\n{}",
            render(&failing.into_iter().cloned().collect::<Vec<_>>())
        );
        assert!(verdicts.len() >= 18, "claims covered: {}", verdicts.len());
    }

    #[test]
    fn render_includes_every_row() {
        let ds = Dataset::generate(1, 7);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let tc = TempCorrConfig {
            max_ce_samples: 100,
            window_stride: 120,
            monthly_stride: 4 * MINUTES_PER_DAY,
            bin_width: 1.0,
        };
        let verdicts = evaluate(&ds, &analysis, &tc);
        let table = render(&verdicts);
        assert_eq!(table.lines().count(), verdicts.len() + 2);
        assert!(passing(&verdicts) <= verdicts.len());
    }
}

//! Fig 9: CE counts vs mean errored-DIMM temperature over the preceding
//! window (one hour, one day, one week, one month).
//!
//! The verdict statistic is the OLS slope: "a positive slope suggests
//! higher temperatures prior to a correctable error lead to more frequent
//! errors". The paper finds no strong correlation; the simulator places
//! errors independently of temperature, so the reproduction recovers the
//! same null result.

use astra_telemetry::TelemetryModel;
use astra_util::time::{TimeSpan, MINUTES_PER_DAY};

use crate::pipeline::Analysis;
use crate::tempcorr::{window_correlation, TempCorrConfig, WindowCorrelation};

/// The four standard windows of Fig 9.
pub const WINDOWS: [(&str, u64); 4] = [
    ("one hour", 60),
    ("one day", MINUTES_PER_DAY),
    ("one week", 7 * MINUTES_PER_DAY),
    ("one month", 30 * MINUTES_PER_DAY),
];

/// The data behind Fig 9: one correlation per window.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// `(label, correlation)` for each window.
    pub windows: Vec<(String, WindowCorrelation)>,
}

/// Compute Fig 9 from an analysis and the telemetry source.
pub fn compute(
    analysis: &Analysis,
    telemetry: &TelemetryModel,
    span: TimeSpan,
    config: &TempCorrConfig,
) -> Fig9 {
    let _span = super::figure_span("fig9");
    let windows = WINDOWS
        .iter()
        .map(|(label, minutes)| {
            (
                label.to_string(),
                window_correlation(&analysis.records, telemetry, span, *minutes, config),
            )
        })
        .collect();
    Fig9 { windows }
}

impl Fig9 {
    /// The paper's conclusion as a predicate: no window shows a strong
    /// positive temperature effect (|relative slope| under
    /// `threshold` per °C).
    pub fn no_strong_correlation(&self, threshold: f64) -> bool {
        self.windows.iter().all(|(_, wc)| {
            wc.relative_slope_per_degree()
                .map(|r| r.abs() < threshold)
                .unwrap_or(true)
        })
    }

    /// Render one line per window.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig 9: CE count vs mean errored-DIMM temperature before the error\n");
        for (label, wc) in &self.windows {
            let fit = match wc.fit {
                Some(f) => format!(
                    "slope {:+.2} CEs/degC (r2 {:.2}, rel {:+.3}/degC)",
                    f.slope,
                    f.r_squared,
                    wc.relative_slope_per_degree().unwrap_or(0.0)
                ),
                None => "fit degenerate".to_string(),
            };
            out.push_str(&format!(
                "  {label:<9} sampled {:>6} CEs over {:>2} bins: {fit}\n",
                wc.sampled,
                wc.points.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;
    use astra_util::time::sensor_span;

    fn fig() -> Fig9 {
        let ds = Dataset::generate(1, 42);
        let analysis = Analysis::run(ds.system, ds.sim.ce_log.clone());
        let config = TempCorrConfig {
            max_ce_samples: 300,
            window_stride: 30,
            monthly_stride: MINUTES_PER_DAY,
            bin_width: 1.0,
        };
        compute(&analysis, &ds.telemetry, sensor_span(), &config)
    }

    #[test]
    fn four_windows_computed() {
        let f = fig();
        assert_eq!(f.windows.len(), 4);
        assert!(f.windows.iter().all(|(_, wc)| wc.sampled > 0));
    }

    #[test]
    fn reproduces_null_result() {
        let f = fig();
        // Relative slope threshold: a strong effect in the Schroeder
        // et al. sense would be a clear monotone trend of a few percent
        // per degree sustained over the range. At this test's tiny scale
        // (one rack, 300 sampled CEs) the binned fit is noisy, so this is
        // a sanity bound; the meaningful assertion runs at 8 racks in
        // tests/experiments_reproduce_paper.rs.
        assert!(
            f.no_strong_correlation(1.0),
            "unexpected strong temperature correlation:\n{}",
            f.render()
        );
    }

    #[test]
    fn render_lists_all_windows() {
        let s = fig().render();
        for (label, _) in WINDOWS {
            assert!(s.contains(label), "missing {label}");
        }
    }
}

//! Fig 2: distributions of sensor values (CPU temperature, DIMM
//! temperature, node DC power) over the sensor-data interval.

use astra_stats::Histogram;
use astra_telemetry::TelemetryModel;
use astra_topology::{DimmGroup, NodeId, SensorId, SocketId};
use astra_util::time::TimeSpan;

use super::render::spark;

/// The three panels of Fig 2.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// CPU temperature histograms: `[CPU1, CPU2]`.
    pub cpu: [Histogram; 2],
    /// DIMM temperature histograms, one per sensor group.
    pub dimm: [Histogram; 4],
    /// DC power histogram.
    pub power: Histogram,
    /// Samples excluded as unreadable/invalid.
    pub excluded: u64,
    /// Total samples drawn.
    pub total: u64,
}

/// Sample the telemetry model over `span` with the given strides.
///
/// `node_stride` subsamples nodes; `minute_stride` subsamples time. At
/// full scale use generous strides — the distributions converge quickly.
pub fn compute(
    telemetry: &TelemetryModel,
    span: TimeSpan,
    node_stride: u32,
    minute_stride: u64,
) -> Fig2 {
    let _span = super::figure_span("fig2");
    assert!(node_stride > 0 && minute_stride > 0);
    let system = *telemetry.system();
    let mut fig = Fig2 {
        cpu: [
            Histogram::new(40.0, 90.0, 50),
            Histogram::new(40.0, 90.0, 50),
        ],
        dimm: [
            Histogram::new(25.0, 60.0, 70),
            Histogram::new(25.0, 60.0, 70),
            Histogram::new(25.0, 60.0, 70),
            Histogram::new(25.0, 60.0, 70),
        ],
        power: Histogram::new(100.0, 500.0, 80),
        excluded: 0,
        total: 0,
    };
    let mut node = 0u32;
    while node < system.node_count() {
        let n = NodeId(node);
        let mut t = span.start;
        while t < span.end {
            for socket in SocketId::ALL {
                fig.total += 1;
                match telemetry.reading(n, SensorId::cpu(socket), t).valid_value() {
                    Some(v) => fig.cpu[usize::from(socket.0)].push(v),
                    None => fig.excluded += 1,
                }
            }
            for group in DimmGroup::ALL {
                fig.total += 1;
                match telemetry
                    .reading(n, SensorId::dimm_group(group), t)
                    .valid_value()
                {
                    Some(v) => fig.dimm[group.index()].push(v),
                    None => fig.excluded += 1,
                }
            }
            fig.total += 1;
            match telemetry.reading(n, SensorId::dc_power(), t).valid_value() {
                Some(v) => fig.power.push(v),
                None => fig.excluded += 1,
            }
            t = t.plus(minute_stride as i64);
        }
        node += node_stride;
    }
    fig
}

/// Build Fig 2 from parsed sensor records (a `sensors.log` excerpt)
/// instead of querying the telemetry model — the path a site with real
/// BMC logs would take.
pub fn compute_from_records(records: &[astra_logs::SensorRecord]) -> Fig2 {
    let _span = super::figure_span("fig2");
    let mut fig = Fig2 {
        cpu: [
            Histogram::new(40.0, 90.0, 50),
            Histogram::new(40.0, 90.0, 50),
        ],
        dimm: [
            Histogram::new(25.0, 60.0, 70),
            Histogram::new(25.0, 60.0, 70),
            Histogram::new(25.0, 60.0, 70),
            Histogram::new(25.0, 60.0, 70),
        ],
        power: Histogram::new(100.0, 500.0, 80),
        excluded: 0,
        total: 0,
    };
    for rec in records {
        fig.total += 1;
        let Some(v) = rec.valid_value() else {
            fig.excluded += 1;
            continue;
        };
        match rec.sensor.kind() {
            astra_topology::SensorKind::CpuTemp(socket) => fig.cpu[usize::from(socket.0)].push(v),
            astra_topology::SensorKind::DimmTemp(group) => fig.dimm[group.index()].push(v),
            astra_topology::SensorKind::DcPower => fig.power.push(v),
        }
    }
    fig
}

impl Fig2 {
    /// Fraction of samples excluded (the paper: "significantly less than
    /// 1%").
    pub fn excluded_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.excluded as f64 / self.total as f64
        }
    }

    /// Render the three panels as sparklines plus summary stats.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig 2: sensor value distributions (May 20 - Sep 19, 2019)\n");
        let summarize = |h: &Histogram| -> String {
            let counts: Vec<f64> = h.counts().iter().map(|&c| c as f64).collect();
            spark(&counts)
        };
        out.push_str(&format!(
            "(a) CPU temperature [40-90 C]\n    CPU1 {}\n    CPU2 {}\n",
            summarize(&self.cpu[0]),
            summarize(&self.cpu[1]),
        ));
        out.push_str("(b) DIMM temperature [25-60 C]\n");
        for (g, h) in self.dimm.iter().enumerate() {
            let group = DimmGroup::from_index(g as u8).expect("4 groups");
            out.push_str(&format!("    {} {}\n", group.label(), summarize(h)));
        }
        out.push_str(&format!(
            "(c) DC power [100-500 W]\n    {}\n",
            summarize(&self.power)
        ));
        out.push_str(&format!(
            "excluded samples: {:.3}% of {}\n",
            100.0 * self.excluded_fraction(),
            self.total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_telemetry::ThermalProfile;
    use astra_topology::SystemConfig;
    use astra_util::CalDate;

    fn compute_small() -> Fig2 {
        let telemetry = TelemetryModel::new(SystemConfig::scaled(1), ThermalProfile::astra(), 42);
        let span = TimeSpan::dates(CalDate::new(2019, 6, 1), CalDate::new(2019, 6, 8));
        compute(&telemetry, span, 4, 180)
    }

    #[test]
    fn distributions_are_populated_and_plausible() {
        let fig = compute_small();
        assert!(fig.total > 1000);
        for h in &fig.cpu {
            assert!(h.total() > 0);
            // Mass must be inside the plotting range, not clipped.
            assert!(h.overflow() + h.underflow() < h.total() / 100);
        }
        for h in &fig.dimm {
            assert!(h.total() > 0);
        }
        assert!(fig.power.total() > 0);
    }

    #[test]
    fn exclusion_below_one_percent() {
        let fig = compute_small();
        assert!(fig.excluded_fraction() < 0.01);
    }

    #[test]
    fn cpu1_distribution_sits_hotter() {
        let fig = compute_small();
        let mean = |h: &Histogram| -> f64 {
            let total: u64 = h.total();
            h.counts()
                .iter()
                .enumerate()
                .map(|(i, &c)| h.bin_center(i) * c as f64)
                .sum::<f64>()
                / total as f64
        };
        assert!(mean(&fig.cpu[0]) > mean(&fig.cpu[1]) + 2.0);
    }

    #[test]
    fn render_mentions_all_panels() {
        let s = compute_small().render();
        assert!(s.contains("CPU1"));
        assert!(s.contains("DIMMs A,C,E,G"));
        assert!(s.contains("DC power"));
    }

    #[test]
    fn records_path_matches_model_path() {
        // The record-based Fig 2 over a materialized excerpt must agree
        // with the model-based computation over the same samples.
        let telemetry = TelemetryModel::new(SystemConfig::scaled(1), ThermalProfile::astra(), 42);
        let span = TimeSpan::dates(CalDate::new(2019, 6, 1), CalDate::new(2019, 6, 3));
        let nodes: Vec<astra_topology::NodeId> =
            (0..72).step_by(4).map(astra_topology::NodeId).collect();
        let records = telemetry.records(nodes.clone(), span, 180);
        let from_records = compute_from_records(&records);
        assert_eq!(from_records.total, records.len() as u64);
        assert!(from_records.cpu[0].total() > 0);
        assert!(from_records.power.total() > 0);
        // Totals match the model-driven sampler over the same grid.
        let from_model = compute(&telemetry, span, 4, 180);
        assert_eq!(from_model.total, from_records.total);
        assert_eq!(from_model.excluded, from_records.excluded);
    }
}

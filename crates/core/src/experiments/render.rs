//! Small text-table rendering helpers shared by the experiment drivers.

/// Render rows as an aligned two-column-plus table. The first row is the
/// header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            // Right-align numeric-looking cells, left-align labels.
            let numeric = cell
                .chars()
                .next()
                .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
                .unwrap_or(false);
            if numeric && i > 0 {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            } else {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            }
        }
        out = out.trim_end().to_string();
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Format a count with thousands separators.
pub fn thousands(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

/// A sparkline-ish rendering of a series for terminal output.
pub fn spark(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(4_369_731), "4,369,731");
    }

    #[test]
    fn table_aligns_and_underlines_header() {
        let rows = vec![
            vec!["Component".to_string(), "Count".to_string()],
            vec!["Processors".to_string(), "836".to_string()],
        ];
        let out = table(&rows);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("836"));
    }

    #[test]
    fn table_empty() {
        assert_eq!(table(&[]), "");
    }

    #[test]
    fn spark_levels() {
        let s = spark(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(spark(&[0.0, 0.0]), "▁▁");
    }
}

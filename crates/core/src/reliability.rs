//! Component reliability analysis over the replacement log.
//!
//! Extends the paper's §3.1 tally with the survival-analysis treatment
//! its related work applies to other machines (Ostrouchov et al.):
//! Kaplan–Meier curves over component lifetimes, per-component failure
//! rates, and a test of whether the hazard is genuinely decreasing
//! (infant mortality) rather than constant.

use astra_logs::ReplacementRecord;
use astra_stats::ks_two_sample;
use astra_stats::survival::{exponential_rate_mle, KaplanMeier, Lifetime};
use astra_topology::SystemConfig;
use astra_util::time::TimeSpan;

/// Survival summary for one component category.
#[derive(Debug, Clone)]
pub struct ComponentSurvival {
    /// Category label ("Processors", …).
    pub component: &'static str,
    /// Installed population.
    pub population: u64,
    /// Observed failures (replacements).
    pub failures: u64,
    /// Kaplan–Meier curve over days since tracking start.
    pub km: KaplanMeier,
    /// MLE constant failure rate (events per unit-day), for comparison —
    /// a constant-hazard model should *overestimate* late-period
    /// survival if infant mortality is real.
    pub exp_rate: f64,
}

impl ComponentSurvival {
    /// Survival probability over the whole tracking window.
    pub fn end_survival(&self, days: f64) -> f64 {
        self.km.survival_at(days)
    }

    /// The infant-mortality diagnostic: the fraction of failures in the
    /// first `early_days` divided by the fraction of the window those
    /// days represent. > 1 means front-loaded failures.
    pub fn front_loading(&self, early_days: f64, window_days: f64) -> f64 {
        let early = self
            .km
            .steps
            .iter()
            .filter(|s| s.time <= early_days)
            .map(|s| s.events)
            .sum::<u64>() as f64;
        let total = self.km.events as f64;
        if total == 0.0 {
            return 1.0;
        }
        (early / total) / (early_days / window_days)
    }
}

/// Build per-category lifetimes from the replacement log.
///
/// Every installed unit enters observation at the tracking start; units
/// replaced during the window fail at their replacement day, the rest
/// are right-censored at the window end. (Repeat replacements of the
/// same position are treated as additional units, a negligible
/// correction at Astra's replacement rates.)
pub fn component_survival(
    system: &SystemConfig,
    records: &[ReplacementRecord],
    span: TimeSpan,
) -> Vec<ComponentSurvival> {
    let start_idx = span.start.date().day_index();
    let window_days = span.days() as f64;
    let populations: [(&'static str, u64); 3] = [
        ("Processors", u64::from(system.socket_count())),
        ("Motherboards", u64::from(system.node_count())),
        ("DIMMs", system.dimm_count()),
    ];

    populations
        .iter()
        .enumerate()
        .map(|(cat, &(label, population))| {
            let mut lifetimes: Vec<Lifetime> = records
                .iter()
                .filter(|r| r.component.category_index() == cat)
                .map(|r| Lifetime {
                    time: (r.date.day_index() - start_idx) as f64 + 0.5,
                    observed: true,
                })
                .collect();
            let failures = lifetimes.len() as u64;
            let survivors = population.saturating_sub(failures);
            lifetimes.extend((0..survivors).map(|_| Lifetime {
                time: window_days,
                observed: false,
            }));
            let km = KaplanMeier::fit(&lifetimes).expect("non-empty population");
            let exp_rate = exponential_rate_mle(&lifetimes).unwrap_or(0.0);
            ComponentSurvival {
                component: label,
                population,
                failures,
                km,
                exp_rate,
            }
        })
        .collect()
}

/// Compare early-window and late-window failure-time distributions with a
/// two-sample KS test. A significant difference (small p) confirms the
/// failure process is not stationary across the window — the paper's
/// event waves and infant mortality.
pub fn stationarity_test(
    records: &[ReplacementRecord],
    span: TimeSpan,
    category: usize,
) -> Option<(f64, f64)> {
    let start_idx = span.start.date().day_index();
    let half = span.days() as f64 / 2.0;
    let days: Vec<f64> = records
        .iter()
        .filter(|r| r.component.category_index() == category)
        .map(|r| (r.date.day_index() - start_idx) as f64)
        .collect();
    // Compare day-within-half distributions of the two halves: for a
    // stationary process both halves look uniform over their half.
    let early: Vec<f64> = days.iter().copied().filter(|&d| d < half).collect();
    let late: Vec<f64> = days
        .iter()
        .copied()
        .filter(|&d| d >= half)
        .map(|d| d - half)
        .collect();
    ks_two_sample(&early, &late)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_replace::{simulate_replacements, ReplacementProfile};
    use astra_util::time::replacement_span;

    fn survival(racks: u32) -> Vec<ComponentSurvival> {
        let system = SystemConfig::scaled(racks);
        let records = simulate_replacements(&system, &ReplacementProfile::astra(), 42);
        component_survival(&system, &records, replacement_span())
    }

    #[test]
    fn end_survival_matches_table1_rates() {
        let s = survival(36);
        // Survival at the end of the window = 1 − replacement rate.
        let expect = [0.161, 0.018, 0.037];
        for (cs, &rate) in s.iter().zip(&expect) {
            let end = cs.end_survival(212.0);
            assert!(
                (end - (1.0 - rate)).abs() < 0.01,
                "{}: end survival {end} vs 1-{rate}",
                cs.component
            );
        }
    }

    #[test]
    fn failures_are_front_loaded() {
        let s = survival(36);
        for cs in &s {
            let fl = cs.front_loading(30.0, 212.0);
            assert!(
                fl > 1.2,
                "{} front-loading {fl} should exceed uniform",
                cs.component
            );
        }
    }

    #[test]
    fn km_is_monotone_and_bounded() {
        let s = survival(8);
        for cs in &s {
            assert!(cs.km.survival_at(0.0) <= 1.0);
            for pair in cs.km.steps.windows(2) {
                assert!(pair[1].survival <= pair[0].survival);
            }
            assert!(cs.end_survival(212.0) > 0.8, "{}", cs.component);
        }
    }

    #[test]
    fn exponential_rate_positive_and_small() {
        let s = survival(8);
        for cs in &s {
            assert!(cs.exp_rate > 0.0);
            // Daily per-unit failure rate is well under 1%.
            assert!(cs.exp_rate < 0.01, "{} rate {}", cs.component, cs.exp_rate);
        }
    }

    #[test]
    fn process_is_not_stationary() {
        let system = SystemConfig::scaled(36);
        let records = simulate_replacements(&system, &ReplacementProfile::astra(), 42);
        // Processors: infant burst + upgrade wave → halves differ.
        let (d, p) = stationarity_test(&records, replacement_span(), 0).unwrap();
        assert!(d > 0.1, "d {d}");
        assert!(p < 0.01, "p {p}");
    }
}

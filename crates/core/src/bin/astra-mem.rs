//! `astra-mem` — command-line interface to the astra-mem toolkit.
//!
//! The implementation lives in [`astra_core::cli`] so every command path
//! is unit-testable from the library; this binary only forwards the
//! process arguments and exit code.

use std::process::ExitCode;

/// Byte-counting wrapper around the system allocator. It powers the
/// `mem.<path>` gauges and the flame table's memory columns; when
/// tracing is off its cost is two thread-local adds per allocation.
#[global_allocator]
static ALLOC: astra_obs::CountingAlloc = astra_obs::CountingAlloc::new();

fn main() -> ExitCode {
    astra_core::cli::main(std::env::args().skip(1))
}

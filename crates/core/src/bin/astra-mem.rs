//! `astra-mem` — command-line interface to the astra-mem toolkit.
//!
//! The implementation lives in [`astra_core::cli`] so every command path
//! is unit-testable from the library; this binary only forwards the
//! process arguments and exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    astra_core::cli::main(std::env::args().skip(1))
}

//! One tenant of the serve daemon: a resumable, tail-mode analysis
//! engine over a single log directory.
//!
//! [`SiteEngine`] packages the pieces `stream_analyze` wires together for
//! a one-shot run — [`EventStream`], [`StreamAnalyzer`], checkpoint
//! write/read — into a poll-driven form a long-running process can own:
//!
//! * [`SiteEngine::open`] resumes from the configured checkpoint when one
//!   (or a salvageable `.tmp` sibling) exists, otherwise starts fresh;
//! * [`SiteEngine::poll`] consumes every event currently available in
//!   the growing logs (tail mode: a torn final record is held back, not
//!   quarantined) and returns how many it folded in;
//! * [`SiteEngine::checkpoint`] writes the analyzer state atomically so
//!   a restart replays nothing;
//! * [`SiteEngine::report`] snapshots the analyzer into the same
//!   [`StreamReport`] `stream-analyze` produces — once the logs are
//!   fully consumed, analysis output is byte-identical to the batch
//!   path's.
//!
//! Cross-source ordering note: while tailing, the k-way merge pops among
//! the heads that are currently available, so the global interleaving is
//! best-effort. Every analyzer folds per-source state (CE events into
//! coalesce/spatial/predict, HET into its own table, and so on) with
//! FIFO order preserved within each source, so the converged report is
//! identical to a batch run regardless of when data arrived.

use std::path::{Path, PathBuf};

use astra_logs::Quarantine;
use astra_topology::SystemConfig;

use super::{
    checkpoint, Analyzer as _, EventStream, StreamAnalyzer, StreamError, StreamOptions,
    StreamReport,
};

/// A resumable tail-mode analysis engine over one log directory.
pub struct SiteEngine {
    opts: StreamOptions,
    analyzer: StreamAnalyzer,
    source: EventStream,
    /// Absolute stream position (events consumed, resumed ones included).
    position: u64,
    /// Whether this engine started from a checkpoint.
    resumed: bool,
    checkpoints_written: u64,
}

impl SiteEngine {
    /// Open `dir` for tail ingest. If `opts.resume_from` names a
    /// checkpoint, or `opts.checkpoint_path` (with its `.tmp` salvage
    /// sibling) holds one from an earlier run, the engine resumes from
    /// it; otherwise it starts fresh.
    pub fn open(
        dir: &Path,
        system: SystemConfig,
        opts: &StreamOptions,
    ) -> Result<Self, StreamError> {
        let resume = opts.resume_from.clone().or_else(|| {
            opts.checkpoint_path
                .clone()
                .filter(|p| checkpoint::resume_candidate_exists(p))
        });
        let (analyzer, consumed0) = match &resume {
            Some(path) => checkpoint::read(path, &system, opts)?,
            None => (
                StreamAnalyzer::new(system, opts.coalesce, opts.predict.clone()),
                [0; 4],
            ),
        };
        let source = EventStream::open_tailing(dir, consumed0, opts.ingest)?;
        Ok(SiteEngine {
            opts: opts.clone(),
            analyzer,
            source,
            position: consumed0.iter().sum(),
            resumed: resume.is_some(),
            checkpoints_written: 0,
        })
    }

    /// Consume every event currently available in the logs; returns how
    /// many were folded in. `Ok(0)` means the logs are dry for now — the
    /// next poll re-probes them. A strict-mode quarantine (or a blown
    /// lenient budget) aborts with the same errors `stream_analyze`
    /// raises.
    pub fn poll(&mut self) -> Result<u64, StreamError> {
        let mut n = 0u64;
        while let Some(ev) = self.source.next_event()? {
            self.analyzer.consume(&ev);
            self.position += 1;
            n += 1;
        }
        Ok(n)
    }

    /// Write a checkpoint (atomic: `.tmp` sibling + rename) if a path is
    /// configured; returns whether one was written.
    pub fn checkpoint(&mut self) -> Result<bool, StreamError> {
        let Some(path) = self.opts.checkpoint_path.as_deref() else {
            return Ok(false);
        };
        checkpoint::write(
            path,
            &self.analyzer,
            &self.source.consumed(),
            self.opts.checkpoint_format,
        )?;
        self.checkpoints_written += 1;
        Ok(true)
    }

    /// Snapshot the analyzer state into the report `stream-analyze`
    /// would print — byte-identical to the batch path once the logs are
    /// fully consumed.
    pub fn report(&self) -> StreamReport {
        let mut report = self.analyzer.snapshot();
        report.skipped = self.source.skipped();
        report
    }

    /// Parsed records consumed per source (the checkpoint resume point).
    pub fn consumed(&self) -> [u64; 4] {
        self.source.consumed()
    }

    /// Absolute stream position: total events consumed, including those
    /// replay-skipped by a checkpoint resume.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Whether this engine resumed from a checkpoint.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Checkpoints written since open.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Merged per-reason quarantine report across the site's logs.
    pub fn quarantine(&self) -> Quarantine {
        self.source.quarantine()
    }

    /// Log bytes read so far.
    pub fn bytes_read(&self) -> usize {
        self.source.bytes_read()
    }

    /// The checkpoint path in effect, if any.
    pub fn checkpoint_path(&self) -> Option<&PathBuf> {
        self.opts.checkpoint_path.as_ref()
    }
}

//! The incremental analysis engine: one pass, every analysis.
//!
//! The batch pipeline materializes the full CE record vector, then runs
//! each analysis as its own pass. This module inverts that: the four logs
//! are k-way merged into one time-ordered [`MemEvent`] stream, and every
//! analysis implements [`Analyzer`] — a fold over that stream — so a
//! single pass drives coalescing, spatial aggregation, HET series,
//! temperature correlation, and online prediction *concurrently*, with
//! peak memory bounded by analyzer state (footprints, count tables,
//! per-rank feature state) rather than by dataset size.
//!
//! Determinism is by construction, in the same style as `astra_util::par`:
//!
//! * the merge pops the head with the smallest `(time, source index)` and
//!   preserves FIFO order within each source, so the merged order is a
//!   pure function of file contents — in particular all CE events keep
//!   exact file order, which is the order the batch record vector has;
//! * every analyzer's [`Analyzer::merge`] is either exact (integer sums,
//!   footprint-list append in stream order) or never exercised by the
//!   shipped paths (see `analyzers`);
//! * checkpoints identify the resume point by *consumed parsed-record
//!   counts per source*; unparseable-line skipping is deterministic, so
//!   replaying a file and dropping the first N parsed records lands on
//!   the same byte state as the run that wrote the checkpoint.
//!
//! [`run_batch`] drives the same analyzers over an in-memory record slice,
//! which is how `pipeline::run_with` becomes a thin adapter: batch and
//! streaming are provably the same code path down to `classify_groups`.

pub mod analyzers;
pub mod checkpoint;
pub mod site;

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};

use astra_logs::binfmt::{self, BinFormat, BinReader};
use astra_logs::io::{ChunkReader, IngestChunk, STREAM_CHUNK_BYTES};
use astra_logs::{
    ce, het, inventory, sensor, CeRecord, HetRecord, IngestOptions, LineFormat, Quarantine,
    ReplacementRecord, SensorRecord,
};
use astra_predict::PredictConfig;
use astra_topology::SystemConfig;
use astra_util::Minute;

use crate::coalesce::{CoalesceConfig, ObservedFault};
use crate::pipeline::LoadError;
use crate::spatial::SpatialCounts;

pub use analyzers::{HetReport, SensorMonth, StreamAnalyzer, StreamReport};

/// One record of the merged, time-ordered analysis stream.
///
/// `seq` is the record's index within *its own source log* (file order,
/// zero-based). For CE events this equals the index the record would have
/// in the batch `records` vector, which is what lets the streaming
/// coalescer produce byte-identical `record_indices`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemEvent {
    /// A correctable error from `ce.log`.
    Ce {
        /// File-order index within `ce.log`.
        seq: u64,
        /// The parsed record.
        rec: CeRecord,
    },
    /// A hardware-event-tracker record from `het.log`.
    Het {
        /// File-order index within `het.log`.
        seq: u64,
        /// The parsed record.
        rec: HetRecord,
    },
    /// A component replacement from `inventory.log`.
    Inventory {
        /// File-order index within `inventory.log`.
        seq: u64,
        /// The parsed record.
        rec: ReplacementRecord,
    },
    /// An environmental sample from `sensors.log`.
    Sensor {
        /// File-order index within `sensors.log`.
        seq: u64,
        /// The parsed record.
        rec: SensorRecord,
    },
}

impl MemEvent {
    /// Event time used for merge ordering. Inventory scans carry a date,
    /// not a minute; they merge at that day's midnight.
    pub fn time(&self) -> Minute {
        match self {
            MemEvent::Ce { rec, .. } => rec.time,
            MemEvent::Het { rec, .. } => rec.time,
            MemEvent::Inventory { rec, .. } => rec.date.midnight(),
            MemEvent::Sensor { rec, .. } => rec.time,
        }
    }

    /// Which log the event came from.
    pub fn source(&self) -> EventSource {
        match self {
            MemEvent::Ce { .. } => EventSource::Ce,
            MemEvent::Het { .. } => EventSource::Het,
            MemEvent::Inventory { .. } => EventSource::Inventory,
            MemEvent::Sensor { .. } => EventSource::Sensor,
        }
    }

    /// File-order index within the event's source log.
    pub fn seq(&self) -> u64 {
        match self {
            MemEvent::Ce { seq, .. }
            | MemEvent::Het { seq, .. }
            | MemEvent::Inventory { seq, .. }
            | MemEvent::Sensor { seq, .. } => *seq,
        }
    }
}

/// The four logs, in merge tie-break order (lower index wins a time tie).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventSource {
    /// `ce.log`.
    Ce,
    /// `het.log`.
    Het,
    /// `inventory.log`.
    Inventory,
    /// `sensors.log`.
    Sensor,
}

impl EventSource {
    /// All sources in tie-break order.
    pub const ALL: [EventSource; 4] = [
        EventSource::Ce,
        EventSource::Het,
        EventSource::Inventory,
        EventSource::Sensor,
    ];

    /// Dense index, 0–3.
    pub fn index(self) -> usize {
        match self {
            EventSource::Ce => 0,
            EventSource::Het => 1,
            EventSource::Inventory => 2,
            EventSource::Sensor => 3,
        }
    }

    /// Metric-name token (`stream.events.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            EventSource::Ce => "ce",
            EventSource::Het => "het",
            EventSource::Inventory => "inventory",
            EventSource::Sensor => "sensors",
        }
    }
}

/// A fold over the merged event stream.
///
/// `consume` must be a pure state update; `merge` combines two states
/// built from *disjoint, ordered* slices of the stream (shard fan-in —
/// state from the earlier slice is the left argument); `snapshot` renders
/// the state into a report without consuming it, so the engine can
/// checkpoint and keep going.
pub trait Analyzer: Sized {
    /// What `snapshot` produces.
    type Report;

    /// Fold one event into the state.
    fn consume(&mut self, ev: &MemEvent);

    /// Combine two shard states; `a` saw the earlier slice of the stream.
    fn merge(a: Self, b: Self) -> Self;

    /// Render the current state.
    fn snapshot(&self) -> Self::Report;
}

/// The per-file reader behind a [`LogSource`], picked by magic-byte
/// sniffing at open: text logs stream through the chunked line parser,
/// `astra-binlog` files through the CRC-framed block reader. Both yield
/// [`IngestChunk`]s, so everything downstream is format-blind.
enum SourceReader<T> {
    Text(ChunkReader<std::fs::File, T>),
    Bin(BinReader<std::fs::File, T>),
}

impl<T: Send> SourceReader<T> {
    fn next_chunk(&mut self) -> io::Result<Option<IngestChunk<T>>> {
        match self {
            SourceReader::Text(r) => r.next_chunk(),
            SourceReader::Bin(r) => r.next_chunk(),
        }
    }

    fn bytes_consumed(&self) -> usize {
        match self {
            SourceReader::Text(r) => r.bytes_consumed(),
            SourceReader::Bin(r) => r.bytes_consumed(),
        }
    }
}

/// One log file as a resumable record queue: a [`SourceReader`] plus the
/// parsed-but-unconsumed buffer, with consumed-record accounting for
/// checkpoints. Resuming re-reads the file and drops the first
/// `skip` parsed records — exact, because line skipping (and the
/// out-of-order check, whose running maximum rebuilds from byte 0) is
/// deterministic, and binary block decode is deterministic by
/// construction.
struct LogSource<T> {
    name: &'static str,
    path: PathBuf,
    reader: Option<SourceReader<T>>,
    buf: VecDeque<T>,
    /// Sequence number of the next record to pop (== records consumed).
    next_seq: u64,
    /// Parsed records still to drop before buffering (resume).
    skip_remaining: u64,
    /// Records parsed so far, resume-skipped ones included (the budget
    /// denominator alongside the quarantine total).
    parsed: u64,
    /// Lines quarantined so far (whole file, from byte 0).
    quarantine: Quarantine,
    /// The strict/lenient policy this source enforces.
    ingest: IngestOptions,
    /// Tail mode: the file may still be growing. EOF means "dry for
    /// now" — the reader stays open and a later refill re-probes it —
    /// and the lenient budget is evaluated at every dry point (each is
    /// the file's EOF as currently visible) instead of once.
    tail: bool,
    /// Bytes consumed by retired readers.
    bytes_done: usize,
}

impl<T: Send> LogSource<T> {
    #[allow(clippy::too_many_arguments)]
    fn open(
        dir: &Path,
        name: &'static str,
        format: LineFormat<T>,
        bin: BinFormat<T>,
        required: bool,
        skip: u64,
        ingest: IngestOptions,
        tail: bool,
    ) -> Result<Self, LoadError> {
        let path = dir.join(name);
        let unreadable = |source: io::Error| LoadError::Unreadable {
            name,
            path: dir.join(name),
            source,
        };
        let reader = match std::fs::File::open(&path) {
            Ok(f) => Some(if binfmt::file_is_binlog(&path).map_err(unreadable)? {
                SourceReader::Bin(
                    BinReader::new(f, bin)
                        .with_retry(ingest.retry)
                        .with_tail(tail),
                )
            } else {
                SourceReader::Text(
                    ChunkReader::new(f, format, STREAM_CHUNK_BYTES)
                        .with_retry(ingest.retry)
                        .with_tail(tail),
                )
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if required {
                    return Err(LoadError::MissingLog { name, path });
                }
                None
            }
            Err(e) => {
                return Err(LoadError::Unreadable {
                    name,
                    path,
                    source: e,
                })
            }
        };
        Ok(LogSource {
            name,
            path,
            reader,
            buf: VecDeque::new(),
            next_seq: skip,
            skip_remaining: skip,
            parsed: 0,
            quarantine: Quarantine::default(),
            ingest,
            tail,
            bytes_done: 0,
        })
    }

    /// The typed abort for this source's accumulated quarantine.
    fn corrupt(&self) -> LoadError {
        LoadError::Corrupt {
            name: self.name,
            path: self.path.clone(),
            quarantine: Box::new(self.quarantine.clone()),
            lines_ok: self.parsed,
        }
    }

    /// Ensure the buffer is non-empty or the file is exhausted.
    fn refill(&mut self) -> Result<(), LoadError> {
        while self.buf.is_empty() {
            let Some(reader) = self.reader.as_mut() else {
                return Ok(());
            };
            match reader.next_chunk() {
                Ok(Some(mut chunk)) => {
                    self.parsed += chunk.records.len() as u64;
                    self.quarantine.merge(&chunk.quarantine);
                    if self.ingest.is_strict() && !self.quarantine.is_empty() {
                        return Err(self.corrupt());
                    }
                    if self.skip_remaining > 0 {
                        let drop = self.skip_remaining.min(chunk.records.len() as u64) as usize;
                        chunk.records.drain(..drop);
                        self.skip_remaining -= drop as u64;
                    }
                    self.buf.extend(chunk.records);
                }
                Ok(None) => {
                    // Lenient budget is per file, checked at its EOF —
                    // same rule as `parse_stream_chunked`. In tail mode
                    // every dry point is the EOF as currently visible,
                    // so the check runs there too, but the reader stays
                    // open for whatever the writer appends next.
                    let total = self.parsed + self.quarantine.total();
                    if total > 0
                        && self.quarantine.total() as f64 / total as f64
                            > self.ingest.max_bad_frac()
                    {
                        return Err(self.corrupt());
                    }
                    if self.tail {
                        return Ok(());
                    }
                    self.bytes_done += reader.bytes_consumed();
                    self.reader = None;
                }
                Err(e) => {
                    return Err(LoadError::Unreadable {
                        name: self.name,
                        path: self.path.clone(),
                        source: e,
                    })
                }
            }
        }
        Ok(())
    }

    fn head(&self) -> Option<&T> {
        self.buf.front()
    }

    fn pop(&mut self) -> (u64, T) {
        let rec = self.buf.pop_front().expect("pop on refilled source");
        let seq = self.next_seq;
        self.next_seq += 1;
        (seq, rec)
    }

    fn bytes(&self) -> usize {
        self.bytes_done + self.reader.as_ref().map_or(0, SourceReader::bytes_consumed)
    }
}

/// The k-way merge over the four log readers.
///
/// `next` pops the event with the smallest `(time, source index)` among
/// the source heads. Within one source records come out in file order
/// whatever their timestamps (`sensors.log` is node-major, not
/// time-sorted), so the merged order is deterministic for any inputs.
pub struct EventStream {
    ce: LogSource<CeRecord>,
    het: LogSource<HetRecord>,
    inventory: LogSource<ReplacementRecord>,
    sensors: LogSource<SensorRecord>,
}

impl EventStream {
    /// Open a log directory (same required/optional semantics as
    /// `AnalysisInput::from_dir`: `sensors.log` may be absent) under the
    /// default strict ingest policy.
    pub fn open(dir: &Path) -> Result<Self, LoadError> {
        Self::open_resumed(dir, [0; 4])
    }

    /// As [`EventStream::open`] with a checkpoint resume point.
    pub fn open_resumed(dir: &Path, consumed: [u64; 4]) -> Result<Self, LoadError> {
        Self::open_with(dir, consumed, IngestOptions::default())
    }

    /// Open with the first `consumed[source]` parsed records of each log
    /// already accounted for (checkpoint resume) and an explicit ingest
    /// policy. Each source enforces the policy independently: strict
    /// aborts on its first quarantined line, lenient checks the error
    /// budget at that file's EOF.
    pub fn open_with(
        dir: &Path,
        consumed: [u64; 4],
        ingest: IngestOptions,
    ) -> Result<Self, LoadError> {
        Self::open_impl(dir, consumed, ingest, false)
    }

    /// As [`EventStream::open_with`], but in tail mode: the logs may
    /// still be growing, so end-of-file means "dry for now" — readers
    /// stay open, a torn final record is held back until the writer
    /// completes it, and [`EventStream::next_event`] returning `None`
    /// means the stream is dry, not finished. While some sources are dry
    /// the k-way merge pops among the *available* heads only, so the
    /// cross-source interleaving is best-effort; every analyzer folds
    /// per-source state, so analysis results are unaffected (within one
    /// source, file order is always preserved).
    pub fn open_tailing(
        dir: &Path,
        consumed: [u64; 4],
        ingest: IngestOptions,
    ) -> Result<Self, LoadError> {
        Self::open_impl(dir, consumed, ingest, true)
    }

    fn open_impl(
        dir: &Path,
        consumed: [u64; 4],
        ingest: IngestOptions,
        tail: bool,
    ) -> Result<Self, LoadError> {
        Ok(EventStream {
            ce: LogSource::open(
                dir,
                "ce.log",
                ce::FORMAT,
                binfmt::CE,
                true,
                consumed[0],
                ingest,
                tail,
            )?,
            het: LogSource::open(
                dir,
                "het.log",
                het::FORMAT,
                binfmt::HET,
                true,
                consumed[1],
                ingest,
                tail,
            )?,
            inventory: LogSource::open(
                dir,
                "inventory.log",
                inventory::FORMAT,
                binfmt::INVENTORY,
                true,
                consumed[2],
                ingest,
                tail,
            )?,
            sensors: LogSource::open(
                dir,
                "sensors.log",
                sensor::FORMAT,
                binfmt::SENSOR,
                false,
                consumed[3],
                ingest,
                tail,
            )?,
        })
    }

    /// Pop the next event in merge order, or `None` at end of all logs.
    pub fn next_event(&mut self) -> Result<Option<MemEvent>, LoadError> {
        self.ce.refill()?;
        self.het.refill()?;
        self.inventory.refill()?;
        self.sensors.refill()?;

        fn best(cur: Option<(Minute, u8)>, cand: (Minute, u8)) -> Option<(Minute, u8)> {
            Some(match cur {
                None => cand,
                Some(c) => c.min(cand),
            })
        }
        let mut min: Option<(Minute, u8)> = None;
        if let Some(r) = self.ce.head() {
            min = best(min, (r.time, 0));
        }
        if let Some(r) = self.het.head() {
            min = best(min, (r.time, 1));
        }
        if let Some(r) = self.inventory.head() {
            min = best(min, (r.date.midnight(), 2));
        }
        if let Some(r) = self.sensors.head() {
            min = best(min, (r.time, 3));
        }
        let Some((_, src)) = min else {
            return Ok(None);
        };
        Ok(Some(match src {
            0 => {
                let (seq, rec) = self.ce.pop();
                MemEvent::Ce { seq, rec }
            }
            1 => {
                let (seq, rec) = self.het.pop();
                MemEvent::Het { seq, rec }
            }
            2 => {
                let (seq, rec) = self.inventory.pop();
                MemEvent::Inventory { seq, rec }
            }
            _ => {
                let (seq, rec) = self.sensors.pop();
                MemEvent::Sensor { seq, rec }
            }
        }))
    }

    /// Parsed records consumed per source (the checkpoint resume point).
    pub fn consumed(&self) -> [u64; 4] {
        [
            self.ce.next_seq,
            self.het.next_seq,
            self.inventory.next_seq,
            self.sensors.next_seq,
        ]
    }

    /// Lines quarantined across all logs so far.
    pub fn skipped(&self) -> u64 {
        self.quarantine().total()
    }

    /// Merged per-reason quarantine report across all logs.
    pub fn quarantine(&self) -> Quarantine {
        let mut q = self.ce.quarantine.clone();
        q.merge(&self.het.quarantine);
        q.merge(&self.inventory.quarantine);
        q.merge(&self.sensors.quarantine);
        q
    }

    /// Log bytes read so far.
    pub fn bytes_read(&self) -> usize {
        self.ce.bytes() + self.het.bytes() + self.inventory.bytes() + self.sensors.bytes()
    }
}

/// Engine options for [`stream_analyze`].
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Ingest policy (strict by default; `--lenient` quarantines within
    /// an error budget).
    pub ingest: IngestOptions,
    /// Coalescing thresholds (shared with the batch path).
    pub coalesce: CoalesceConfig,
    /// Prediction feature/window knobs.
    pub predict: PredictConfig,
    /// Write a checkpoint every N consumed events (absolute stream
    /// position, so cadence survives resume). Requires `checkpoint_path`.
    pub checkpoint_every: Option<u64>,
    /// Where checkpoints are written (atomically, via a `.tmp` sibling).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from a checkpoint file instead of starting fresh.
    pub resume_from: Option<PathBuf>,
    /// On-disk checkpoint encoding (text by default; binary wraps the
    /// same snapshot in the CRC-framed `astra-binlog` container). Reads
    /// auto-detect the format per file, so resuming works across runs
    /// that used different encodings.
    pub checkpoint_format: binfmt::LogFormat,
    /// Stop after the stream position reaches N events: write a final
    /// checkpoint and return `Ok(None)` instead of a report. Test/ops
    /// hook for exercising mid-stream restarts.
    pub stop_after: Option<u64>,
}

/// Why a streaming run failed.
#[derive(Debug)]
pub enum StreamError {
    /// The log directory could not be opened or read.
    Load(LoadError),
    /// A checkpoint could not be written, read, or decoded.
    Checkpoint {
        /// Checkpoint file involved (empty when none was configured).
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Load(e) => write!(f, "{e}"),
            StreamError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Load(e) => Some(e),
            StreamError::Checkpoint { .. } => None,
        }
    }
}

impl From<LoadError> for StreamError {
    fn from(e: LoadError) -> Self {
        StreamError::Load(e)
    }
}

/// How often the engine samples its accounted working set into the
/// `stream.workingset_bytes` gauge.
const WORKINGSET_SAMPLE_EVERY: u64 = 65_536;

/// Run every analyzer over a log directory in one merged pass.
///
/// Returns `Ok(None)` when `stop_after` cut the run short (a checkpoint
/// was written; re-run with `resume_from` to finish), otherwise the full
/// [`StreamReport`]. Peak memory is analyzer state: at no point is any
/// log's record vector materialized.
pub fn stream_analyze(
    dir: &Path,
    system: SystemConfig,
    opts: &StreamOptions,
) -> Result<Option<StreamReport>, StreamError> {
    let _span = astra_obs::span("pipeline.stream");
    let (mut analyzer, consumed0) = match &opts.resume_from {
        Some(path) => checkpoint::read(path, &system, opts)?,
        None => (
            StreamAnalyzer::new(system, opts.coalesce, opts.predict.clone()),
            [0; 4],
        ),
    };
    let mut source = EventStream::open_with(dir, consumed0, opts.ingest)?;
    let mut position: u64 = consumed0.iter().sum();
    let mut counted = [0u64; 4];
    let mut checkpoints_written = 0u64;

    let checkpoint_now =
        |analyzer: &StreamAnalyzer, source: &EventStream| -> Result<(), StreamError> {
            let path = opts
                .checkpoint_path
                .as_deref()
                .ok_or_else(|| StreamError::Checkpoint {
                    path: PathBuf::new(),
                    detail: "a checkpoint cadence or stop was requested without --checkpoint FILE"
                        .into(),
                })?;
            checkpoint::write(path, analyzer, &source.consumed(), opts.checkpoint_format)
        };

    loop {
        if opts.stop_after.is_some_and(|stop| position >= stop) {
            checkpoint_now(&analyzer, &source)?;
            checkpoints_written += 1;
            flush_metrics(&source, &counted, checkpoints_written, &analyzer);
            return Ok(None);
        }
        let Some(ev) = source.next_event()? else {
            break;
        };
        analyzer.consume(&ev);
        counted[ev.source().index()] += 1;
        position += 1;
        if opts
            .checkpoint_every
            .is_some_and(|every| every > 0 && position.is_multiple_of(every))
        {
            checkpoint_now(&analyzer, &source)?;
            checkpoints_written += 1;
        }
        if position.is_multiple_of(WORKINGSET_SAMPLE_EVERY) {
            astra_obs::global()
                .gauge("stream.workingset_bytes")
                .set_max(analyzer.accounted_bytes() as f64);
        }
    }

    flush_metrics(&source, &counted, checkpoints_written, &analyzer);
    let mut report = analyzer.snapshot();
    report.skipped = source.skipped();
    Ok(Some(report))
}

/// Emit the `stream.*` counters once, at end of run (batched locally so
/// the hot loop never touches the registry).
fn flush_metrics(
    source: &EventStream,
    counted: &[u64; 4],
    checkpoints_written: u64,
    analyzer: &StreamAnalyzer,
) {
    let obs = astra_obs::global();
    obs.counter("stream.events").add(counted.iter().sum());
    for src in EventSource::ALL {
        obs.counter(&format!("stream.events.{}", src.name()))
            .add(counted[src.index()]);
    }
    obs.counter("stream.skipped_lines").add(source.skipped());
    astra_logs::io::publish_quarantine(&source.quarantine());
    obs.counter("stream.bytes_read")
        .add(source.bytes_read() as u64);
    if checkpoints_written > 0 {
        obs.counter("stream.checkpoints_written")
            .add(checkpoints_written);
    }
    obs.gauge("stream.workingset_bytes")
        .set_max(analyzer.accounted_bytes() as f64);
}

/// Below this many records the consume fold runs sequentially (same
/// threshold as the coalescer and spatial pass).
const PARALLEL_CONSUME_MIN_RECORDS: usize = 50_000;

/// Drive the coalesce + spatial analyzers over an in-memory record slice:
/// the batch adapter `pipeline::run_with` delegates to.
///
/// Sharding is over contiguous index ranges and the merge appends
/// footprints in shard order, so the folded state — and therefore the
/// classified fault list — is bit-identical at any worker count, and
/// identical to what [`stream_analyze`] accumulates from `ce.log`.
pub(crate) fn run_batch(
    system: &SystemConfig,
    records: &[CeRecord],
    config: &CoalesceConfig,
) -> (Vec<ObservedFault>, SpatialCounts) {
    let consumed = {
        let _span = astra_obs::span("pipeline.consume");
        let workers = astra_util::par::worker_count(records.len());
        if records.len() >= PARALLEL_CONSUME_MIN_RECORDS && workers > 1 {
            let ranges = shard_ranges(records.len(), workers);
            let shards = astra_util::par::par_map(&ranges, |&(start, end)| {
                // Inherits `pipeline.consume` as its span root on worker
                // threads, so shard time nests identically at any count.
                let mut span = astra_obs::span("consume.shard");
                span.attach("records", (end - start) as i64);
                let mut shard = analyzers::BatchAnalyzer::new(*system, *config);
                for (off, rec) in records[start..end].iter().enumerate() {
                    shard.consume(&MemEvent::Ce {
                        seq: (start + off) as u64,
                        rec: *rec,
                    });
                }
                shard
            });
            shards
                .into_iter()
                .reduce(Analyzer::merge)
                .unwrap_or_else(|| analyzers::BatchAnalyzer::new(*system, *config))
        } else {
            let mut span = astra_obs::span("consume.shard");
            span.attach("records", records.len() as i64);
            let mut shard = analyzers::BatchAnalyzer::new(*system, *config);
            for (i, rec) in records.iter().enumerate() {
                shard.consume(&MemEvent::Ce {
                    seq: i as u64,
                    rec: *rec,
                });
            }
            shard
        }
    };
    consumed.snapshot()
}

/// Split `0..len` into at most `shards` contiguous ranges, earlier ranges
/// one longer when the division is uneven.
fn shard_ranges(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, len.max(1));
    let base = len / shards;
    let rem = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce;
    use crate::pipeline::Dataset;

    struct TempDirGuard(PathBuf);

    impl TempDirGuard {
        fn new(tag: &str) -> TempDirGuard {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "astra-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            TempDirGuard(dir)
        }
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn written_dataset(tag: &str) -> (Dataset, TempDirGuard) {
        let ds = Dataset::generate(1, 42);
        let guard = TempDirGuard::new(tag);
        ds.write_logs(&guard.0).unwrap();
        (ds, guard)
    }

    fn drain(stream: &mut EventStream) -> Vec<MemEvent> {
        let mut events = Vec::new();
        while let Some(ev) = stream.next_event().unwrap() {
            events.push(ev);
        }
        events
    }

    #[test]
    fn merge_is_time_ordered_with_source_tiebreak_and_fifo() {
        let (ds, guard) = written_dataset("stream-merge");
        let mut stream = EventStream::open(&guard.0).unwrap();
        let events = drain(&mut stream);
        let expected = ds.sim.ce_log.len()
            + ds.sim.het_log.len()
            + ds.replacements.len()
            + ds.sensor_excerpt().len();
        assert_eq!(events.len(), expected);
        assert_eq!(stream.skipped(), 0);

        // Per-source seq is FIFO (file order)...
        let mut next_seq = [0u64; 4];
        for ev in &events {
            let src = ev.source().index();
            assert_eq!(ev.seq(), next_seq[src], "source {src} not FIFO");
            next_seq[src] += 1;
        }
        // ...and the merged (time, source) keys never go backwards,
        // except where a source is internally unsorted (sensors.log is
        // node-major); then FIFO within the source must win, which the
        // seq check above already proved. Verify the sorted sources obey
        // the global key order among themselves.
        let keys: Vec<(Minute, usize)> = events
            .iter()
            .filter(|ev| ev.source() != EventSource::Sensor)
            .map(|ev| (ev.time(), ev.source().index()))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "merge order broken");

        // CE events reproduce the batch record vector exactly.
        let ces: Vec<CeRecord> = events
            .iter()
            .filter_map(|ev| match ev {
                MemEvent::Ce { rec, .. } => Some(*rec),
                _ => None,
            })
            .collect();
        assert_eq!(ces, ds.sim.ce_log);
    }

    #[test]
    fn binary_logs_stream_identically_and_resume() {
        let (ds, guard) = written_dataset("stream-binfmt-text");
        let bin_guard = TempDirGuard::new("stream-binfmt-bin");
        ds.write_logs_as(&bin_guard.0, binfmt::LogFormat::Binary)
            .unwrap();
        let mut text_stream = EventStream::open(&guard.0).unwrap();
        let text_events = drain(&mut text_stream);
        let mut bin_stream = EventStream::open(&bin_guard.0).unwrap();
        let bin_events = drain(&mut bin_stream);
        assert_eq!(bin_events, text_events, "merge order must be format-blind");

        // Checkpoint-style resume lands on the same tail.
        let mut head = EventStream::open(&bin_guard.0).unwrap();
        let cut = 500;
        for _ in 0..cut {
            head.next_event().unwrap().unwrap();
        }
        let mut tail = EventStream::open_resumed(&bin_guard.0, head.consumed()).unwrap();
        assert_eq!(drain(&mut tail).as_slice(), &text_events[cut..]);
    }

    #[test]
    fn resume_skips_exactly_the_consumed_prefix() {
        let (_, guard) = written_dataset("stream-resume");
        let mut full = EventStream::open(&guard.0).unwrap();
        let all = drain(&mut full);

        let mut head = EventStream::open(&guard.0).unwrap();
        let cut = 1000;
        for _ in 0..cut {
            head.next_event().unwrap().unwrap();
        }
        let consumed = head.consumed();
        assert_eq!(consumed.iter().sum::<u64>(), cut as u64);

        let mut tail = EventStream::open_resumed(&guard.0, consumed).unwrap();
        let rest = drain(&mut tail);
        assert_eq!(rest.len(), all.len() - cut);
        assert_eq!(rest.as_slice(), &all[cut..], "resumed tail differs");
        // Re-reading the whole file recovers the full skip count.
        assert_eq!(tail.skipped(), full.skipped());
    }

    #[test]
    fn strict_stream_aborts_on_corrupt_log() {
        use std::io::Write as _;
        let (_, guard) = written_dataset("stream-strict");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(guard.0.join("het.log"))
            .unwrap();
        writeln!(f, "ntpd[9]: clock step").unwrap();
        drop(f);
        let mut stream = EventStream::open(&guard.0).unwrap();
        let err = loop {
            match stream.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected a Corrupt abort"),
                Err(e) => break e,
            }
        };
        match err {
            LoadError::Corrupt { name, .. } => assert_eq!(name, "het.log"),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn lenient_stream_quarantines_and_finishes() {
        use std::io::Write as _;
        let (ds, guard) = written_dataset("stream-lenient");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(guard.0.join("ce.log"))
            .unwrap();
        writeln!(f, "ntpd[9]: clock step").unwrap();
        drop(f);
        let mut stream =
            EventStream::open_with(&guard.0, [0; 4], astra_logs::IngestOptions::lenient(None))
                .unwrap();
        let events = drain(&mut stream);
        assert_eq!(stream.skipped(), 1);
        let ces: Vec<CeRecord> = events
            .iter()
            .filter_map(|ev| match ev {
                MemEvent::Ce { rec, .. } => Some(*rec),
                _ => None,
            })
            .collect();
        assert_eq!(ces, ds.sim.ce_log, "quarantining must not drop records");
    }

    #[test]
    fn missing_required_log_is_load_error() {
        let (_, guard) = written_dataset("stream-missing");
        std::fs::remove_file(guard.0.join("het.log")).unwrap();
        match EventStream::open(&guard.0) {
            Err(LoadError::MissingLog { name, .. }) => assert_eq!(name, "het.log"),
            Err(other) => panic!("expected MissingLog, got {other}"),
            Ok(_) => panic!("expected MissingLog, opened fine"),
        }
    }

    #[test]
    fn absent_sensor_log_is_tolerated() {
        let (ds, guard) = written_dataset("stream-nosensors");
        std::fs::remove_file(guard.0.join("sensors.log")).unwrap();
        let mut stream = EventStream::open(&guard.0).unwrap();
        let events = drain(&mut stream);
        assert_eq!(
            events.len(),
            ds.sim.ce_log.len() + ds.sim.het_log.len() + ds.replacements.len()
        );
        assert!(events.iter().all(|ev| ev.source() != EventSource::Sensor));
    }

    #[test]
    fn run_batch_matches_direct_passes() {
        let ds = Dataset::generate(1, 7);
        let config = CoalesceConfig::default();
        let faults_direct = coalesce(&ds.sim.ce_log, &config);
        let spatial_direct = SpatialCounts::compute(&ds.system, &ds.sim.ce_log, &faults_direct);
        let (faults, spatial) = run_batch(&ds.system, &ds.sim.ce_log, &config);
        assert_eq!(faults, faults_direct);
        assert_eq!(spatial, spatial_direct);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for (len, shards) in [(0, 4), (1, 4), (10, 3), (50, 8), (7, 7), (5, 100)] {
            let ranges = shard_ranges(len, shards);
            let mut expect = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, expect);
                assert!(end >= start);
                expect = end;
            }
            assert_eq!(expect, len, "ranges must cover 0..{len}");
            assert!(ranges.len() <= shards.max(1));
        }
    }

    #[test]
    fn stream_analyze_reports_and_matches_batch_analysis() {
        let (ds, guard) = written_dataset("stream-analyze");
        let report = stream_analyze(&guard.0, ds.system, &StreamOptions::default())
            .unwrap()
            .expect("no stop requested");
        let analysis = crate::pipeline::Analysis::run(ds.system, ds.sim.ce_log.clone());
        assert_eq!(report.ces, analysis.total_errors());
        assert_eq!(report.faults, analysis.faults);
        assert_eq!(report.spatial, analysis.spatial);
        assert_eq!(report.skipped, 0);
        assert!(report.hets > 0);
        assert!(report.sensor_readings > 0);
    }

    #[test]
    fn stop_after_requires_checkpoint_path() {
        let (ds, guard) = written_dataset("stream-stopnopath");
        let opts = StreamOptions {
            stop_after: Some(10),
            ..StreamOptions::default()
        };
        match stream_analyze(&guard.0, ds.system, &opts) {
            Err(StreamError::Checkpoint { .. }) => {}
            other => panic!("expected checkpoint error, got {:?}", other.is_ok()),
        }
    }
}

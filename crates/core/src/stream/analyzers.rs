//! The five analysis layers as incremental [`Analyzer`]s, plus the
//! composite the engine drives.
//!
//! Each analyzer is a fold with an explicit state type; what bounds the
//! engine's memory is exactly the sum of these states:
//!
//! * [`CoalesceAnalyzer`] — per-`(node, slot, rank)` footprint lists
//!   (32 B per CE instead of the 48 B record, and no record vector);
//! * [`SpatialAnalyzer`] — fixed-shape count tables;
//! * [`HetAnalyzer`] — per-(kind, day) counters;
//! * [`TempCorrAnalyzer`] — per-(sensor, month) running means and
//!   per-month CE counts;
//! * [`PredictAnalyzer`] — per-rank feature state and fired flags,
//!   mirroring `astra_predict::replay` record for record.
//!
//! Merge semantics: coalesce appends footprints in shard order and
//! spatial/het/tempcorr counts add exactly, so those merges are
//! bit-exact for contiguous shards at any worker count. The tempcorr
//! *sum* is an `f64`, so its merge is last-ulp-sensitive to shard
//! boundaries — it is exact only for the shipped paths, which never
//! shard it (the engine consumes sequentially; `run_batch` folds only
//! coalesce + spatial). Predict state cannot merge mid-rank at all, so
//! [`PredictAnalyzer::merge`] insists on rank-disjoint shards.

use std::collections::{BTreeMap, HashMap};

use astra_logs::HetKind;
use astra_predict::{default_predictors, Alert, DimmKey, FeatureState, PredictConfig, Predictor};
use astra_topology::{SensorId, SystemConfig};

use crate::coalesce::{classify_groups, CeFootprint, CoalesceConfig, GroupKey, ObservedFault};
use crate::experiments::fig4::{self, Fig4};
use crate::experiments::fig5::{self, Fig5};
use crate::spatial::SpatialCounts;

use super::{Analyzer, MemEvent};

/// Streaming coalescer: the batch `coalesce()` split into its fold
/// (footprint grouping) and its finish (`classify_groups` — shared code,
/// which is what makes stream and batch faults provably identical).
pub struct CoalesceAnalyzer {
    pub(crate) config: CoalesceConfig,
    /// Footprints per device population, in stream (= file) order.
    pub(crate) groups: HashMap<GroupKey, Vec<CeFootprint>>,
    /// CEs consumed — one footprint each, so also the footprint count.
    pub(crate) ces: u64,
}

impl CoalesceAnalyzer {
    /// Empty state.
    pub fn new(config: CoalesceConfig) -> Self {
        CoalesceAnalyzer {
            config,
            groups: HashMap::new(),
            ces: 0,
        }
    }
}

impl Analyzer for CoalesceAnalyzer {
    type Report = Vec<ObservedFault>;

    fn consume(&mut self, ev: &MemEvent) {
        if let MemEvent::Ce { seq, rec } = ev {
            self.groups
                .entry((rec.node.0, rec.slot.index() as u8, rec.rank.0))
                .or_default()
                .push(CeFootprint::of_record(*seq as u32, rec));
            self.ces += 1;
        }
    }

    fn merge(mut a: Self, b: Self) -> Self {
        for (key, mut feet) in b.groups {
            a.groups.entry(key).or_default().append(&mut feet);
        }
        a.ces += b.ces;
        a
    }

    fn snapshot(&self) -> Vec<ObservedFault> {
        // Borrowed views: classification never clones the footprint state.
        let views: Vec<(GroupKey, &[CeFootprint])> = self
            .groups
            .iter()
            .map(|(key, feet)| (*key, feet.as_slice()))
            .collect();
        classify_groups(views, self.ces as usize, &self.config)
    }
}

/// Streaming error-side spatial counts. Fault-side counts belong to the
/// snapshot (faults only exist after classification), so the composite
/// absorbs them there.
pub struct SpatialAnalyzer {
    pub(crate) system: SystemConfig,
    pub(crate) counts: SpatialCounts,
}

impl SpatialAnalyzer {
    /// Zeroed tables shaped for `system`.
    pub fn new(system: SystemConfig) -> Self {
        SpatialAnalyzer {
            counts: SpatialCounts::empty(&system),
            system,
        }
    }
}

impl Analyzer for SpatialAnalyzer {
    type Report = SpatialCounts;

    fn consume(&mut self, ev: &MemEvent) {
        if let MemEvent::Ce { rec, .. } = ev {
            self.counts.absorb_record(&self.system, rec);
        }
    }

    fn merge(a: Self, b: Self) -> Self {
        SpatialAnalyzer {
            system: a.system,
            counts: a.counts.merge(b.counts),
        }
    }

    fn snapshot(&self) -> SpatialCounts {
        self.counts.clone()
    }
}

/// Streaming HET aggregation: totals, memory-DUE count, and the
/// per-(kind, day) series behind Fig 15.
#[derive(Default)]
pub struct HetAnalyzer {
    /// `(kind index in HetKind::ALL, day index)` → events.
    pub(crate) daily: BTreeMap<(u8, i64), u64>,
    pub(crate) total: u64,
    pub(crate) memory_dues: u64,
}

/// Position of a kind in [`HetKind::ALL`] (dense, checkpoint-stable).
pub(crate) fn het_kind_index(kind: HetKind) -> u8 {
    HetKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every kind appears in ALL") as u8
}

impl HetAnalyzer {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Analyzer for HetAnalyzer {
    type Report = HetReport;

    fn consume(&mut self, ev: &MemEvent) {
        if let MemEvent::Het { rec, .. } = ev {
            self.total += 1;
            if rec.kind.is_memory_due() {
                self.memory_dues += 1;
            }
            *self
                .daily
                .entry((het_kind_index(rec.kind), rec.time.day_index()))
                .or_insert(0) += 1;
        }
    }

    fn merge(mut a: Self, b: Self) -> Self {
        a.total += b.total;
        a.memory_dues += b.memory_dues;
        for (key, n) in b.daily {
            *a.daily.entry(key).or_insert(0) += n;
        }
        a
    }

    fn snapshot(&self) -> HetReport {
        HetReport {
            total: self.total,
            memory_dues: self.memory_dues,
            daily: self
                .daily
                .iter()
                .map(|(&(kind, day), &n)| (HetKind::ALL[kind as usize], day, n))
                .collect(),
        }
    }
}

/// What [`HetAnalyzer`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HetReport {
    /// All HET events seen.
    pub total: u64,
    /// The memory-DUE subset.
    pub memory_dues: u64,
    /// `(kind, day index, count)`, sorted by kind then day.
    pub daily: Vec<(HetKind, i64, u64)>,
}

/// Streaming temperature/utilization aggregation: per-(sensor, month)
/// running means over valid readings, and the monthly CE series they
/// correlate against.
#[derive(Default)]
pub struct TempCorrAnalyzer {
    /// `(sensor index, month index)` → (sum of readings, sample count).
    pub(crate) sensor_months: BTreeMap<(u8, i64), (f64, u64)>,
    /// Month index → CE count.
    pub(crate) monthly_ces: BTreeMap<i64, u64>,
}

impl TempCorrAnalyzer {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Analyzer for TempCorrAnalyzer {
    type Report = (Vec<SensorMonth>, Vec<(i64, u64)>);

    fn consume(&mut self, ev: &MemEvent) {
        match ev {
            MemEvent::Sensor { rec, .. } => {
                if let Some(v) = rec.value {
                    let slot = self
                        .sensor_months
                        .entry((rec.sensor.index() as u8, rec.time.month_index()))
                        .or_insert((0.0, 0));
                    slot.0 += v;
                    slot.1 += 1;
                }
            }
            MemEvent::Ce { rec, .. } => {
                *self.monthly_ces.entry(rec.time.month_index()).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    fn merge(mut a: Self, b: Self) -> Self {
        // f64 sum: exact only when shards do not split a (sensor, month)
        // cell, last-ulp-sensitive otherwise — see the module docs. No
        // shipped path shards this analyzer.
        for (key, (sum, n)) in b.sensor_months {
            let slot = a.sensor_months.entry(key).or_insert((0.0, 0));
            slot.0 += sum;
            slot.1 += n;
        }
        for (month, n) in b.monthly_ces {
            *a.monthly_ces.entry(month).or_insert(0) += n;
        }
        a
    }

    fn snapshot(&self) -> (Vec<SensorMonth>, Vec<(i64, u64)>) {
        let sensors = self
            .sensor_months
            .iter()
            .map(|(&(sensor, month), &(sum, n))| SensorMonth {
                sensor: SensorId::from_index(sensor).expect("index came from a SensorId"),
                month,
                mean: sum / n as f64,
                samples: n,
            })
            .collect();
        let ces = self.monthly_ces.iter().map(|(&m, &n)| (m, n)).collect();
        (sensors, ces)
    }
}

/// One sensor's monthly mean across the machine excerpt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorMonth {
    /// Which sensor.
    pub sensor: SensorId,
    /// Month index (Jan 2019 = 0).
    pub month: i64,
    /// Mean of the valid readings.
    pub mean: f64,
    /// Valid readings averaged.
    pub samples: u64,
}

/// Per-rank state mirrored from `astra_predict`'s `replay_group`.
pub(crate) struct RankTrack {
    pub(crate) state: FeatureState,
    pub(crate) fired: Vec<bool>,
}

/// Streaming prediction: replays the CE substream of the merged event
/// stream through the predictors exactly as `astra_predict::replay` does
/// — including the detail that once every predictor has fired for a
/// rank, that rank's feature state stops updating (replay `break`s out
/// of the substream), which keeps checkpointed state byte-identical to
/// the batch replay's.
pub struct PredictAnalyzer {
    pub(crate) config: PredictConfig,
    pub(crate) predictors: Vec<Box<dyn Predictor>>,
    pub(crate) ranks: BTreeMap<(u32, u8, u8), RankTrack>,
    pub(crate) alerts: Vec<Alert>,
}

impl PredictAnalyzer {
    /// Empty state over a predictor bank.
    pub fn new(config: PredictConfig, predictors: Vec<Box<dyn Predictor>>) -> Self {
        PredictAnalyzer {
            config,
            predictors,
            ranks: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }
}

impl Analyzer for PredictAnalyzer {
    type Report = Vec<Alert>;

    fn consume(&mut self, ev: &MemEvent) {
        let MemEvent::Ce { rec, .. } = ev else {
            return;
        };
        let key = DimmKey::of_record(rec).sort_key();
        let track = match self.ranks.entry(key) {
            std::collections::btree_map::Entry::Vacant(slot) => slot.insert(RankTrack {
                state: FeatureState::new(
                    rec,
                    self.config.half_life_minutes,
                    self.config.pin_bank_threshold,
                    self.config.bank_dispersion_cols,
                ),
                fired: vec![false; self.predictors.len()],
            }),
            std::collections::btree_map::Entry::Occupied(slot) => {
                let track = slot.into_mut();
                // Existing rank: replay stops consuming a substream once
                // all predictors fired; mirror that by freezing the state.
                if track.fired.iter().all(|&f| f) {
                    return;
                }
                track.state.update(rec);
                track
            }
        };
        let snapshot = track.state.snapshot(rec.time);
        for (pi, predictor) in self.predictors.iter().enumerate() {
            if track.fired[pi] {
                continue;
            }
            let score = predictor.score(&snapshot);
            if score >= predictor.threshold() {
                track.fired[pi] = true;
                self.alerts.push(Alert {
                    time: rec.time,
                    key: DimmKey::of_record(rec),
                    predictor: predictor.name(),
                    score,
                    features: snapshot,
                });
            }
        }
    }

    fn merge(mut a: Self, b: Self) -> Self {
        for (key, track) in b.ranks {
            let clash = a.ranks.insert(key, track);
            assert!(
                clash.is_none(),
                "predict shards must be rank-disjoint: feature state cannot merge mid-rank"
            );
        }
        a.alerts.extend(b.alerts);
        a
    }

    fn snapshot(&self) -> Vec<Alert> {
        let mut alerts = self.alerts.clone();
        // Same total order as replay(): at most one alert per
        // (rank, predictor), so the key below is unique.
        alerts.sort_by(|a, b| {
            (a.time, a.key.sort_key(), a.predictor).cmp(&(b.time, b.key.sort_key(), b.predictor))
        });
        alerts
    }
}

/// The coalesce + spatial pair the batch adapter folds — the part of the
/// composite whose merge is bit-exact for contiguous record shards.
pub struct BatchAnalyzer {
    pub(crate) coalesce: CoalesceAnalyzer,
    pub(crate) spatial: SpatialAnalyzer,
}

impl BatchAnalyzer {
    /// Empty state.
    pub fn new(system: SystemConfig, config: CoalesceConfig) -> Self {
        BatchAnalyzer {
            coalesce: CoalesceAnalyzer::new(config),
            spatial: SpatialAnalyzer::new(system),
        }
    }
}

impl Analyzer for BatchAnalyzer {
    type Report = (Vec<ObservedFault>, SpatialCounts);

    fn consume(&mut self, ev: &MemEvent) {
        self.coalesce.consume(ev);
        self.spatial.consume(ev);
    }

    fn merge(a: Self, b: Self) -> Self {
        BatchAnalyzer {
            coalesce: Analyzer::merge(a.coalesce, b.coalesce),
            spatial: Analyzer::merge(a.spatial, b.spatial),
        }
    }

    fn snapshot(&self) -> (Vec<ObservedFault>, SpatialCounts) {
        let faults = {
            let _span = astra_obs::span("pipeline.coalesce");
            self.coalesce.snapshot()
        };
        let spatial = {
            let _span = astra_obs::span("pipeline.spatial");
            let mut counts = self.spatial.snapshot();
            for fault in &faults {
                counts.absorb_fault(&self.spatial.system, fault);
            }
            counts
        };
        (faults, spatial)
    }
}

/// Every analysis layer behind one [`Analyzer`]: what
/// [`stream_analyze`](super::stream_analyze) drives and what checkpoints
/// serialize.
pub struct StreamAnalyzer {
    pub(crate) system: SystemConfig,
    pub(crate) coalesce: CoalesceAnalyzer,
    pub(crate) spatial: SpatialAnalyzer,
    pub(crate) het: HetAnalyzer,
    pub(crate) tempcorr: TempCorrAnalyzer,
    pub(crate) predict: PredictAnalyzer,
    /// Events consumed per source (indices follow `EventSource`).
    pub(crate) counts: [u64; 4],
}

impl StreamAnalyzer {
    /// Empty state with the default predictor bank.
    pub fn new(system: SystemConfig, coalesce: CoalesceConfig, predict: PredictConfig) -> Self {
        StreamAnalyzer {
            system,
            coalesce: CoalesceAnalyzer::new(coalesce),
            spatial: SpatialAnalyzer::new(system),
            het: HetAnalyzer::new(),
            tempcorr: TempCorrAnalyzer::new(),
            predict: PredictAnalyzer::new(predict, default_predictors()),
            counts: [0; 4],
        }
    }

    /// Accounted working set: what the analyzer states pin in memory.
    /// The coalesce footprints dominate (one 32-byte footprint per CE);
    /// the batch path's equivalent gauge (`pipeline.workingset_bytes`)
    /// accounts 48 bytes per CE for the record vector plus the fault
    /// list, which is the comparison the `bench pipeline` stream stage
    /// reports. Predict state is estimated flat per rank (its sets are
    /// private to `astra-predict`).
    pub fn accounted_bytes(&self) -> usize {
        use std::mem::size_of;
        let coalesce = self.coalesce.ces as usize * size_of::<CeFootprint>()
            + self.coalesce.groups.len() * (size_of::<GroupKey>() + size_of::<Vec<CeFootprint>>());
        let spatial = spatial_bytes(&self.spatial.counts);
        let het = self.het.daily.len() * (size_of::<(u8, i64)>() + size_of::<u64>());
        let tempcorr = self.tempcorr.sensor_months.len()
            * (size_of::<(u8, i64)>() + size_of::<(f64, u64)>())
            + self.tempcorr.monthly_ces.len() * (2 * size_of::<u64>());
        let predict = self.predict.ranks.len() * (size_of::<FeatureState>() + 512)
            + self.predict.alerts.len() * size_of::<Alert>();
        coalesce + spatial + het + tempcorr + predict
    }
}

/// Heap accounting for the spatial tables (fixed-shape vectors plus the
/// frequency tables' distinct keys).
fn spatial_bytes(c: &SpatialCounts) -> usize {
    use std::mem::size_of;
    size_of::<SpatialCounts>()
        + (c.errors_by_bank.len()
            + c.faults_by_bank.len()
            + c.errors_by_col.len()
            + c.faults_by_col.len()
            + c.errors_by_rack.len()
            + c.faults_by_rack.len())
            * size_of::<u64>()
        + c.faults_by_rack_region.len() * size_of::<[u64; 3]>()
        + (c.errors_by_node.distinct()
            + c.faults_by_node.distinct()
            + c.faults_by_bit.distinct()
            + c.faults_by_addr.distinct())
            * 2
            * size_of::<u64>()
}

impl Analyzer for StreamAnalyzer {
    type Report = StreamReport;

    fn consume(&mut self, ev: &MemEvent) {
        self.coalesce.consume(ev);
        self.spatial.consume(ev);
        self.het.consume(ev);
        self.tempcorr.consume(ev);
        self.predict.consume(ev);
        self.counts[ev.source().index()] += 1;
    }

    fn merge(a: Self, b: Self) -> Self {
        let mut counts = a.counts;
        for (x, y) in counts.iter_mut().zip(b.counts) {
            *x += y;
        }
        StreamAnalyzer {
            system: a.system,
            coalesce: Analyzer::merge(a.coalesce, b.coalesce),
            spatial: Analyzer::merge(a.spatial, b.spatial),
            het: Analyzer::merge(a.het, b.het),
            tempcorr: Analyzer::merge(a.tempcorr, b.tempcorr),
            predict: Analyzer::merge(a.predict, b.predict),
            counts,
        }
    }

    fn snapshot(&self) -> StreamReport {
        let faults = self.coalesce.snapshot();
        let mut spatial = self.spatial.snapshot();
        for fault in &faults {
            spatial.absorb_fault(&self.system, fault);
        }

        // Record-index → month lookup for Fig 4, rebuilt from the
        // footprints (every CE left exactly one, keyed by stream index).
        // i32 halves the table next to the batch path's record vector.
        let mut months = vec![0i32; self.coalesce.ces as usize];
        for feet in self.coalesce.groups.values() {
            for f in feet {
                months[f.idx as usize] = f.time.month_index() as i32;
            }
        }
        let fig4 = fig4::compute_with(
            months.iter().map(|&m| i64::from(m)),
            &faults,
            |i| i64::from(months[i as usize]),
            astra_util::time::study_span(),
        );
        let fig5 = fig5::compute_from_parts(&self.system, &spatial);
        let (sensor_months, monthly_ces) = self.tempcorr.snapshot();

        StreamReport {
            system: self.system,
            ces: self.counts[0],
            hets: self.counts[1],
            inventories: self.counts[2],
            sensor_readings: self.counts[3],
            skipped: 0,
            faults,
            spatial,
            fig4,
            fig5,
            het: self.het.snapshot(),
            sensor_months,
            monthly_ces,
            alerts: self.predict.snapshot(),
        }
    }
}

/// Everything one pass produced.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Machine configuration the stream was analyzed against.
    pub system: SystemConfig,
    /// CE events consumed.
    pub ces: u64,
    /// HET events consumed.
    pub hets: u64,
    /// Inventory (replacement) events consumed.
    pub inventories: u64,
    /// Sensor readings consumed.
    pub sensor_readings: u64,
    /// Unparseable lines skipped across all logs.
    pub skipped: u64,
    /// Coalesced faults (identical to the batch analyzer's).
    pub faults: Vec<ObservedFault>,
    /// Spatial aggregations, fault side included.
    pub spatial: SpatialCounts,
    /// Fig 4 — monthly series and errors-per-fault violin.
    pub fig4: Fig4,
    /// Fig 5 — per-node concentration.
    pub fig5: Fig5,
    /// HET aggregation.
    pub het: HetReport,
    /// Per-(sensor, month) mean readings.
    pub sensor_months: Vec<SensorMonth>,
    /// Per-month CE counts.
    pub monthly_ces: Vec<(i64, u64)>,
    /// Online UE-risk alerts (identical to `astra_predict::replay`'s).
    pub alerts: Vec<Alert>,
}

impl StreamReport {
    /// Total CE count.
    pub fn total_errors(&self) -> u64 {
        self.ces
    }

    /// Total coalesced-fault count.
    pub fn total_faults(&self) -> u64 {
        self.faults.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce;
    use crate::pipeline::Dataset;
    use astra_predict::replay;

    fn ce_events(ds: &Dataset) -> Vec<MemEvent> {
        ds.sim
            .ce_log
            .iter()
            .enumerate()
            .map(|(i, rec)| MemEvent::Ce {
                seq: i as u64,
                rec: *rec,
            })
            .collect()
    }

    #[test]
    fn coalesce_analyzer_matches_batch_coalesce() {
        let ds = Dataset::generate(1, 42);
        let config = CoalesceConfig::default();
        let mut a = CoalesceAnalyzer::new(config);
        for ev in ce_events(&ds) {
            a.consume(&ev);
        }
        assert_eq!(a.snapshot(), coalesce(&ds.sim.ce_log, &config));
    }

    #[test]
    fn coalesce_merge_of_contiguous_shards_is_exact() {
        let ds = Dataset::generate(1, 9);
        let config = CoalesceConfig::default();
        let events = ce_events(&ds);
        let mid = events.len() / 2;
        let mut left = CoalesceAnalyzer::new(config);
        let mut right = CoalesceAnalyzer::new(config);
        for ev in &events[..mid] {
            left.consume(ev);
        }
        for ev in &events[mid..] {
            right.consume(ev);
        }
        let merged = Analyzer::merge(left, right);
        assert_eq!(merged.snapshot(), coalesce(&ds.sim.ce_log, &config));
    }

    #[test]
    fn predict_analyzer_matches_replay() {
        let ds = Dataset::generate(1, 42);
        let config = PredictConfig::default();
        let mut a = PredictAnalyzer::new(config.clone(), default_predictors());
        for ev in ce_events(&ds) {
            a.consume(&ev);
        }
        let expected = replay(&ds.sim.ce_log, &config, &default_predictors());
        assert_eq!(a.snapshot(), expected);
    }

    #[test]
    fn het_analyzer_counts_kinds_and_dues() {
        let ds = Dataset::generate(1, 42);
        let mut a = HetAnalyzer::new();
        for (i, rec) in ds.sim.het_log.iter().enumerate() {
            a.consume(&MemEvent::Het {
                seq: i as u64,
                rec: *rec,
            });
        }
        let report = a.snapshot();
        assert_eq!(report.total, ds.sim.het_log.len() as u64);
        let dues = ds
            .sim
            .het_log
            .iter()
            .filter(|r| r.kind.is_memory_due())
            .count() as u64;
        assert_eq!(report.memory_dues, dues);
        assert_eq!(
            report.daily.iter().map(|(_, _, n)| n).sum::<u64>(),
            report.total
        );
        // Sorted by (kind position, day).
        let keys: Vec<(u8, i64)> = report
            .daily
            .iter()
            .map(|&(k, d, _)| (het_kind_index(k), d))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tempcorr_analyzer_means_and_monthly_ces() {
        let ds = Dataset::generate(1, 42);
        let mut a = TempCorrAnalyzer::new();
        for ev in ce_events(&ds) {
            a.consume(&ev);
        }
        for (i, rec) in ds.sensor_excerpt().iter().enumerate() {
            a.consume(&MemEvent::Sensor {
                seq: i as u64,
                rec: *rec,
            });
        }
        let (sensors, monthly) = a.snapshot();
        assert!(!sensors.is_empty());
        assert!(sensors.iter().all(|s| s.samples > 0 && s.mean.is_finite()));
        assert_eq!(
            monthly.iter().map(|(_, n)| n).sum::<u64>(),
            ds.sim.ce_log.len() as u64
        );
    }

    #[test]
    fn non_ce_events_do_not_disturb_coalesce_or_predict() {
        let ds = Dataset::generate(1, 3);
        let config = CoalesceConfig::default();
        let mut plain = CoalesceAnalyzer::new(config);
        let mut interleaved = CoalesceAnalyzer::new(config);
        for ev in ce_events(&ds) {
            plain.consume(&ev);
            interleaved.consume(&ev);
            if let Some(het) = ds.sim.het_log.first() {
                interleaved.consume(&MemEvent::Het { seq: 0, rec: *het });
            }
        }
        assert_eq!(plain.snapshot(), interleaved.snapshot());
    }
}

//! Checkpoint serialization for the incremental engine.
//!
//! A checkpoint is a line-oriented UTF-8 snapshot of the full
//! [`StreamAnalyzer`] state plus the resume point — the number of parsed
//! records consumed from each log. Resuming replays each file and drops
//! that many parsed records; unparseable-line skipping is deterministic,
//! so the resumed stream continues byte-for-byte where the checkpointed
//! run stopped, and a resumed `stream-analyze` produces output identical
//! to an uninterrupted one (the golden equivalence test enforces this).
//!
//! Format notes:
//!
//! * every `f64` travels as its IEEE-754 bit pattern in hex
//!   (`{:016x}` of `to_bits`) — decimal round-tripping would break
//!   bit-identity;
//! * configuration knobs (coalesce thresholds, predictor half-life) are
//!   deliberately *not* stored: they travel with the run configuration,
//!   and mixing them silently would corrupt results. What is guarded is
//!   the machine shape (`racks`), which changes the meaning of every
//!   node id;
//! * every section (meta, coalesce, spatial, het, temp, predict) ends
//!   with a `crc NAME HEX` line — the CRC-32 of the section's lines — so
//!   a torn or bit-flipped checkpoint is detected as *which section* is
//!   damaged, not silently resumed from;
//! * writes go to a `.tmp` sibling then rename, so a crash mid-write
//!   never leaves a truncated checkpoint under the configured name; a
//!   failed write removes its orphaned `.tmp`. On resume, [`read`]
//!   considers both the configured file and a leftover `.tmp` sibling
//!   and salvages the freshest fully-intact snapshot of the two;
//! * the predict `fired` flags serialize as a bitmask indexed by the
//!   default predictor bank's order;
//! * with `--checkpoint-format binary` the rendered snapshot is wrapped
//!   in the `astra-binlog` container (kind 5): the same text, chunked
//!   into CRC-framed blocks, so a torn or bit-flipped checkpoint is
//!   rejected by a CRC sweep before any line parsing. Readers sniff the
//!   magic bytes per candidate file, so the two formats interoperate —
//!   a binary `.tmp` can be salvaged next to a text primary and vice
//!   versa.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use astra_logs::binfmt::{self, LogFormat};
use astra_logs::HetKind;
use astra_predict::{Alert, DimmKey, FeatureState, FeatureStateDump, FeatureVector};
use astra_topology::{DimmSlot, NodeId, RankId, SystemConfig};
use astra_util::Minute;

use super::analyzers::{RankTrack, StreamAnalyzer};
use super::{StreamError, StreamOptions};
use crate::spatial::SpatialCounts;

/// First line of every checkpoint. v2 added the per-section CRC lines.
const HEADER: &str = "astra-stream-checkpoint v2";

fn cerr(path: &Path, detail: impl Into<String>) -> StreamError {
    StreamError::Checkpoint {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn list<T: std::fmt::Display>(items: impl IntoIterator<Item = T>) -> String {
    let joined = items
        .into_iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",");
    if joined.is_empty() {
        "-".into()
    } else {
        joined
    }
}

/// Bytes of rendered checkpoint text per binary container block.
const BINARY_CHUNK_BYTES: usize = 1 << 20;

/// Wrap rendered checkpoint text in the `astra-binlog` container: a
/// kind-5 header declaring the block count, then the text in CRC-framed
/// chunks of at most [`BINARY_CHUNK_BYTES`].
fn encode_binary(text: &str) -> Vec<u8> {
    let chunks: Vec<&[u8]> = text.as_bytes().chunks(BINARY_CHUNK_BYTES).collect();
    let mut out = Vec::from(binfmt::header_bytes(
        binfmt::KIND_CHECKPOINT,
        chunks.len() as u64,
    ));
    for chunk in chunks {
        binfmt::append_block(&mut out, chunk);
    }
    out
}

/// Serialize the analyzer state and resume point to `path`, atomically,
/// in the requested on-disk format. A failed write (or rename) removes
/// its `.tmp` sibling so a transient error never leaves an orphaned
/// partial file for a later resume to trip over.
pub(crate) fn write(
    path: &Path,
    analyzer: &StreamAnalyzer,
    consumed: &[u64; 4],
    format: LogFormat,
) -> Result<(), StreamError> {
    let text = render(analyzer, consumed);
    let bytes = match format {
        LogFormat::Text => text.into_bytes(),
        LogFormat::Binary => encode_binary(&text),
    };
    let tmp = tmp_sibling(path);
    if let Err(e) = std::fs::write(&tmp, bytes) {
        std::fs::remove_file(&tmp).ok();
        return Err(cerr(path, format!("write failed: {e}")));
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        cerr(path, format!("rename failed: {e}"))
    })
}

/// Whether `path` could resume anything: the checkpoint itself or a
/// `.tmp` sibling a dying writer left behind (salvage handles picking).
pub(crate) fn resume_candidate_exists(path: &Path) -> bool {
    path.exists() || tmp_sibling(path).exists()
}

/// The `.tmp` sibling used for atomic writes (and probed by salvage).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Close out one checksummed section: append its lines to `out` followed
/// by the `crc NAME HEX` trailer covering exactly those lines.
fn seal_section(out: &mut String, name: &str, body: String) {
    out.push_str(&body);
    let _ = writeln!(out, "crc {name} {:08x}", astra_util::crc32(body.as_bytes()));
}

fn render(analyzer: &StreamAnalyzer, consumed: &[u64; 4]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");

    let mut body = String::new();
    let w = &mut body;
    let _ = writeln!(w, "racks {}", analyzer.system.racks);
    let _ = writeln!(
        w,
        "consumed {} {} {} {}",
        consumed[0], consumed[1], consumed[2], consumed[3]
    );
    seal_section(&mut out, "meta", std::mem::take(&mut body));

    // Coalesce: every footprint, grouped, groups in key order.
    let w = &mut body;
    let _ = writeln!(w, "coalesce.ces {}", analyzer.coalesce.ces);
    let mut keys: Vec<_> = analyzer.coalesce.groups.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let feet = &analyzer.coalesce.groups[&key];
        let _ = writeln!(w, "group {} {} {} {}", key.0, key.1, key.2, feet.len());
        for f in feet {
            let _ = writeln!(
                w,
                "f {} {} {} {} {} {}",
                f.idx, f.time.0, f.bank, f.col, f.bit_pos, f.addr
            );
        }
    }
    seal_section(&mut out, "coalesce", std::mem::take(&mut body));

    render_spatial(&mut body, &analyzer.spatial.counts);
    seal_section(&mut out, "spatial", std::mem::take(&mut body));

    let w = &mut body;
    let _ = writeln!(
        w,
        "het.totals {} {}",
        analyzer.het.total, analyzer.het.memory_dues
    );
    for (&(kind, day), &n) in &analyzer.het.daily {
        let _ = writeln!(w, "het {kind} {day} {n}");
    }
    seal_section(&mut out, "het", std::mem::take(&mut body));

    let w = &mut body;
    for (&(sensor, month), &(sum, n)) in &analyzer.tempcorr.sensor_months {
        let _ = writeln!(w, "temp.sensor {sensor} {month} {} {n}", hex(sum));
    }
    for (&month, &n) in &analyzer.tempcorr.monthly_ces {
        let _ = writeln!(w, "temp.ce {month} {n}");
    }
    seal_section(&mut out, "temp", std::mem::take(&mut body));

    let w = &mut body;
    for (&(node, slot, rank), track) in &analyzer.predict.ranks {
        let mut mask = 0u64;
        for (i, &f) in track.fired.iter().enumerate() {
            if f {
                mask |= 1 << i;
            }
        }
        let d = track.state.dump();
        let _ = writeln!(
            w,
            "predict.rank {node} {slot} {rank} {mask} {} {} {} {} {} {} {} {} {} {}",
            d.first_ce.0,
            d.last_ce.0,
            d.total_ces,
            hex(d.leaky),
            u8::from(d.addrs_saturated),
            d.escalation_rung,
            list(&d.banks),
            list(&d.cols),
            list(&d.addrs),
            list(
                d.lanes
                    .iter()
                    .map(|&(lane, n, m)| format!("{lane}:{n}:{m}"))
            ),
        );
    }
    for a in &analyzer.predict.alerts {
        let fv = &a.features;
        let _ = writeln!(
            w,
            "predict.alert {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            a.time.0,
            a.key.node.0,
            a.key.slot.index(),
            a.key.rank.0,
            a.predictor,
            hex(a.score),
            hex(fv.window_ces),
            fv.total_ces,
            fv.distinct_banks,
            fv.distinct_cols,
            fv.distinct_addrs,
            fv.distinct_lanes,
            hex(fv.dominant_lane_share),
            fv.minutes_since_first,
            fv.escalation.rung(),
        );
    }
    seal_section(&mut out, "predict", body);

    let _ = writeln!(out, "end");
    out
}

fn render_spatial(w: &mut String, c: &SpatialCounts) {
    fn line(w: &mut String, name: &str, values: &[u64]) {
        let _ = writeln!(
            w,
            "spatial.{name} {}",
            values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    line(w, "errors_by_socket", &c.errors_by_socket);
    line(w, "faults_by_socket", &c.faults_by_socket);
    line(w, "errors_by_bank", &c.errors_by_bank);
    line(w, "faults_by_bank", &c.faults_by_bank);
    line(w, "errors_by_col", &c.errors_by_col);
    line(w, "faults_by_col", &c.faults_by_col);
    line(w, "errors_by_rank", &c.errors_by_rank);
    line(w, "faults_by_rank", &c.faults_by_rank);
    line(w, "errors_by_slot", &c.errors_by_slot);
    line(w, "faults_by_slot", &c.faults_by_slot);
    line(w, "errors_by_rack", &c.errors_by_rack);
    line(w, "faults_by_rack", &c.faults_by_rack);
    line(w, "errors_by_region", &c.errors_by_region);
    line(w, "faults_by_region", &c.faults_by_region);
    let flat: Vec<u64> = c
        .faults_by_rack_region
        .iter()
        .flat_map(|row| row.iter().copied())
        .collect();
    line(w, "faults_by_rack_region", &flat);
    for (name, table) in [
        ("errors_by_node", &c.errors_by_node),
        ("faults_by_node", &c.faults_by_node),
        ("faults_by_bit", &c.faults_by_bit),
        ("faults_by_addr", &c.faults_by_addr),
    ] {
        let _ = writeln!(
            w,
            "spatial.{name} {}",
            list(table.iter().map(|(k, v)| format!("{k}:{v}")))
        );
    }
}

/// Deserialize a checkpoint into a restored analyzer plus the per-source
/// resume point, salvaging when necessary. `system` and the configs in
/// `opts` must be the ones the checkpointed run used; the machine shape
/// is verified, the configs are the caller's contract.
///
/// Salvage: both `path` and a leftover `path.tmp` sibling (a write the
/// process died during, or after, without completing the rename) are
/// candidates. Each is validated in full — header, per-section CRCs, end
/// marker — and the *freshest intact* snapshot (largest consumed-record
/// sum) wins. Resuming from an older-but-intact checkpoint is always
/// sound (replay is deterministic); resuming from a torn one never is,
/// so a damaged candidate is only an error when no intact one exists.
/// Any salvage decision (torn file skipped, or `.tmp` outrunning the
/// configured file) bumps the `checkpoint.salvaged` counter and says so
/// on stderr.
pub(crate) fn read(
    path: &Path,
    system: &SystemConfig,
    opts: &StreamOptions,
) -> Result<(StreamAnalyzer, [u64; 4]), StreamError> {
    let primary = read_one(path, system, opts);
    let tmp = tmp_sibling(path);
    if !tmp.exists() {
        return primary;
    }
    let secondary = read_one(&tmp, system, opts);
    let salvaged = |which: &Path, state: (StreamAnalyzer, [u64; 4]), note: &str| {
        astra_obs::global().counter("checkpoint.salvaged").add(1);
        eprintln!(
            "note: salvaged checkpoint from {} ({note})",
            which.display()
        );
        Ok(state)
    };
    match (primary, secondary) {
        (Ok(p), Ok(s)) => {
            // Both intact: freshest wins; ties keep the configured file.
            if s.1.iter().sum::<u64>() > p.1.iter().sum::<u64>() {
                salvaged(&tmp, s, "newer than the configured file")
            } else {
                Ok(p)
            }
        }
        (Ok(p), Err(e)) => {
            eprintln!("note: ignoring torn checkpoint {}: {e}", tmp.display());
            astra_obs::global().counter("checkpoint.salvaged").add(1);
            Ok(p)
        }
        (Err(e), Ok(s)) => {
            eprintln!("note: checkpoint {} is damaged: {e}", path.display());
            salvaged(&tmp, s, "configured file is damaged")
        }
        (Err(e), Err(_)) => Err(e),
    }
}

/// Read and fully validate a single checkpoint file, sniffing the format
/// by magic bytes: a binary candidate must pass the container CRC sweep
/// before its reassembled text is parsed, so a torn or flipped binary
/// checkpoint is rejected exactly like a torn text one.
fn read_one(
    path: &Path,
    system: &SystemConfig,
    opts: &StreamOptions,
) -> Result<(StreamAnalyzer, [u64; 4]), StreamError> {
    let data = std::fs::read(path).map_err(|e| cerr(path, format!("unreadable: {e}")))?;
    let text = if binfmt::sniff_is_binlog(&data) {
        let (declared, payloads) = binfmt::read_blocks(&data, binfmt::KIND_CHECKPOINT)
            .map_err(|detail| cerr(path, detail))?;
        if payloads.len() as u64 != declared {
            return Err(cerr(
                path,
                format!(
                    "truncated-block: {} of {declared} declared blocks present",
                    payloads.len()
                ),
            ));
        }
        let mut bytes = Vec::with_capacity(payloads.iter().map(|p| p.len()).sum());
        for payload in payloads {
            bytes.extend_from_slice(payload);
        }
        String::from_utf8(bytes).map_err(|e| cerr(path, format!("not UTF-8: {e}")))?
    } else {
        String::from_utf8(data).map_err(|e| cerr(path, format!("not UTF-8: {e}")))?
    };
    parse(path, &text, system, opts)
}

fn parse(
    path: &Path,
    text: &str,
    system: &SystemConfig,
    opts: &StreamOptions,
) -> Result<(StreamAnalyzer, [u64; 4]), StreamError> {
    let mut analyzer = StreamAnalyzer::new(*system, opts.coalesce, opts.predict.clone());
    let mut consumed: Option<[u64; 4]> = None;
    let mut saw_racks = false;
    let mut saw_end = false;
    // Lines of the current section, accumulated verbatim until its
    // `crc NAME HEX` trailer verifies them.
    let mut section = String::new();

    let mut lines = text.lines().enumerate();
    let bad = |no: usize, detail: String| cerr(path, format!("line {}: {detail}", no + 1));

    match lines.next() {
        Some((_, line)) if line == HEADER => {}
        _ => {
            return Err(cerr(
                path,
                format!("not a checkpoint (expected {HEADER:?})"),
            ))
        }
    }

    while let Some((no, line)) = lines.next() {
        let mut toks = line.split_whitespace();
        let Some(tag) = toks.next() else { continue };
        if tag == "crc" {
            let name = toks
                .next()
                .ok_or_else(|| bad(no, "crc line missing section name".into()))?;
            let stored = toks
                .next()
                .and_then(|t| u32::from_str_radix(t, 16).ok())
                .ok_or_else(|| bad(no, format!("bad crc value for section {name}")))?;
            let computed = astra_util::crc32(section.as_bytes());
            if computed != stored {
                return Err(bad(
                    no,
                    format!(
                        "section {name} CRC mismatch (stored {stored:08x}, computed {computed:08x})"
                    ),
                ));
            }
            section.clear();
            continue;
        }
        if tag == "end" {
            if !section.is_empty() {
                return Err(bad(
                    no,
                    "lines before end not covered by a section CRC".into(),
                ));
            }
        } else {
            section.push_str(line);
            section.push('\n');
        }
        match tag {
            "racks" => {
                let racks = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing racks".into()))?;
                if racks != u64::from(system.racks) {
                    return Err(bad(
                        no,
                        format!(
                            "checkpoint is for a {racks}-rack machine, this run is {} racks",
                            system.racks
                        ),
                    ));
                }
                saw_racks = true;
            }
            "consumed" => {
                consumed = Some([
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing ce".into()))?,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing het".into()))?,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing inventory".into()))?,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing sensors".into()))?,
                ]);
            }
            "coalesce.ces" => {
                analyzer.coalesce.ces = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing ce count".into()))?
            }
            "group" => {
                let key = (
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing node".into()))?
                        as u32,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing slot".into()))?
                        as u8,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing rank".into()))?
                        as u8,
                );
                let n = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing footprint count".into()))?;
                let mut feet = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let Some((fno, fline)) = lines.next() else {
                        return Err(bad(no, "truncated group".into()));
                    };
                    section.push_str(fline);
                    section.push('\n');
                    let mut ft = fline.split_whitespace();
                    if ft.next() != Some("f") {
                        return Err(bad(fno, "expected footprint line".into()));
                    }
                    feet.push(crate::coalesce::CeFootprint {
                        idx: parse_tok::<u32>(&mut ft)
                            .ok_or_else(|| bad(fno, "bad footprint idx".into()))?,
                        time: Minute(
                            parse_tok::<i64>(&mut ft)
                                .ok_or_else(|| bad(fno, "bad footprint time".into()))?,
                        ),
                        bank: parse_tok::<u16>(&mut ft)
                            .ok_or_else(|| bad(fno, "bad footprint bank".into()))?,
                        col: parse_tok::<u16>(&mut ft)
                            .ok_or_else(|| bad(fno, "bad footprint col".into()))?,
                        bit_pos: parse_tok::<u16>(&mut ft)
                            .ok_or_else(|| bad(fno, "bad footprint bit_pos".into()))?,
                        addr: parse_tok::<u64>(&mut ft)
                            .ok_or_else(|| bad(fno, "bad footprint addr".into()))?,
                    });
                }
                analyzer.coalesce.groups.insert(key, feet);
            }
            "het.totals" => {
                analyzer.het.total = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing total".into()))?;
                analyzer.het.memory_dues = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing memory dues".into()))?;
            }
            "het" => {
                let kind = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing kind index".into()))?
                    as u8;
                if usize::from(kind) >= HetKind::ALL.len() {
                    return Err(bad(no, format!("unknown HET kind index {kind}")));
                }
                let day = parse_tok::<i64>(&mut toks).ok_or_else(|| bad(no, "bad day".into()))?;
                analyzer.het.daily.insert(
                    (kind, day),
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing count".into()))?,
                );
            }
            "temp.sensor" => {
                let sensor = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing sensor index".into()))?
                    as u8;
                let month =
                    parse_tok::<i64>(&mut toks).ok_or_else(|| bad(no, "bad month".into()))?;
                let sum = parse_hex(&mut toks).ok_or_else(|| bad(no, "bad sum".into()))?;
                analyzer.tempcorr.sensor_months.insert(
                    (sensor, month),
                    (
                        sum,
                        parse_tok::<u64>(&mut toks)
                            .ok_or_else(|| bad(no, "bad or missing sample count".into()))?,
                    ),
                );
            }
            "temp.ce" => {
                let month =
                    parse_tok::<i64>(&mut toks).ok_or_else(|| bad(no, "bad month".into()))?;
                analyzer.tempcorr.monthly_ces.insert(
                    month,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing count".into()))?,
                );
            }
            "predict.rank" => {
                let key = (
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing node".into()))?
                        as u32,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing slot".into()))?
                        as u8,
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing rank".into()))?
                        as u8,
                );
                let mask = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing fired mask".into()))?;
                let dump = FeatureStateDump {
                    first_ce: Minute(
                        parse_tok::<i64>(&mut toks)
                            .ok_or_else(|| bad(no, "bad first_ce".into()))?,
                    ),
                    last_ce: Minute(
                        parse_tok::<i64>(&mut toks).ok_or_else(|| bad(no, "bad last_ce".into()))?,
                    ),
                    total_ces: parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing total_ces".into()))?,
                    leaky: parse_hex(&mut toks).ok_or_else(|| bad(no, "bad leaky".into()))?,
                    addrs_saturated: parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing addrs_saturated".into()))?
                        != 0,
                    escalation_rung: parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing escalation rung".into()))?
                        as u8,
                    banks: parse_list(&mut toks).ok_or_else(|| bad(no, "bad banks".into()))?,
                    cols: parse_list(&mut toks).ok_or_else(|| bad(no, "bad cols".into()))?,
                    addrs: parse_list(&mut toks).ok_or_else(|| bad(no, "bad addrs".into()))?,
                    lanes: parse_lanes(&mut toks).ok_or_else(|| bad(no, "bad lanes".into()))?,
                };
                let state = FeatureState::restore(
                    &dump,
                    opts.predict.half_life_minutes,
                    opts.predict.pin_bank_threshold,
                    opts.predict.bank_dispersion_cols,
                )
                .ok_or_else(|| bad(no, "unrestorable feature state".into()))?;
                let fired = (0..analyzer.predict.predictors.len())
                    .map(|i| mask & (1 << i) != 0)
                    .collect();
                analyzer
                    .predict
                    .ranks
                    .insert(key, RankTrack { state, fired });
            }
            "predict.alert" => {
                let time =
                    Minute(parse_tok::<i64>(&mut toks).ok_or_else(|| bad(no, "bad time".into()))?);
                let node = NodeId(
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing node".into()))?
                        as u32,
                );
                let slot = DimmSlot::from_index(
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing slot".into()))?
                        as u8,
                )
                .ok_or_else(|| bad(no, "bad slot".into()))?;
                let rank = RankId(
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing rank".into()))?
                        as u8,
                );
                let name = toks
                    .next()
                    .ok_or_else(|| bad(no, "missing predictor name".into()))?;
                let predictor = analyzer
                    .predict
                    .predictors
                    .iter()
                    .find(|p| p.name() == name)
                    .map(|p| p.name())
                    .ok_or_else(|| bad(no, format!("unknown predictor {name:?}")))?;
                let score = parse_hex(&mut toks).ok_or_else(|| bad(no, "bad score".into()))?;
                let window_ces =
                    parse_hex(&mut toks).ok_or_else(|| bad(no, "bad window_ces".into()))?;
                let total_ces = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing total_ces".into()))?;
                let distinct_banks = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing distinct_banks".into()))?
                    as u32;
                let distinct_cols = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing distinct_cols".into()))?
                    as u32;
                let distinct_addrs = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing distinct_addrs".into()))?
                    as u32;
                let distinct_lanes = parse_tok::<u64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad or missing distinct_lanes".into()))?
                    as u32;
                let dominant_lane_share =
                    parse_hex(&mut toks).ok_or_else(|| bad(no, "bad lane share".into()))?;
                let minutes_since_first = parse_tok::<i64>(&mut toks)
                    .ok_or_else(|| bad(no, "bad minutes_since_first".into()))?;
                let escalation = astra_predict::EscalationLevel::from_rung(
                    parse_tok::<u64>(&mut toks)
                        .ok_or_else(|| bad(no, "bad or missing escalation rung".into()))?
                        as u8,
                )
                .ok_or_else(|| bad(no, "bad escalation rung".into()))?;
                analyzer.predict.alerts.push(Alert {
                    time,
                    key: DimmKey { node, slot, rank },
                    predictor,
                    score,
                    features: FeatureVector {
                        window_ces,
                        total_ces,
                        distinct_banks,
                        distinct_cols,
                        distinct_addrs,
                        distinct_lanes,
                        dominant_lane_share,
                        minutes_since_first,
                        escalation,
                    },
                });
            }
            "end" => {
                saw_end = true;
                break;
            }
            _ if tag.starts_with("spatial.") => {
                parse_spatial(&analyzer.system, &mut analyzer.spatial.counts, tag, toks)
                    .map_err(|detail| bad(no, detail))?;
            }
            other => return Err(bad(no, format!("unknown section {other:?}"))),
        }
    }

    if !saw_racks {
        return Err(cerr(path, "missing racks guard"));
    }
    if !saw_end {
        return Err(cerr(path, "truncated checkpoint (no end marker)"));
    }
    let consumed = consumed.ok_or_else(|| cerr(path, "missing consumed counts"))?;
    analyzer.counts = consumed;
    Ok((analyzer, consumed))
}

fn parse_tok<T: FromStr>(toks: &mut std::str::SplitWhitespace<'_>) -> Option<T> {
    toks.next()?.parse().ok()
}

fn parse_hex(toks: &mut std::str::SplitWhitespace<'_>) -> Option<f64> {
    let bits = u64::from_str_radix(toks.next()?, 16).ok()?;
    Some(f64::from_bits(bits))
}

fn parse_list<T: FromStr>(toks: &mut std::str::SplitWhitespace<'_>) -> Option<Vec<T>> {
    let tok = toks.next()?;
    if tok == "-" {
        return Some(Vec::new());
    }
    tok.split(',').map(|item| item.parse().ok()).collect()
}

fn parse_lanes(toks: &mut std::str::SplitWhitespace<'_>) -> Option<Vec<(u16, u64, u16)>> {
    let tok = toks.next()?;
    if tok == "-" {
        return Some(Vec::new());
    }
    tok.split(',')
        .map(|item| {
            let mut parts = item.split(':');
            let lane = parts.next()?.parse().ok()?;
            let count = parts.next()?.parse().ok()?;
            let mask = parts.next()?.parse().ok()?;
            parts.next().is_none().then_some((lane, count, mask))
        })
        .collect()
}

fn parse_spatial(
    system: &SystemConfig,
    c: &mut SpatialCounts,
    tag: &str,
    toks: std::str::SplitWhitespace<'_>,
) -> Result<(), String> {
    let field = tag.strip_prefix("spatial.").expect("caller matched prefix");
    let fill = |dst: &mut [u64], toks: std::str::SplitWhitespace<'_>| -> Result<(), String> {
        let values: Option<Vec<u64>> = toks.map(|t| t.parse().ok()).collect();
        let values = values.ok_or_else(|| format!("bad {field} values"))?;
        if values.len() != dst.len() {
            return Err(format!(
                "{field} has {} values, machine shape needs {}",
                values.len(),
                dst.len()
            ));
        }
        dst.copy_from_slice(&values);
        Ok(())
    };
    match field {
        "errors_by_socket" => fill(&mut c.errors_by_socket, toks),
        "faults_by_socket" => fill(&mut c.faults_by_socket, toks),
        "errors_by_bank" => fill(&mut c.errors_by_bank, toks),
        "faults_by_bank" => fill(&mut c.faults_by_bank, toks),
        "errors_by_col" => fill(&mut c.errors_by_col, toks),
        "faults_by_col" => fill(&mut c.faults_by_col, toks),
        "errors_by_rank" => fill(&mut c.errors_by_rank, toks),
        "faults_by_rank" => fill(&mut c.faults_by_rank, toks),
        "errors_by_slot" => fill(&mut c.errors_by_slot, toks),
        "faults_by_slot" => fill(&mut c.faults_by_slot, toks),
        "errors_by_rack" => fill(&mut c.errors_by_rack, toks),
        "faults_by_rack" => fill(&mut c.faults_by_rack, toks),
        "errors_by_region" => fill(&mut c.errors_by_region, toks),
        "faults_by_region" => fill(&mut c.faults_by_region, toks),
        "faults_by_rack_region" => {
            let mut flat = vec![0u64; system.racks as usize * 3];
            fill(&mut flat, toks)?;
            for (row, chunk) in c.faults_by_rack_region.iter_mut().zip(flat.chunks(3)) {
                row.copy_from_slice(chunk);
            }
            Ok(())
        }
        "errors_by_node" | "faults_by_node" | "faults_by_bit" | "faults_by_addr" => {
            let table = match field {
                "errors_by_node" => &mut c.errors_by_node,
                "faults_by_node" => &mut c.faults_by_node,
                "faults_by_bit" => &mut c.faults_by_bit,
                _ => &mut c.faults_by_addr,
            };
            let mut toks = toks;
            let tok = toks.next().ok_or_else(|| format!("missing {field}"))?;
            if tok != "-" {
                for pair in tok.split(',') {
                    let (k, v) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("bad {field} pair {pair:?}"))?;
                    let k: u64 = k.parse().map_err(|_| format!("bad {field} key"))?;
                    let v: u64 = v.parse().map_err(|_| format!("bad {field} count"))?;
                    table.add(k, v);
                }
            }
            Ok(())
        }
        other => Err(format!("unknown spatial field {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Dataset;
    use crate::stream::{Analyzer, MemEvent};

    fn analyzer_with_state() -> (StreamAnalyzer, SystemConfig) {
        let ds = Dataset::generate(1, 42);
        let opts = StreamOptions::default();
        let mut a = StreamAnalyzer::new(ds.system, opts.coalesce, opts.predict.clone());
        for (i, rec) in ds.sim.ce_log.iter().enumerate() {
            a.consume(&MemEvent::Ce {
                seq: i as u64,
                rec: *rec,
            });
        }
        for (i, rec) in ds.sim.het_log.iter().enumerate() {
            a.consume(&MemEvent::Het {
                seq: i as u64,
                rec: *rec,
            });
        }
        for (i, rec) in ds.sensor_excerpt().iter().enumerate() {
            a.consume(&MemEvent::Sensor {
                seq: i as u64,
                rec: *rec,
            });
        }
        (a, ds.system)
    }

    #[test]
    fn render_parse_render_is_identity() {
        let (analyzer, system) = analyzer_with_state();
        let consumed = analyzer.counts;
        let text = render(&analyzer, &consumed);
        let (restored, consumed2) =
            parse(Path::new("test"), &text, &system, &StreamOptions::default()).unwrap();
        assert_eq!(consumed2, consumed);
        // Byte-identical reserialization covers every serialized field.
        assert_eq!(render(&restored, &consumed2), text);
    }

    #[test]
    fn restored_analyzer_produces_identical_report() {
        let (analyzer, system) = analyzer_with_state();
        let text = render(&analyzer, &analyzer.counts);
        let (restored, _) =
            parse(Path::new("test"), &text, &system, &StreamOptions::default()).unwrap();
        let a = analyzer.snapshot();
        let b = restored.snapshot();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.spatial, b.spatial);
        assert_eq!(a.het, b.het);
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.sensor_months, b.sensor_months);
        assert_eq!(a.monthly_ces, b.monthly_ces);
        assert_eq!(a.ces, b.ces);
    }

    #[test]
    fn rack_mismatch_names_both_shapes() {
        let (analyzer, _) = analyzer_with_state();
        let text = render(&analyzer, &analyzer.counts);
        let wrong = SystemConfig::scaled(2);
        let err = match parse(Path::new("test"), &text, &wrong, &StreamOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("rack mismatch accepted"),
        };
        let msg = err.to_string();
        // The operator needs both sides of the mismatch to fix the flag.
        assert!(
            msg.contains("1-rack") && msg.contains("2 racks"),
            "error must name the checkpoint's shape and the run's: {msg}"
        );
    }

    #[test]
    fn section_crc_mismatch_is_detected_and_named() {
        let (analyzer, system) = analyzer_with_state();
        let text = render(&analyzer, &analyzer.counts);
        // Corrupt one digit inside the coalesce section without touching
        // line structure: the stored CRC no longer matches.
        let victim = text
            .lines()
            .find(|l| l.starts_with("coalesce.ces "))
            .expect("coalesce.ces line");
        let flipped = if victim.ends_with('0') {
            victim.replacen(" ", " 1", 1)
        } else {
            format!("{}0", victim)
        };
        let corrupted = text.replacen(victim, &flipped, 1);
        let err = match parse(
            Path::new("test"),
            &corrupted,
            &system,
            &StreamOptions::default(),
        ) {
            Err(e) => e,
            Ok(_) => panic!("corrupted section accepted"),
        };
        let msg = err.to_string();
        assert!(
            msg.contains("CRC mismatch") && msg.contains("coalesce"),
            "error must name the damaged section: {msg}"
        );
    }

    struct TempDirGuard(PathBuf);

    impl TempDirGuard {
        fn new(tag: &str) -> TempDirGuard {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "astra-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDirGuard(dir)
        }
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn salvage_ignores_torn_tmp_and_resumes_primary() {
        let (analyzer, system) = analyzer_with_state();
        let guard = TempDirGuard::new("ckpt-torn");
        let path = guard.0.join("ck.txt");
        write(&path, &analyzer, &analyzer.counts, LogFormat::Text).unwrap();
        // A crash mid-write leaves a truncated next snapshot in `.tmp`.
        let next = render(&analyzer, &[analyzer.counts[0] + 500, 0, 0, 0]);
        std::fs::write(path.with_extension("txt.tmp"), &next[..next.len() / 2]).unwrap();
        let (_, consumed) = read(&path, &system, &StreamOptions::default()).unwrap();
        assert_eq!(consumed, analyzer.counts, "must resume the intact file");
    }

    #[test]
    fn salvage_prefers_fresher_intact_tmp() {
        let (analyzer, system) = analyzer_with_state();
        let guard = TempDirGuard::new("ckpt-fresh");
        let path = guard.0.join("ck.txt");
        write(&path, &analyzer, &analyzer.counts, LogFormat::Text).unwrap();
        // The rename never happened, but the `.tmp` snapshot is complete
        // and strictly further along: it is the one to resume.
        let mut newer = analyzer.counts;
        newer[0] += 500;
        std::fs::write(path.with_extension("txt.tmp"), render(&analyzer, &newer)).unwrap();
        let (_, consumed) = read(&path, &system, &StreamOptions::default()).unwrap();
        assert_eq!(consumed, newer, "must salvage the fresher snapshot");
    }

    #[test]
    fn salvage_recovers_from_damaged_primary() {
        let (analyzer, system) = analyzer_with_state();
        let guard = TempDirGuard::new("ckpt-damaged");
        let path = guard.0.join("ck.txt");
        let text = render(&analyzer, &analyzer.counts);
        std::fs::write(&path, &text[..text.len() / 3]).unwrap();
        std::fs::write(path.with_extension("txt.tmp"), &text).unwrap();
        let (_, consumed) = read(&path, &system, &StreamOptions::default()).unwrap();
        assert_eq!(consumed, analyzer.counts);
        // Both torn: the primary's error surfaces.
        std::fs::write(path.with_extension("txt.tmp"), &text[..10]).unwrap();
        assert!(read(&path, &system, &StreamOptions::default()).is_err());
    }

    #[test]
    fn binary_checkpoint_roundtrips_and_rejects_damage() {
        let (analyzer, system) = analyzer_with_state();
        let guard = TempDirGuard::new("ckpt-bin");
        let path = guard.0.join("ck.bin");
        write(&path, &analyzer, &analyzer.counts, LogFormat::Binary).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(binfmt::sniff_is_binlog(&data));
        let (restored, consumed) = read(&path, &system, &StreamOptions::default()).unwrap();
        assert_eq!(consumed, analyzer.counts);
        // Same state as the text encoding would restore, byte for byte.
        assert_eq!(
            render(&restored, &consumed),
            render(&analyzer, &analyzer.counts)
        );
        // One flipped payload bit: the CRC sweep rejects the candidate.
        let mut torn = data.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x08;
        std::fs::write(&path, &torn).unwrap();
        let err = match read(&path, &system, &StreamOptions::default()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("flipped binary checkpoint accepted"),
        };
        assert!(err.contains("block-crc"), "unexpected error: {err}");
        // A truncated tail is rejected the same way.
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        assert!(read(&path, &system, &StreamOptions::default()).is_err());
    }

    #[test]
    fn salvage_works_across_formats() {
        // A fresher intact *binary* `.tmp` next to a text primary: the
        // per-candidate magic sniff lets salvage pick it.
        let (analyzer, system) = analyzer_with_state();
        let guard = TempDirGuard::new("ckpt-mixed");
        let path = guard.0.join("ck.txt");
        write(&path, &analyzer, &analyzer.counts, LogFormat::Text).unwrap();
        let mut newer = analyzer.counts;
        newer[0] += 500;
        std::fs::write(
            path.with_extension("txt.tmp"),
            encode_binary(&render(&analyzer, &newer)),
        )
        .unwrap();
        let (_, consumed) = read(&path, &system, &StreamOptions::default()).unwrap();
        assert_eq!(consumed, newer, "must salvage the fresher binary snapshot");
    }

    #[test]
    fn truncated_and_foreign_files_are_rejected() {
        let system = SystemConfig::scaled(1);
        let opts = StreamOptions::default();
        assert!(parse(Path::new("t"), "not a checkpoint\n", &system, &opts).is_err());
        let (analyzer, _) = analyzer_with_state();
        let text = render(&analyzer, &analyzer.counts);
        let cut = &text[..text.len() - 10];
        assert!(parse(Path::new("t"), cut, &system, &opts).is_err());
    }
}

//! Fault-tolerant sharded fleet analysis: supervised worker
//! subprocesses over a partitioned rack range.
//!
//! Astra's 2,592 nodes fit one process; the hyperscaler fleets this
//! repo also models do not, and at fleet scale individual workers *do*
//! crash, hang, and get OOM-killed mid-run. This module exploits the
//! [`Analyzer`](crate::stream::Analyzer) `consume`/`merge`/`snapshot`
//! contract to push the analysis across OS processes without giving up
//! a byte of determinism, and wraps the spawning in the supervision
//! layer a real fleet needs:
//!
//! * [`partition_racks`] splits the rack range into contiguous
//!   half-open shards (a total, disjoint, order-preserving cover —
//!   property-tested in `tests/shard_partition.rs`);
//! * the worker (`astra-mem` re-invoked in the hidden `shard-worker`
//!   mode, entry point [`run_worker`]) streams the full event sequence
//!   but consumes only its racks' events, then serializes its analyzer
//!   state with the checkpoint-v2 container (per-section CRCs, atomic
//!   `.tmp` + rename);
//! * the supervisor ([`supervise`]) drives every shard through a small
//!   state machine — spawn → deadline → retry/backoff → degrade — and
//!   merges the surviving snapshots left-to-right.
//!
//! Merge exactness: every event names one node, every node lives in one
//! rack, and every rack lands in exactly one shard, so the per-shard
//! coalesce footprint lists are disjoint and stay in file order, the
//! spatial/HET integer counts add exactly, and predict state is
//! rank-disjoint by construction. The merged snapshot — and therefore
//! the `shard-analyze` stdout — is byte-identical to single-process
//! `analyze` at any shard count (`tests/shard_supervisor.rs` enforces
//! 1/2/4/8).
//!
//! Failure policy mirrors the ingest layer's strict/`--lenient` split:
//! strict (default) aborts the whole run when any shard exhausts its
//! retries, with no partial stdout; `--degraded` merges the survivors,
//! prints an explicit `DEGRADED: missing racks R..R'` banner per hole,
//! and exits with the distinct "partial" code 3.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use astra_logs::binfmt::LogFormat;
use astra_logs::chaos::{self, ShardChaos, ShardFaultMode};
use astra_topology::{NodeId, SystemConfig};
use astra_util::{DetRng, StreamKey};

use crate::stream::{checkpoint, Analyzer, EventStream, MemEvent, StreamAnalyzer, StreamOptions};

/// Hidden subcommand name the supervisor re-invokes the binary with.
/// Any front end embedding [`crate::cli::main`] (the `astra-mem` shim,
/// the bench driver) must route an argv starting with this token back
/// into `cli::main` for `shard-analyze` to work from that binary.
pub const WORKER_COMMAND: &str = "shard-worker";

/// Split `racks` racks into at most `shards` contiguous half-open
/// ranges `[lo, hi)`.
///
/// The result is a total, disjoint, order-preserving cover of
/// `0..racks`: ranges are nonempty, consecutive (`hi == next lo`), and
/// earlier ranges are never shorter than later ones (the remainder
/// spreads left-to-right). `shards` is clamped to `1..=racks`, so
/// asking for more workers than racks yields one single-rack shard per
/// rack and never an empty worker.
pub fn partition_racks(racks: u32, shards: u32) -> Vec<(u32, u32)> {
    let shards = shards.clamp(1, racks.max(1));
    let base = racks / shards;
    let rem = racks % shards;
    let mut out = Vec::with_capacity(shards as usize);
    let mut start = 0;
    for i in 0..shards {
        let size = base + u32::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Everything a worker needs to analyze its rack slice.
pub struct WorkerConfig {
    /// Log directory under analysis (the full dataset; the worker
    /// filters, it does not re-partition files).
    pub dir: PathBuf,
    /// Machine shape, resolved from the manifest or flags — must match
    /// the supervisor's resolution, which is why the supervisor passes
    /// its provenance flags through verbatim.
    pub system: SystemConfig,
    /// First rack (inclusive) this worker consumes.
    pub rack_lo: u32,
    /// Last rack (exclusive) this worker consumes.
    pub rack_hi: u32,
    /// Which shard this is — used only to address chaos injection and
    /// error messages; the analysis depends only on the rack range.
    pub shard_index: u32,
    /// Where the serialized analyzer snapshot goes (written atomically
    /// via the checkpoint-v2 `.tmp` + rename).
    pub snapshot_out: PathBuf,
    /// Stream knobs shared with the supervisor: ingest policy,
    /// coalesce/predict configs, and the snapshot container encoding
    /// (`checkpoint_format`).
    pub stream: StreamOptions,
}

/// Worker entry point: stream every event, consume the rack slice,
/// serialize the analyzer state. stdout stays silent — the snapshot
/// file is the only product, so the supervisor's stdout can be
/// byte-identical to `analyze`.
pub fn run_worker(cfg: &WorkerConfig) -> Result<(), String> {
    let injected = ShardChaos::from_env()?;
    let mut analyzer =
        StreamAnalyzer::new(cfg.system, cfg.stream.coalesce, cfg.stream.predict.clone());
    let mut source =
        EventStream::open_with(&cfg.dir, [0; 4], cfg.stream.ingest).map_err(|e| e.to_string())?;
    let nodes_per_rack = cfg.system.nodes_per_rack();
    let mut in_range = 0u64;
    while let Some(ev) = source.next_event().map_err(|e| e.to_string())? {
        let rack = event_node(&ev).rack(nodes_per_rack).0;
        if rack < cfg.rack_lo || rack >= cfg.rack_hi {
            continue;
        }
        analyzer.consume(&ev);
        in_range += 1;
        if let Some(chaos) = &injected {
            if chaos.should_trip(cfg.shard_index, in_range) {
                trip(chaos.mode, &analyzer, cfg)?;
            }
        }
    }
    checkpoint::write(
        &cfg.snapshot_out,
        &analyzer,
        &analyzer.counts,
        cfg.stream.checkpoint_format,
    )
    .map_err(|e| e.to_string())
}

/// Act out an armed shard fault at the trip point.
fn trip(mode: ShardFaultMode, analyzer: &StreamAnalyzer, cfg: &WorkerConfig) -> Result<(), String> {
    match mode {
        // A hard death mid-stream: no exit handler, no snapshot.
        ShardFaultMode::Abort => std::process::abort(),
        // Wedged, not dead — only the supervisor's deadline ends this.
        ShardFaultMode::Hang => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        // Exit 0 with a half-written snapshot: the success path the
        // supervisor must *not* trust without validating the CRCs.
        ShardFaultMode::TornSnapshot => {
            checkpoint::write(
                &cfg.snapshot_out,
                analyzer,
                &analyzer.counts,
                cfg.stream.checkpoint_format,
            )
            .map_err(|e| e.to_string())?;
            let len = std::fs::metadata(&cfg.snapshot_out)
                .map(|m| m.len())
                .map_err(|e| e.to_string())?;
            chaos::truncate_file(&cfg.snapshot_out, len / 2).map_err(|e| e.to_string())?;
            std::process::exit(0);
        }
    }
}

/// The node an event is attributed to — the shard routing key.
fn event_node(ev: &MemEvent) -> NodeId {
    match ev {
        MemEvent::Ce { rec, .. } => rec.node,
        MemEvent::Het { rec, .. } => rec.node,
        MemEvent::Inventory { rec, .. } => rec.node,
        MemEvent::Sensor { rec, .. } => rec.node,
    }
}

/// Supervisor policy and plumbing for one `shard-analyze` run.
pub struct SupervisorConfig {
    /// Log directory under analysis.
    pub dir: PathBuf,
    /// Machine shape (resolved from the manifest or flags).
    pub system: SystemConfig,
    /// Requested worker count (clamped to the rack count).
    pub shards: u32,
    /// Per-attempt wall-clock deadline; a worker past it is killed,
    /// reaped, and treated as a failed attempt.
    pub timeout: Duration,
    /// Retries per shard after its first attempt.
    pub retries: u32,
    /// After retries are exhausted: `false` (strict, the default)
    /// aborts the run; `true` merges the survivors and reports the
    /// holes.
    pub degraded: bool,
    /// Seed for retry-backoff jitter (deterministic, in-tree RNG).
    pub seed: u64,
    /// Provenance and ingest flags replayed verbatim to every worker
    /// (`--profile`, `--racks`, `--seed`, `--lenient`, ...) so workers
    /// resolve the dataset exactly as the supervisor did.
    pub worker_flags: Vec<String>,
    /// Stream knobs used both to deserialize worker snapshots and as
    /// the worker-side analyzer configuration.
    pub stream: StreamOptions,
}

/// What a supervised run produced.
pub struct Supervised {
    /// The merged analyzer — complete on a clean run, survivors-only
    /// in degraded mode (footprint indices compacted so `snapshot()`
    /// is well-formed either way).
    pub analyzer: StreamAnalyzer,
    /// Rack ranges whose shard stayed dead (empty on a clean run;
    /// nonempty only in degraded mode).
    pub missing: Vec<(u32, u32)>,
}

/// Per-shard supervision states: spawn → deadline → retry/backoff →
/// done or dead.
enum SlotState {
    /// Waiting to (re)spawn — initially immediately, after a failure
    /// for the backoff interval.
    Waiting { until: Instant },
    /// A live attempt with its reaping deadline.
    Running { child: Child, started: Instant },
    /// Snapshot validated and loaded.
    Done(Box<StreamAnalyzer>),
    /// Retries exhausted (or crash loop detected).
    Dead { reason: String },
}

struct ShardSlot {
    range: (u32, u32),
    snapshot: PathBuf,
    /// Attempts started so far.
    attempts: u32,
    /// Consecutive failures faster than [`CRASH_LOOP_WINDOW`].
    fast_failures: u32,
    rng: DetRng,
    state: SlotState,
}

/// Failures faster than this look like a crash loop, not a transient.
const CRASH_LOOP_WINDOW: Duration = Duration::from_millis(250);
/// Consecutive fast failures before giving up early.
const CRASH_LOOP_LIMIT: u32 = 3;
/// First retry backoff; doubles per failure, plus up to 50 % jitter.
const BACKOFF_BASE_MS: u64 = 50;
/// Backoff ceiling.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Owns the shard slots and the scratch directory; dropping it kills
/// and reaps every live worker and removes the scratch tree, so an
/// early strict-mode return (or a panic) never leaks a child process
/// or a half-written snapshot.
struct ShardSet {
    slots: Vec<ShardSlot>,
    workdir: PathBuf,
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let SlotState::Running { child, .. } = &mut slot.state {
                if child.kill().is_ok() {
                    astra_obs::global().counter("shard.killed").inc();
                }
                let _ = child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.workdir);
    }
}

/// Run the full supervised sharded analysis: partition, spawn, retry,
/// merge. Strict mode returns `Err` as soon as any shard is declared
/// dead; degraded mode always returns `Ok`, with the holes listed in
/// [`Supervised::missing`].
pub fn supervise(cfg: &SupervisorConfig) -> Result<Supervised, String> {
    let exe = std::env::current_exe().map_err(|e| format!("locating own executable: {e}"))?;
    let ranges = partition_racks(cfg.system.racks, cfg.shards);
    let workdir = scratch_dir()?;
    let obs = astra_obs::global();

    let mut set = ShardSet {
        slots: ranges
            .iter()
            .enumerate()
            .map(|(i, &range)| ShardSlot {
                range,
                snapshot: workdir.join(format!("shard-{i}.snap")),
                attempts: 0,
                fast_failures: 0,
                rng: DetRng::for_stream(cfg.seed, StreamKey::root("shard-backoff").with(i as u64)),
                state: SlotState::Waiting {
                    until: Instant::now(),
                },
            })
            .collect(),
        workdir,
    };

    loop {
        let now = Instant::now();
        let mut settled = true;
        for (index, slot) in set.slots.iter_mut().enumerate() {
            match &mut slot.state {
                SlotState::Done(_) | SlotState::Dead { .. } => continue,
                SlotState::Waiting { until } => {
                    settled = false;
                    if now >= *until {
                        let child = spawn_worker(&exe, cfg, index as u32, slot)?;
                        slot.attempts += 1;
                        obs.counter("shard.spawned").inc();
                        slot.state = SlotState::Running {
                            child,
                            started: now,
                        };
                    }
                }
                SlotState::Running { child, started } => {
                    settled = false;
                    let elapsed = started.elapsed();
                    let failure = match child.try_wait() {
                        Err(e) => Some(format!("waiting on worker: {e}")),
                        Ok(None) => {
                            if elapsed < cfg.timeout {
                                continue;
                            }
                            // Deadline passed: kill and reap, then
                            // account it exactly like a crash.
                            let _ = child.kill();
                            let _ = child.wait();
                            obs.counter("shard.timeouts").inc();
                            obs.counter("shard.killed").inc();
                            Some(format!("timed out after {:?}", cfg.timeout))
                        }
                        Ok(Some(status)) if !status.success() => {
                            Some(format!("worker exited with {status}"))
                        }
                        Ok(Some(_)) => {
                            // Exit 0 is not success until the CRCs say
                            // so: a torn snapshot is a failed attempt.
                            match checkpoint::read(&slot.snapshot, &cfg.system, &cfg.stream) {
                                Ok((analyzer, _)) => {
                                    record_attempt(index, elapsed);
                                    slot.state = SlotState::Done(Box::new(analyzer));
                                    continue;
                                }
                                Err(e) => Some(format!("rejected snapshot: {e}")),
                            }
                        }
                    };
                    let reason = failure.expect("every non-continue arm failed");
                    record_attempt(index, elapsed);
                    slot.fast_failures = if elapsed < CRASH_LOOP_WINDOW {
                        slot.fast_failures + 1
                    } else {
                        0
                    };
                    let verdict = if slot.fast_failures >= CRASH_LOOP_LIMIT {
                        Some(format!(
                            "crash loop ({} fast failures in a row; last: {reason})",
                            slot.fast_failures
                        ))
                    } else if slot.attempts > cfg.retries {
                        Some(format!(
                            "retries exhausted after {} attempts (last: {reason})",
                            slot.attempts
                        ))
                    } else {
                        None
                    };
                    match verdict {
                        Some(reason) => slot.state = SlotState::Dead { reason },
                        None => {
                            obs.counter("shard.retries").inc();
                            let shift = slot.attempts.saturating_sub(1).min(10);
                            let base = (BACKOFF_BASE_MS << shift).min(BACKOFF_CAP_MS);
                            let delay = base + slot.rng.below(base / 2 + 1);
                            eprintln!(
                                "shard {index} (racks {}..{}): {reason}; retrying in {delay}ms",
                                slot.range.0, slot.range.1
                            );
                            slot.state = SlotState::Waiting {
                                until: Instant::now() + Duration::from_millis(delay),
                            };
                        }
                    }
                }
            }
            // Strict mode: one dead shard sinks the run, immediately.
            if let SlotState::Dead { reason } = &slot.state {
                eprintln!(
                    "shard {index} (racks {}..{}) is dead: {reason}",
                    slot.range.0, slot.range.1
                );
                if !cfg.degraded {
                    return Err(format!(
                        "shard {index} (racks {}..{}) failed permanently: {reason}\n\
                         hint: re-run with --degraded for partial results, or raise \
                         --retries/--timeout",
                        slot.range.0, slot.range.1
                    ));
                }
            }
        }
        if settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Left-to-right merge: shard i's racks all precede shard i+1's, so
    // folding in index order preserves the stream order the analyzers'
    // merge contract requires.
    let mut merged =
        StreamAnalyzer::new(cfg.system, cfg.stream.coalesce, cfg.stream.predict.clone());
    let mut missing = Vec::new();
    for slot in set.slots.drain(..) {
        match slot.state {
            SlotState::Done(analyzer) => merged = Analyzer::merge(merged, *analyzer),
            SlotState::Dead { .. } => {
                obs.counter("shard.degraded").inc();
                missing.push(slot.range);
            }
            SlotState::Waiting { .. } | SlotState::Running { .. } => {
                unreachable!("settled loop left a shard unfinished")
            }
        }
    }
    if !missing.is_empty() {
        // Holes leave the coalesce footprint indices sparse (they index
        // the *global* CE stream); renumber them densely, preserving
        // order, so `snapshot()`'s index-keyed tables stay in bounds.
        compact_footprint_indices(&mut merged);
    }
    Ok(Supervised {
        analyzer: merged,
        missing,
    })
}

/// One attempt's wall clock, recorded per shard and in aggregate (the
/// per-shard series is the `astra-obs` span equivalent for work that
/// happens in another process).
fn record_attempt(index: usize, elapsed: Duration) {
    let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let obs = astra_obs::global();
    obs.timing("time.shard.attempt").record(ns);
    obs.timing(&format!("time.shard.attempt/shard.{index}"))
        .record(ns);
}

/// Spawn one worker attempt. Stdout/stderr are discarded: the snapshot
/// file is the contract, and per-worker manifest notes repeated N times
/// would bury the supervisor's own diagnostics.
fn spawn_worker(
    exe: &Path,
    cfg: &SupervisorConfig,
    index: u32,
    slot: &ShardSlot,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.arg(WORKER_COMMAND)
        .arg(&cfg.dir)
        .arg("--rack-lo")
        .arg(slot.range.0.to_string())
        .arg("--rack-hi")
        .arg(slot.range.1.to_string())
        .arg("--shard-index")
        .arg(index.to_string())
        .arg("--snapshot-out")
        .arg(&slot.snapshot)
        .arg("--checkpoint-format")
        .arg(match cfg.stream.checkpoint_format {
            LogFormat::Text => "text",
            LogFormat::Binary => "binary",
        })
        .args(&cfg.worker_flags)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn()
        .map_err(|e| format!("spawning shard worker {index}: {e}"))
}

/// A unique scratch directory for this run's snapshots.
fn scratch_dir() -> Result<PathBuf, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "astra-shard-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Order-preserving dense renumbering of the coalesce footprint
/// indices.
///
/// Footprint `idx` values index the global CE stream; with whole shards
/// missing they are sparse, but `snapshot()` builds its record-index →
/// month table sized by the footprint *count*. Ranking every surviving
/// index keeps relative order (what classification and Fig 4 consume)
/// while making the set dense in `0..ces`. On a complete run the
/// mapping is the identity, but the supervisor only calls this for
/// degraded merges to keep the clean path byte-identical by
/// construction, not by argument.
fn compact_footprint_indices(analyzer: &mut StreamAnalyzer) {
    let mut idxs: Vec<u32> = analyzer
        .coalesce
        .groups
        .values()
        .flatten()
        .map(|f| f.idx)
        .collect();
    idxs.sort_unstable();
    for feet in analyzer.coalesce.groups.values_mut() {
        for f in feet.iter_mut() {
            f.idx = idxs
                .binary_search(&f.idx)
                .expect("every footprint index was just collected") as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::CoalesceConfig;
    use crate::pipeline::Dataset;
    use astra_predict::PredictConfig;

    #[test]
    fn partition_covers_exactly_without_overlap() {
        for racks in [1u32, 2, 3, 5, 36, 108, 360] {
            for shards in [1u32, 2, 3, 4, 7, 8, 64, 1000] {
                let ranges = partition_racks(racks, shards);
                assert!(!ranges.is_empty());
                assert!(ranges.len() as u32 <= racks.min(shards.max(1)));
                assert_eq!(ranges[0].0, 0, "starts at rack 0");
                assert_eq!(ranges.last().unwrap().1, racks, "ends at rack count");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "consecutive: {ranges:?}");
                }
                assert!(
                    ranges.iter().all(|(lo, hi)| lo < hi),
                    "nonempty: {ranges:?}"
                );
            }
        }
    }

    #[test]
    fn partition_handles_more_shards_than_racks() {
        let ranges = partition_racks(3, 8);
        assert_eq!(ranges, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(partition_racks(1, 1000), vec![(0, 1)]);
    }

    #[test]
    fn sharded_consumption_merges_to_the_unsharded_analyzer() {
        // In-process version of the subprocess contract: split the
        // event stream by rack, consume per shard, merge left-to-right,
        // and compare the snapshot against one-pass consumption.
        let ds = Dataset::generate(2, 42);
        let system = ds.system;
        let dir = {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "astra-shard-unit-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            ds.write_logs(&dir).unwrap();
            dir
        };
        let new =
            || StreamAnalyzer::new(system, CoalesceConfig::default(), PredictConfig::default());
        let consume_range = |lo: u32, hi: u32| {
            let mut a = new();
            let mut src = EventStream::open(&dir).unwrap();
            while let Some(ev) = src.next_event().unwrap() {
                let rack = event_node(&ev).rack(system.nodes_per_rack()).0;
                if rack >= lo && rack < hi {
                    a.consume(&ev);
                }
            }
            a
        };
        let whole = consume_range(0, system.racks);
        let mut merged = new();
        for (lo, hi) in partition_racks(system.racks, 2) {
            merged = Analyzer::merge(merged, consume_range(lo, hi));
        }
        assert_eq!(merged.counts, whole.counts);
        let a = merged.snapshot();
        let b = whole.snapshot();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.fig4.render(), b.fig4.render());
        assert_eq!(a.fig5.render(), b.fig5.render());
        assert_eq!(a.alerts, b.alerts);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_makes_a_degraded_merge_snapshot_safe() {
        let ds = Dataset::generate(2, 7);
        let system = ds.system;
        let mut partial =
            StreamAnalyzer::new(system, CoalesceConfig::default(), PredictConfig::default());
        // Consume only the second rack's CEs, keeping their *global*
        // stream indices — the exact shape of a merge missing shard 0.
        for (i, rec) in ds.sim.ce_log.iter().enumerate() {
            if rec.node.rack(system.nodes_per_rack()).0 == 1 {
                partial.consume(&MemEvent::Ce {
                    seq: i as u64,
                    rec: *rec,
                });
            }
        }
        assert!(partial.coalesce.ces > 0, "rack 1 must have CEs");
        compact_footprint_indices(&mut partial);
        let max_idx = partial
            .coalesce
            .groups
            .values()
            .flatten()
            .map(|f| f.idx)
            .max()
            .unwrap();
        assert_eq!(u64::from(max_idx) + 1, partial.coalesce.ces, "dense");
        // The degraded snapshot must not panic and must report the
        // partial CE population.
        let report = partial.snapshot();
        assert_eq!(report.ces, partial.coalesce.ces);
    }
}

//! Deterministic streaming replay.
//!
//! The engine consumes the time-sorted CE stream exactly as the analyzer
//! does, but evaluates predictors *online*: every record first updates its
//! rank's [`FeatureState`], then each predictor scores the fresh snapshot
//! using only information available at that record's timestamp.
//!
//! Parallelism follows the coalescer's proof shape: feature state never
//! crosses a `(node, slot, rank)` boundary, so the stream partitions into
//! independent per-rank substreams. Substreams are processed with
//! `astra_util::par::par_map` over a deterministically sorted group list,
//! each substream replayed sequentially in time order, and the resulting
//! alerts merged into one globally sorted stream — bit-identical output at
//! any worker count.

use std::collections::BTreeMap;

use astra_logs::CeRecord;
use astra_util::par;
use astra_util::Minute;

use crate::features::{DimmKey, FeatureState, FeatureVector};
use crate::predictor::Predictor;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct PredictConfig {
    /// Half-life of the leaky CE window, in minutes.
    pub half_life_minutes: f64,
    /// Banks one bit lane must recur across before the ladder reads
    /// rank-level (matches the coalescer's pin threshold).
    pub pin_bank_threshold: u32,
    /// Distinct columns before a single-bank footprint reads as dispersed.
    pub bank_dispersion_cols: u32,
}

impl Default for PredictConfig {
    /// One-week half-life (the field studies' observation windows are
    /// days-to-weeks) and the coalescer's spatial thresholds.
    fn default() -> PredictConfig {
        PredictConfig {
            half_life_minutes: 7.0 * 24.0 * 60.0,
            pin_bank_threshold: 4,
            bank_dispersion_cols: 6,
        }
    }
}

/// One UE-risk alert: the first time a predictor crossed its threshold for
/// a rank. Each `(rank, predictor)` pair alerts at most once — operators
/// act on the first page, not a refiring stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// When the threshold was crossed (the triggering record's timestamp).
    pub time: Minute,
    /// The rank the alert implicates.
    pub key: DimmKey,
    /// Which predictor fired.
    pub predictor: &'static str,
    /// The score at crossing time.
    pub score: f64,
    /// Feature snapshot that triggered the alert (the evidence an operator
    /// would review).
    pub features: FeatureVector,
}

/// Replay a time-sorted CE stream through the predictors, returning all
/// alerts sorted by `(time, node, slot, rank, predictor)`.
///
/// `records` must be in non-decreasing time order (as produced by the
/// simulator and by `AnalysisInput::from_dir`); per-rank substreams
/// preserve that order, which the leaky-window decay relies on.
pub fn replay(
    records: &[CeRecord],
    config: &PredictConfig,
    predictors: &[Box<dyn Predictor>],
) -> Vec<Alert> {
    let _span = astra_obs::span("pipeline.predict");
    let obs = astra_obs::global();
    obs.counter("predict.records_in").add(records.len() as u64);

    // Partition the stream into per-rank substreams. BTreeMap gives the
    // deterministic group order; indices preserve time order within each
    // group because the input is time-sorted.
    let mut groups: BTreeMap<(u32, u8, u8), Vec<usize>> = BTreeMap::new();
    for (idx, rec) in records.iter().enumerate() {
        groups
            .entry(DimmKey::of_record(rec).sort_key())
            .or_default()
            .push(idx);
    }
    let group_list: Vec<Vec<usize>> = groups.into_values().collect();
    obs.counter("predict.ranks_tracked")
        .add(group_list.len() as u64);

    let per_group: Vec<Vec<Alert>> = par::par_map(&group_list, |indices| {
        replay_group(records, indices, config, predictors)
    });

    let mut alerts: Vec<Alert> = per_group.into_iter().flatten().collect();
    alerts.sort_by(|a, b| {
        (a.time, a.key.sort_key(), a.predictor).cmp(&(b.time, b.key.sort_key(), b.predictor))
    });
    obs.counter("predict.alerts").add(alerts.len() as u64);
    for alert in &alerts {
        obs.counter(&format!("predict.alerts.{}", alert.predictor))
            .add(1);
    }
    alerts
}

/// Replay one rank's substream sequentially; emit each predictor's first
/// threshold crossing.
fn replay_group(
    records: &[CeRecord],
    indices: &[usize],
    config: &PredictConfig,
    predictors: &[Box<dyn Predictor>],
) -> Vec<Alert> {
    let mut alerts = Vec::new();
    let mut fired = vec![false; predictors.len()];
    let mut state: Option<FeatureState> = None;
    for &idx in indices {
        let rec = &records[idx];
        match state.as_mut() {
            None => {
                state = Some(FeatureState::new(
                    rec,
                    config.half_life_minutes,
                    config.pin_bank_threshold,
                    config.bank_dispersion_cols,
                ));
            }
            Some(s) => s.update(rec),
        }
        let snapshot = state
            .as_ref()
            .expect("state initialized")
            .snapshot(rec.time);
        for (pi, predictor) in predictors.iter().enumerate() {
            if fired[pi] {
                continue;
            }
            let score = predictor.score(&snapshot);
            if score >= predictor.threshold() {
                fired[pi] = true;
                alerts.push(Alert {
                    time: rec.time,
                    key: DimmKey::of_record(rec),
                    predictor: predictor.name(),
                    score,
                    features: snapshot,
                });
            }
        }
        if fired.iter().all(|&f| f) {
            break;
        }
    }
    alerts
}

/// The default predictor bank the CLI deploys: the Astra-tuned rule set
/// and the frozen logistic score.
pub fn default_predictors() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(crate::predictor::RulePredictor::astra()),
        Box::new(crate::predictor::LogisticPredictor::astra()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::RulePredictor;
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SocketId};

    fn rec(node: u32, minute: i64, col: u16, addr: u64) -> CeRecord {
        CeRecord {
            time: Minute::from_i64(minute),
            node: NodeId(node),
            socket: SocketId(0),
            slot: DimmSlot::from_letter('B').unwrap(),
            rank: RankId(0),
            bank: 3,
            row: None,
            col,
            bit_pos: 17,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    /// A sustained multi-column burst on node 1; a lone benign error on
    /// node 2.
    fn stream() -> Vec<CeRecord> {
        let mut v = Vec::new();
        for m in 0..40i64 {
            v.push(rec(1, m, (m % 8) as u16, 0x1000 + m as u64 * 64));
        }
        v.push(rec(2, 5, 1, 0x9000));
        v.sort_by_key(|r| (r.time, r.node.0));
        v
    }

    #[test]
    fn alerts_once_per_rank_and_only_on_the_noisy_rank() {
        let predictors: Vec<Box<dyn Predictor>> = vec![Box::new(RulePredictor::astra())];
        let alerts = replay(&stream(), &PredictConfig::default(), &predictors);
        assert_eq!(alerts.len(), 1, "one alert for the noisy rank only");
        assert_eq!(alerts[0].key.node, NodeId(1));
        assert_eq!(alerts[0].predictor, "rule");
        assert!(alerts[0].score >= 1.0);
        // Fired while the burst was still in progress — online, not post-hoc.
        assert!(alerts[0].time.value() < 40);
    }

    #[test]
    fn replay_is_worker_count_invariant() {
        let records = stream();
        let baseline = {
            par::set_workers(Some(1));
            replay(&records, &PredictConfig::default(), &default_predictors())
        };
        for workers in [2, 4] {
            par::set_workers(Some(workers));
            let got = replay(&records, &PredictConfig::default(), &default_predictors());
            assert_eq!(got, baseline, "alerts differ at {workers} workers");
        }
        par::set_workers(None);
    }

    #[test]
    fn empty_stream_is_fine() {
        let alerts = replay(&[], &PredictConfig::default(), &default_predictors());
        assert!(alerts.is_empty());
    }
}

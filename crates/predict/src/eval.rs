//! Lead-time evaluation harness.
//!
//! The field studies this crate follows can only score predictions against
//! *observed* failures — they never know which DIMMs were silently faulty.
//! Here the simulator hands us both halves of the truth:
//!
//! * **Injected faults** ([`GroundTruthFault`]) name every genuinely
//!   defective `(node, slot, rank)`, so alert *precision* is exact: an
//!   alert on a rank with no injected fault is a false positive, full stop.
//! * **HET DUE records** mark the uncorrectable errors operators actually
//!   suffer, so *UE recall* and *lead time* use the operational join: an
//!   alert on a DIMM at or before its first memory DUE predicted that DUE,
//!   and the gap is the reaction window a proactive policy would have had.
//!
//! HET records carry node + slot but no rank (matching Astra's real HET
//! granularity), so the DUE join is per-DIMM while the fault join is
//! per-rank.

use std::collections::{BTreeMap, BTreeSet};

use astra_faultsim::GroundTruthFault;
use astra_logs::HetRecord;
use astra_stats::Histogram;
use astra_util::{Minute, MINUTES_PER_DAY};

use crate::engine::Alert;

/// Per-predictor evaluation results.
#[derive(Debug, Clone)]
pub struct PredictorEval {
    /// Predictor name.
    pub name: &'static str,
    /// Total alerts emitted.
    pub alerts: usize,
    /// Alerts landing on a rank with an injected fault.
    pub alerts_on_faulty: usize,
    /// Faulty ranks that received at least one alert.
    pub faulty_ranks_alerted: usize,
    /// DUE'd DIMMs that were alerted at or before their first memory DUE.
    pub dues_predicted: usize,
    /// Lead time (minutes from first alert to first DUE) for each
    /// predicted DUE, sorted ascending.
    pub lead_times_minutes: Vec<i64>,
}

impl PredictorEval {
    /// Fraction of alerts that implicate a genuinely faulty rank.
    pub fn precision(&self, _faulty_ranks: usize) -> f64 {
        ratio(self.alerts_on_faulty, self.alerts)
    }

    /// Fraction of injected faulty ranks the predictor flagged.
    pub fn fault_recall(&self, faulty_ranks: usize) -> f64 {
        ratio(self.faulty_ranks_alerted, faulty_ranks)
    }

    /// Fraction of memory-DUE DIMMs alerted before (or at) the DUE.
    pub fn ue_recall(&self, dues: usize) -> f64 {
        ratio(self.dues_predicted, dues)
    }

    /// Median lead time in days (`None` when nothing was predicted).
    pub fn median_lead_days(&self) -> Option<f64> {
        if self.lead_times_minutes.is_empty() {
            return None;
        }
        let n = self.lead_times_minutes.len();
        let mid = if n % 2 == 1 {
            self.lead_times_minutes[n / 2] as f64
        } else {
            (self.lead_times_minutes[n / 2 - 1] + self.lead_times_minutes[n / 2]) as f64 / 2.0
        };
        Some(mid / MINUTES_PER_DAY as f64)
    }

    /// Lead-time histogram in days over `[0, horizon_days)`.
    pub fn lead_time_histogram_days(&self, horizon_days: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(0.0, horizon_days, bins);
        for &lt in &self.lead_times_minutes {
            h.push(lt as f64 / MINUTES_PER_DAY as f64);
        }
        h
    }
}

/// Evaluation across every predictor present in the alert stream.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Number of injected faulty ranks (the fault-join denominator).
    pub faulty_ranks: usize,
    /// Number of DIMMs with at least one memory DUE (the UE-join
    /// denominator).
    pub dues: usize,
    /// Per-predictor results, ordered by predictor name.
    pub predictors: Vec<PredictorEval>,
}

/// Join alerts against ground truth and HET DUEs.
///
/// `alerts` is the output of [`crate::engine::replay`]; `het` and
/// `ground_truth` come straight from the simulator (or a re-simulation at
/// the dataset's recorded racks/seed — generation is deterministic).
pub fn evaluate(
    alerts: &[Alert],
    het: &[HetRecord],
    ground_truth: &[GroundTruthFault],
) -> EvalReport {
    // Per-rank fault truth.
    let faulty_ranks: BTreeSet<(u32, usize, u8)> = ground_truth
        .iter()
        .map(|g| {
            (
                g.fault.dimm.node.0,
                g.fault.dimm.slot.index(),
                g.fault.rank.0,
            )
        })
        .collect();

    // First memory DUE per DIMM.
    let mut first_due: BTreeMap<(u32, usize), Minute> = BTreeMap::new();
    for rec in het {
        if !rec.kind.is_memory_due() {
            continue;
        }
        let Some(slot) = rec.slot else { continue };
        first_due
            .entry((rec.node.0, slot.index()))
            .and_modify(|t| *t = (*t).min(rec.time))
            .or_insert(rec.time);
    }

    // Group alerts by predictor name (sorted for deterministic output).
    let mut by_predictor: BTreeMap<&'static str, Vec<&Alert>> = BTreeMap::new();
    for alert in alerts {
        by_predictor.entry(alert.predictor).or_default().push(alert);
    }

    let predictors = by_predictor
        .into_iter()
        .map(|(name, alerts)| {
            let mut alerts_on_faulty = 0;
            let mut ranks_alerted: BTreeSet<(u32, usize, u8)> = BTreeSet::new();
            // First alert per DIMM (alerts are time-sorted).
            let mut first_alert: BTreeMap<(u32, usize), Minute> = BTreeMap::new();
            for a in &alerts {
                let rank_key = (a.key.node.0, a.key.slot.index(), a.key.rank.0);
                if faulty_ranks.contains(&rank_key) {
                    alerts_on_faulty += 1;
                    ranks_alerted.insert(rank_key);
                }
                first_alert
                    .entry((a.key.node.0, a.key.slot.index()))
                    .or_insert(a.time);
            }
            let mut lead_times: Vec<i64> = first_due
                .iter()
                .filter_map(|(dimm, &due_time)| {
                    let alert_time = *first_alert.get(dimm)?;
                    (alert_time <= due_time).then(|| due_time.value() - alert_time.value())
                })
                .collect();
            lead_times.sort_unstable();
            PredictorEval {
                name,
                alerts: alerts.len(),
                alerts_on_faulty,
                faulty_ranks_alerted: ranks_alerted.len(),
                dues_predicted: lead_times.len(),
                lead_times_minutes: lead_times,
            }
        })
        .collect();

    EvalReport {
        faulty_ranks: faulty_ranks.len(),
        dues: first_due.len(),
        predictors,
    }
}

impl EvalReport {
    /// Render the report as the text block the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ground truth: {} faulty ranks, {} DIMMs with memory DUEs\n\n",
            self.faulty_ranks, self.dues
        ));
        out.push_str(
            "predictor   alerts  precision  fault-recall  DUEs-predicted  UE-recall  median-lead\n",
        );
        for p in &self.predictors {
            let lead = p
                .median_lead_days()
                .map(|d| format!("{d:.1} d"))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<10}  {:>6}  {:>9.3}  {:>12.3}  {:>11}/{:<2}  {:>9.3}  {:>11}\n",
                p.name,
                p.alerts,
                p.precision(self.faulty_ranks),
                p.fault_recall(self.faulty_ranks),
                p.dues_predicted,
                self.dues,
                p.ue_recall(self.dues),
                lead,
            ));
        }
        for p in &self.predictors {
            if p.lead_times_minutes.is_empty() {
                continue;
            }
            out.push('\n');
            out.push_str(&format!("lead time, {} (days before first DUE):\n", p.name));
            let h = p.lead_time_histogram_days(120.0, 8);
            for (i, &count) in h.counts().iter().enumerate() {
                let bar = "#".repeat(count as usize);
                out.push_str(&format!(
                    "  [{:>5.1}, {:>5.1})  {:>3}  {}\n",
                    h.bin_edge(i),
                    h.bin_edge(i + 1),
                    count,
                    bar
                ));
            }
            if h.overflow() > 0 {
                out.push_str(&format!("  [120.0,   inf)  {:>3}\n", h.overflow()));
            }
        }
        out
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{DimmKey, EscalationLevel, FeatureVector};
    use astra_faultsim::{Fault, FaultMode};
    use astra_topology::{DimmId, DimmSlot, DramGeometry, NodeId, RankId};
    use astra_util::DetRng;

    fn alert(node: u32, slot: char, rank: u8, minute: i64, predictor: &'static str) -> Alert {
        Alert {
            time: Minute::from_i64(minute),
            key: DimmKey {
                node: NodeId(node),
                slot: DimmSlot::from_letter(slot).unwrap(),
                rank: RankId(rank),
            },
            predictor,
            score: 1.0,
            features: FeatureVector {
                window_ces: 0.0,
                total_ces: 0,
                distinct_banks: 0,
                distinct_cols: 0,
                distinct_addrs: 0,
                distinct_lanes: 0,
                dominant_lane_share: 0.0,
                minutes_since_first: 0,
                escalation: EscalationLevel::SingleBit,
            },
        }
    }

    fn truth(node: u32, slot: char, rank: u8) -> GroundTruthFault {
        let dimm = DimmId {
            node: NodeId(node),
            slot: DimmSlot::from_letter(slot).unwrap(),
        };
        let mut rng = DetRng::new(1);
        GroundTruthFault {
            fault: Fault::random_anchor(
                dimm,
                RankId(rank),
                FaultMode::SingleBit,
                &DramGeometry::ASTRA,
                Minute::from_i64(0),
                5,
                &mut rng,
            ),
            offered_errors: 5,
        }
    }

    fn due(node: u32, slot: char, minute: i64) -> HetRecord {
        use astra_logs::HetKind;
        HetRecord {
            time: Minute::from_i64(minute),
            node: NodeId(node),
            kind: HetKind::UncorrectableEcc,
            severity: HetKind::UncorrectableEcc.severity(),
            slot: Some(DimmSlot::from_letter(slot).unwrap()),
        }
    }

    #[test]
    fn join_scores_precision_recall_and_lead() {
        let alerts = vec![
            alert(1, 'A', 0, 100, "rule"), // on faulty rank, 900 min before DUE
            alert(2, 'B', 0, 50, "rule"),  // false positive: no fault there
        ];
        let truths = vec![truth(1, 'A', 0), truth(3, 'C', 1)];
        let hets = vec![due(1, 'A', 1000), due(4, 'D', 2000)];
        let report = evaluate(&alerts, &hets, &truths);
        assert_eq!(report.faulty_ranks, 2);
        assert_eq!(report.dues, 2);
        let p = &report.predictors[0];
        assert_eq!(p.name, "rule");
        assert_eq!(p.alerts, 2);
        assert_eq!(p.alerts_on_faulty, 1);
        assert!((p.precision(report.faulty_ranks) - 0.5).abs() < 1e-12);
        assert!((p.fault_recall(report.faulty_ranks) - 0.5).abs() < 1e-12);
        assert_eq!(p.dues_predicted, 1);
        assert!((p.ue_recall(report.dues) - 0.5).abs() < 1e-12);
        assert_eq!(p.lead_times_minutes, vec![900]);
        let rendered = report.render();
        assert!(rendered.contains("rule"));
        assert!(rendered.contains("lead time, rule"));
    }

    #[test]
    fn alert_after_due_does_not_count() {
        let alerts = vec![alert(1, 'A', 0, 1500, "rule")];
        let report = evaluate(&alerts, &[due(1, 'A', 1000)], &[truth(1, 'A', 0)]);
        assert_eq!(report.predictors[0].dues_predicted, 0);
        assert!(report.predictors[0].lead_times_minutes.is_empty());
    }

    #[test]
    fn multiple_predictors_scored_independently() {
        let alerts = vec![
            alert(1, 'A', 0, 100, "logistic"),
            alert(1, 'A', 0, 200, "rule"),
        ];
        let report = evaluate(&alerts, &[due(1, 'A', 300)], &[truth(1, 'A', 0)]);
        assert_eq!(report.predictors.len(), 2);
        // BTreeMap orders by name: logistic before rule.
        assert_eq!(report.predictors[0].name, "logistic");
        assert_eq!(report.predictors[0].lead_times_minutes, vec![200]);
        assert_eq!(report.predictors[1].lead_times_minutes, vec![100]);
    }

    #[test]
    fn empty_everything_renders() {
        let report = evaluate(&[], &[], &[]);
        assert_eq!(report.faulty_ranks, 0);
        assert_eq!(report.dues, 0);
        assert!(report.render().contains("0 faulty ranks"));
    }
}

//! Streaming per-DIMM feature state.
//!
//! Every feature is computable *online* from the CE stream alone — no
//! look-ahead, no second pass — because the engine must be runnable
//! against a live syslog tail, not only a finished log file. The feature
//! set follows the prediction literature (error-bit patterns and spatial
//! spread from Yu et al.; long-term first-CE age from Bogatinovski et
//! al.) restricted to what Astra's records actually carry: no row
//! information (§3.2 of the paper), so row-based features are replaced by
//! column/bank spread.

use std::collections::{BTreeMap, BTreeSet};

use astra_logs::CeRecord;
use astra_topology::{DimmSlot, NodeId, RankId};
use astra_util::Minute;

/// The device population one predictor state tracks: a DIMM rank.
///
/// This is the same `(node, slot, rank)` grouping the coalescer uses — a
/// physical fault is confined to one rank, so features from different
/// ranks never mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimmKey {
    /// Node the rank lives on.
    pub node: NodeId,
    /// DIMM slot.
    pub slot: DimmSlot,
    /// Rank within the DIMM.
    pub rank: RankId,
}

impl DimmKey {
    /// The key of the rank a record implicates.
    pub fn of_record(rec: &CeRecord) -> DimmKey {
        DimmKey {
            node: rec.node,
            slot: rec.slot,
            rank: rec.rank,
        }
    }

    /// Dense deterministic sort key.
    pub fn sort_key(self) -> (u32, u8, u8) {
        (self.node.0, self.slot.index() as u8, self.rank.0)
    }
}

/// How far a rank's observed footprint has escalated through the fault-mode
/// ladder. Mirrors the coalescer's mode vocabulary, evaluated online: a
/// rank only ever moves *up* the ladder as more errors arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscalationLevel {
    /// All errors at one (address, bit lane).
    SingleBit,
    /// One address, several bit lanes (word-level footprint).
    SingleWord,
    /// Several addresses confined to one column.
    SingleColumn,
    /// Footprint spread over several columns or banks.
    SingleBank,
    /// One bit lane recurring across many banks: a pin/lane defect, the
    /// super-sticky mode behind the paper's 91 000-error fault (§3.2).
    RankLevel,
}

impl EscalationLevel {
    /// Numeric rung (0 = single-bit … 4 = rank-level), the form predictors
    /// consume.
    pub fn rung(self) -> u8 {
        match self {
            EscalationLevel::SingleBit => 0,
            EscalationLevel::SingleWord => 1,
            EscalationLevel::SingleColumn => 2,
            EscalationLevel::SingleBank => 3,
            EscalationLevel::RankLevel => 4,
        }
    }

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            EscalationLevel::SingleBit => "single-bit",
            EscalationLevel::SingleWord => "single-word",
            EscalationLevel::SingleColumn => "single-column",
            EscalationLevel::SingleBank => "single-bank",
            EscalationLevel::RankLevel => "rank-level",
        }
    }

    /// Inverse of [`EscalationLevel::rung`], for checkpoint decoding.
    pub fn from_rung(rung: u8) -> Option<EscalationLevel> {
        match rung {
            0 => Some(EscalationLevel::SingleBit),
            1 => Some(EscalationLevel::SingleWord),
            2 => Some(EscalationLevel::SingleColumn),
            3 => Some(EscalationLevel::SingleBank),
            4 => Some(EscalationLevel::RankLevel),
            _ => None,
        }
    }
}

/// Distinct-address tracking saturates here: a rank-level fault touches
/// essentially unbounded addresses and the exact count past this point
/// carries no extra signal, only memory cost.
const ADDR_TRACK_CAP: usize = 4096;

/// Snapshot of one rank's features at a point in time — the predictor
/// input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// Leaky-window CE count: exponentially decayed with the configured
    /// half-life, evaluated at snapshot time.
    pub window_ces: f64,
    /// Lifetime CE count.
    pub total_ces: u64,
    /// Distinct banks touched.
    pub distinct_banks: u32,
    /// Distinct columns touched.
    pub distinct_cols: u32,
    /// Distinct physical addresses touched (saturates at the tracking cap).
    pub distinct_addrs: u32,
    /// Distinct logged bit positions (error-bit-pattern spread).
    pub distinct_lanes: u32,
    /// Share of all errors carried by the most common bit position; 1.0
    /// means a perfectly sticky lane.
    pub dominant_lane_share: f64,
    /// Minutes since the rank's first CE (the "first CE matters" age).
    pub minutes_since_first: i64,
    /// Current rung on the fault-mode ladder.
    pub escalation: EscalationLevel,
}

/// Streaming feature accumulator for one [`DimmKey`].
#[derive(Debug, Clone)]
pub struct FeatureState {
    half_life_minutes: f64,
    pin_bank_threshold: u32,
    bank_dispersion_cols: u32,
    first_ce: Minute,
    last_ce: Minute,
    total_ces: u64,
    leaky: f64,
    banks: BTreeSet<u16>,
    cols: BTreeSet<u16>,
    addrs: BTreeSet<u64>,
    addrs_saturated: bool,
    /// Per bit-position: (error count, bitmask of banks seen). Astra's
    /// geometry has 16 banks per rank, so a `u16` mask is exact.
    lanes: BTreeMap<u16, (u64, u16)>,
    escalation: EscalationLevel,
}

impl FeatureState {
    /// Fresh state whose first error is `rec`.
    ///
    /// `pin_bank_threshold` and `bank_dispersion_cols` mirror the
    /// coalescer's thresholds so the online ladder agrees with the
    /// post-hoc classification.
    pub fn new(
        rec: &CeRecord,
        half_life_minutes: f64,
        pin_bank_threshold: u32,
        bank_dispersion_cols: u32,
    ) -> FeatureState {
        let mut state = FeatureState {
            half_life_minutes,
            pin_bank_threshold,
            bank_dispersion_cols,
            first_ce: rec.time,
            last_ce: rec.time,
            total_ces: 0,
            leaky: 0.0,
            banks: BTreeSet::new(),
            cols: BTreeSet::new(),
            addrs: BTreeSet::new(),
            addrs_saturated: false,
            lanes: BTreeMap::new(),
            escalation: EscalationLevel::SingleBit,
        };
        state.update(rec);
        state
    }

    /// Absorb one error. Records must arrive in non-decreasing time order
    /// (the engine replays the time-sorted log).
    pub fn update(&mut self, rec: &CeRecord) {
        let dt = (rec.time.value() - self.last_ce.value()).max(0) as f64;
        self.leaky = self.leaky * decay(dt, self.half_life_minutes) + 1.0;
        self.last_ce = rec.time;
        self.total_ces += 1;

        self.banks.insert(rec.bank);
        self.cols.insert(rec.col);
        if self.addrs.len() < ADDR_TRACK_CAP {
            self.addrs.insert(rec.addr.0);
        } else {
            self.addrs_saturated = true;
        }
        let bank_bit = 1u16 << (rec.bank as u32 % 16);
        let lane = self.lanes.entry(rec.bit_pos).or_insert((0, 0));
        lane.0 += 1;
        lane.1 |= bank_bit;

        self.escalation = self.escalation.max(self.classify());
    }

    /// Where on the mode ladder the accumulated footprint sits right now.
    fn classify(&self) -> EscalationLevel {
        let pin = self
            .lanes
            .values()
            .any(|&(_, mask)| mask.count_ones() >= self.pin_bank_threshold);
        if pin {
            EscalationLevel::RankLevel
        } else if self.banks.len() > 1 || self.cols.len() as u32 >= self.bank_dispersion_cols {
            EscalationLevel::SingleBank
        } else if self.addrs.len() > 1 || self.addrs_saturated {
            EscalationLevel::SingleColumn
        } else if self.lanes.len() > 1 {
            EscalationLevel::SingleWord
        } else {
            EscalationLevel::SingleBit
        }
    }

    /// Feature snapshot at time `now` (usually the current record's time).
    pub fn snapshot(&self, now: Minute) -> FeatureVector {
        let dt = (now.value() - self.last_ce.value()).max(0) as f64;
        let max_lane = self.lanes.values().map(|&(n, _)| n).max().unwrap_or(0);
        FeatureVector {
            window_ces: self.leaky * decay(dt, self.half_life_minutes),
            total_ces: self.total_ces,
            distinct_banks: self.banks.len() as u32,
            distinct_cols: self.cols.len() as u32,
            distinct_addrs: self.addrs.len() as u32,
            distinct_lanes: self.lanes.len() as u32,
            dominant_lane_share: if self.total_ces == 0 {
                0.0
            } else {
                max_lane as f64 / self.total_ces as f64
            },
            minutes_since_first: (now.value() - self.first_ce.value()).max(0),
            escalation: self.escalation,
        }
    }

    /// Time of the rank's first error.
    pub fn first_ce(&self) -> Minute {
        self.first_ce
    }

    /// Full dump of the accumulated state (not the config knobs) for
    /// checkpoint serialization. [`FeatureState::restore`] is the inverse.
    pub fn dump(&self) -> FeatureStateDump {
        FeatureStateDump {
            first_ce: self.first_ce,
            last_ce: self.last_ce,
            total_ces: self.total_ces,
            leaky: self.leaky,
            banks: self.banks.iter().copied().collect(),
            cols: self.cols.iter().copied().collect(),
            addrs: self.addrs.iter().copied().collect(),
            addrs_saturated: self.addrs_saturated,
            lanes: self
                .lanes
                .iter()
                .map(|(&lane, &(count, mask))| (lane, count, mask))
                .collect(),
            escalation_rung: self.escalation.rung(),
        }
    }

    /// Rebuild a state from a [`dump`](FeatureState::dump) plus the config
    /// knobs the dump deliberately omits (they travel with the run
    /// configuration, not the checkpoint). `None` if the dump carries an
    /// unknown escalation rung.
    pub fn restore(
        dump: &FeatureStateDump,
        half_life_minutes: f64,
        pin_bank_threshold: u32,
        bank_dispersion_cols: u32,
    ) -> Option<FeatureState> {
        Some(FeatureState {
            half_life_minutes,
            pin_bank_threshold,
            bank_dispersion_cols,
            first_ce: dump.first_ce,
            last_ce: dump.last_ce,
            total_ces: dump.total_ces,
            leaky: dump.leaky,
            banks: dump.banks.iter().copied().collect(),
            cols: dump.cols.iter().copied().collect(),
            addrs: dump.addrs.iter().copied().collect(),
            addrs_saturated: dump.addrs_saturated,
            lanes: dump
                .lanes
                .iter()
                .map(|&(lane, count, mask)| (lane, (count, mask)))
                .collect(),
            escalation: EscalationLevel::from_rung(dump.escalation_rung)?,
        })
    }
}

/// Serializable image of a [`FeatureState`]: plain sorted vectors in place
/// of the live sets, and the escalation level as its rung. Everything a
/// checkpoint needs to resume a prediction replay mid-stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStateDump {
    /// Time of the rank's first error.
    pub first_ce: Minute,
    /// Time of the rank's most recent error.
    pub last_ce: Minute,
    /// Lifetime CE count.
    pub total_ces: u64,
    /// Leaky-window accumulator as of `last_ce`.
    pub leaky: f64,
    /// Distinct banks touched, ascending.
    pub banks: Vec<u16>,
    /// Distinct columns touched, ascending.
    pub cols: Vec<u16>,
    /// Distinct addresses tracked, ascending.
    pub addrs: Vec<u64>,
    /// Whether address tracking hit its cap.
    pub addrs_saturated: bool,
    /// Per bit-position `(lane, error count, bank bitmask)`, ascending by
    /// lane.
    pub lanes: Vec<(u16, u64, u16)>,
    /// Escalation ladder rung ([`EscalationLevel::rung`]).
    pub escalation_rung: u8,
}

/// Exponential decay factor for an elapsed time and half-life.
fn decay(dt_minutes: f64, half_life_minutes: f64) -> f64 {
    if half_life_minutes <= 0.0 {
        return 1.0;
    }
    (-std::f64::consts::LN_2 * dt_minutes / half_life_minutes).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::{PhysAddr, SocketId};
    use astra_util::CalDate;

    fn rec(bank: u16, col: u16, bit: u16, addr: u64, minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('A').unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 1).midnight().plus(minute),
            node: NodeId(1),
            socket: SocketId(0),
            slot,
            rank: RankId(0),
            bank,
            row: None,
            col,
            bit_pos: bit,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    fn state(first: &CeRecord) -> FeatureState {
        FeatureState::new(first, 7.0 * 1440.0, 4, 6)
    }

    #[test]
    fn single_sticky_bit_stays_on_rung_zero() {
        let mut s = state(&rec(1, 2, 9, 0x1000, 0));
        for m in 1..50 {
            s.update(&rec(1, 2, 9, 0x1000, m));
        }
        let f = s.snapshot(CalDate::new(2019, 3, 1).midnight().plus(50));
        assert_eq!(f.escalation, EscalationLevel::SingleBit);
        assert_eq!(f.total_ces, 50);
        assert_eq!(f.distinct_addrs, 1);
        assert!((f.dominant_lane_share - 1.0).abs() < 1e-12);
        assert_eq!(f.minutes_since_first, 50);
    }

    #[test]
    fn escalation_climbs_and_never_descends() {
        let mut s = state(&rec(1, 2, 9, 0x1000, 0));
        assert_eq!(s.snapshot(Minute::from_i64(0)).escalation.rung(), 0);
        // Second lane, same address → word.
        s.update(&rec(1, 2, 10, 0x1000, 1));
        assert_eq!(
            s.snapshot(Minute::from_i64(0)).escalation,
            EscalationLevel::SingleWord
        );
        // Second address, same column → column.
        s.update(&rec(1, 2, 9, 0x2000, 2));
        assert_eq!(
            s.snapshot(Minute::from_i64(0)).escalation,
            EscalationLevel::SingleColumn
        );
        // Second bank → bank-level.
        s.update(&rec(2, 2, 9, 0x3000, 3));
        assert_eq!(
            s.snapshot(Minute::from_i64(0)).escalation,
            EscalationLevel::SingleBank
        );
        // Back to the original footprint: the ladder must not descend.
        s.update(&rec(1, 2, 9, 0x1000, 4));
        assert_eq!(
            s.snapshot(Minute::from_i64(0)).escalation,
            EscalationLevel::SingleBank
        );
    }

    #[test]
    fn pin_lane_across_banks_reaches_rank_level() {
        let mut s = state(&rec(0, 1, 200, 0x1000, 0));
        for bank in 1..4u16 {
            s.update(&rec(
                bank,
                1,
                200,
                0x1000 + u64::from(bank),
                i64::from(bank),
            ));
        }
        let f = s.snapshot(Minute::from_i64(10));
        assert_eq!(f.escalation, EscalationLevel::RankLevel);
        assert_eq!(f.distinct_banks, 4);
        assert_eq!(f.distinct_lanes, 1);
    }

    #[test]
    fn leaky_window_decays_with_half_life() {
        let half_life = 1000.0;
        let r0 = rec(1, 2, 9, 0x1000, 0);
        let mut s = FeatureState::new(&r0, half_life, 4, 6);
        for m in 1..10 {
            s.update(&rec(1, 2, 9, 0x1000, m));
        }
        let now = s.snapshot(r0.time.plus(9));
        assert!(now.window_ces > 9.9, "fresh errors barely decay");
        // One half-life later, the window count halves; lifetime total
        // does not.
        let later = s.snapshot(r0.time.plus(9 + half_life as i64));
        assert!((later.window_ces - now.window_ces / 2.0).abs() < 0.01);
        assert_eq!(later.total_ces, 10);
    }

    #[test]
    fn address_tracking_saturates_without_losing_escalation() {
        let mut s = state(&rec(1, 2, 9, 0, 0));
        for i in 1..(ADDR_TRACK_CAP as u64 + 100) {
            s.update(&rec(1, 2, 9, i * 64, i as i64));
        }
        let f = s.snapshot(Minute::from_i64(1 << 24));
        assert_eq!(f.distinct_addrs, ADDR_TRACK_CAP as u32);
        assert!(f.escalation >= EscalationLevel::SingleColumn);
    }

    #[test]
    fn dump_restore_roundtrip_preserves_behavior() {
        let mut s = state(&rec(1, 2, 9, 0x1000, 0));
        for m in 1..40 {
            s.update(&rec(
                (m % 3) as u16,
                (m % 5) as u16,
                (m % 7) as u16,
                m as u64 * 64,
                m,
            ));
        }
        let dump = s.dump();
        let restored = FeatureState::restore(&dump, 7.0 * 1440.0, 4, 6).unwrap();
        assert_eq!(restored.dump(), dump);
        let now = Minute::from_i64(5000);
        assert_eq!(restored.snapshot(now), s.snapshot(now));
        // Both continue identically after the roundtrip.
        let next = rec(9, 9, 9, 0x9999, 100);
        let mut a = s.clone();
        let mut b = restored;
        a.update(&next);
        b.update(&next);
        assert_eq!(a.dump(), b.dump());
    }

    #[test]
    fn bad_escalation_rung_fails_restore() {
        let s = state(&rec(1, 2, 9, 0x1000, 0));
        let mut dump = s.dump();
        dump.escalation_rung = 9;
        assert!(FeatureState::restore(&dump, 7.0 * 1440.0, 4, 6).is_none());
    }

    #[test]
    fn dimm_key_orders_by_node_slot_rank() {
        let a = DimmKey::of_record(&rec(0, 0, 0, 0, 0));
        let mut b = a;
        b.rank = RankId(1);
        assert!(a.sort_key() < b.sort_key());
    }
}

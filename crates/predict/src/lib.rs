//! `astra-predict`: online memory-failure prediction.
//!
//! The paper's analysis (§3–§5) is *post-hoc*: it measures how CE behavior
//! relates to later uncorrectable errors and replacements after the fact.
//! The field-study literature it cites goes one step further — "Exploring
//! Error Bits for Memory Failure Prediction" (Yu et al.) and "First CE
//! Matters" (Bogatinovski et al.) show that streaming per-DIMM CE features
//! predict UEs with operationally useful lead time. This crate closes that
//! loop for the reproduction: a streaming engine that consumes the
//! time-ordered CE log and raises UE-risk alerts *while the stream plays*,
//! plus an evaluation harness that the field papers could never have —
//! the simulator's ground truth makes every alert exactly scoreable.
//!
//! Modules:
//!
//! * [`features`] — per-`(node, slot, rank)` streaming feature state:
//!   leaky-window CE counts, distinct banks/columns/addresses/bit-lanes,
//!   dominant-lane share, time-since-first-CE, and the fault-mode
//!   escalation ladder (single-bit → word/column → bank → rank).
//! * [`predictor`] — the [`Predictor`](predictor::Predictor) trait with a
//!   threshold [`RulePredictor`](predictor::RulePredictor) and a
//!   [`LogisticPredictor`](predictor::LogisticPredictor) whose weights are
//!   fit from labeled feature vectors via `astra_stats::linfit`.
//! * [`engine`] — deterministic replay: fans independent DIMM streams
//!   across workers (`astra-util::par`), emits time-ordered
//!   [`Alert`](engine::Alert)s; bit-identical at any worker count.
//! * [`eval`] — the lead-time harness: joins alerts against HET/DUE
//!   records and the simulator's injected-fault ground truth to report
//!   precision, recall, and per-DIMM lead-time distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod eval;
pub mod features;
pub mod predictor;
pub mod transfer;

pub use engine::{default_predictors, replay, Alert, PredictConfig};
pub use eval::{evaluate, EvalReport, PredictorEval};
pub use features::{DimmKey, EscalationLevel, FeatureState, FeatureStateDump, FeatureVector};
pub use predictor::{LogisticPredictor, Predictor, RulePredictor};
pub use transfer::{
    collect_samples, transfer_matrix, TransferCell, TransferDataset, TransferMatrix,
};

//! Cross-platform predictor transfer: fit on one machine family, score on
//! another.
//!
//! The central question of "Investigating Memory Failure Prediction
//! Across CPU Architectures" (PAPERS.md): a CE-history predictor fit on
//! one fleet embeds that platform's calibration — its fault-mode mix, ECC
//! scheme, slot skew, DUE escalation rate — and may not survive the trip
//! to a machine with different physics. This module makes the question
//! measurable: fit a [`LogisticPredictor`] on each *training* dataset,
//! replay it over each *evaluation* dataset, and tabulate
//! precision / fault-recall / median lead time for every (train, eval)
//! pair. The diagonal cells are the self-transfer baseline; off-diagonal
//! degradation is the transfer penalty.

use std::collections::{BTreeMap, BTreeSet};

use astra_faultsim::GroundTruthFault;
use astra_logs::{CeRecord, HetRecord};
use astra_util::Minute;

use crate::engine::{replay, PredictConfig};
use crate::eval::evaluate;
use crate::features::{DimmKey, FeatureState, FeatureVector};
use crate::predictor::{LogisticPredictor, Predictor};

/// One labeled dataset: the CE stream plus the truth needed to label and
/// score it (both come from the simulator's re-simulation at the
/// dataset's recorded profile, racks, and seed).
#[derive(Debug, Clone)]
pub struct TransferDataset {
    /// Display name (usually the platform-profile name).
    pub name: String,
    /// Time-sorted CE records.
    pub records: Vec<CeRecord>,
    /// HET records (memory DUEs drive labels and lead times).
    pub hets: Vec<HetRecord>,
    /// Injected faults (the per-rank truth).
    pub ground_truth: Vec<GroundTruthFault>,
}

/// Final-state training samples: one `(features, label)` pair per rank
/// that logged at least one CE. Features are the rank's accumulated
/// state snapshot at its last CE; the label is true when the rank's
/// DIMM later suffered a memory DUE.
///
/// The label is deliberately *not* "hosts an injected fault": in the
/// simulator every CE traces back to an injected fault, so that label
/// is true for every CE-logging rank — a single-class training set that
/// cannot be fit. The operational question (and the one the field
/// papers pose) is which CE histories *escalate to uncorrectable
/// errors*; the DUE is the observable outcome a fleet operator trains
/// on. Injected-fault truth still drives the evaluator's precision and
/// fault-recall joins.
pub fn collect_samples(ds: &TransferDataset, config: &PredictConfig) -> Vec<(FeatureVector, bool)> {
    let due_dimms: BTreeSet<(u32, usize)> = ds
        .hets
        .iter()
        .filter(|r| r.kind.is_memory_due())
        .filter_map(|r| Some((r.node.0, r.slot?.index())))
        .collect();

    let mut states: BTreeMap<DimmKey, (FeatureState, Minute)> = BTreeMap::new();
    for rec in &ds.records {
        let key = DimmKey::of_record(rec);
        match states.get_mut(&key) {
            Some((state, last)) => {
                state.update(rec);
                *last = rec.time;
            }
            None => {
                let state = FeatureState::new(
                    rec,
                    config.half_life_minutes,
                    config.pin_bank_threshold,
                    config.bank_dispersion_cols,
                );
                states.insert(key, (state, rec.time));
            }
        }
    }

    states
        .into_iter()
        .map(|(key, (state, last))| {
            let label = due_dimms.contains(&(key.node.0, key.slot.index()));
            (state.snapshot(last), label)
        })
        .collect()
}

/// One (train, eval) cell of the matrix.
#[derive(Debug, Clone)]
pub struct TransferCell {
    /// Training dataset name.
    pub train: String,
    /// Evaluation dataset name.
    pub eval: String,
    /// Alerts the transferred predictor emitted on the eval stream.
    pub alerts: usize,
    /// Fraction of alerts implicating a genuinely faulty rank.
    pub precision: f64,
    /// Fraction of injected faulty ranks flagged.
    pub fault_recall: f64,
    /// Median alert→DUE lead time in days (`None`: no DUE predicted).
    pub median_lead_days: Option<f64>,
    /// False when [`LogisticPredictor::fit`] returned `None` (single-class
    /// or degenerate training set) and the frozen Astra weights stood in.
    pub fitted: bool,
}

/// The full train-rows × eval-columns matrix.
#[derive(Debug, Clone)]
pub struct TransferMatrix {
    /// Training dataset names, row order.
    pub trains: Vec<String>,
    /// Evaluation dataset names, column order.
    pub evals: Vec<String>,
    /// Row-major cells (`trains.len() * evals.len()` entries).
    pub cells: Vec<TransferCell>,
}

/// Fit a logistic predictor per training dataset and score it on every
/// evaluation dataset.
///
/// A training set that cannot be fit (no positive or no negative ranks —
/// possible at very small scale) falls back to the frozen
/// [`LogisticPredictor::astra`] weights; the cell records `fitted =
/// false` and the rendered matrix marks it, so a fallback never
/// masquerades as a transfer result.
pub fn transfer_matrix(
    train: &[TransferDataset],
    eval: &[TransferDataset],
    config: &PredictConfig,
) -> TransferMatrix {
    let mut cells = Vec::with_capacity(train.len() * eval.len());
    for tr in train {
        let samples = collect_samples(tr, config);
        let (predictor, fitted) = match LogisticPredictor::fit(&samples, 0.5) {
            Some(p) => (p, true),
            None => (LogisticPredictor::astra(), false),
        };
        for ev in eval {
            let predictors: Vec<Box<dyn Predictor>> = vec![Box::new(predictor.clone())];
            let alerts = replay(&ev.records, config, &predictors);
            let report = evaluate(&alerts, &ev.hets, &ev.ground_truth);
            let cell = report
                .predictors
                .iter()
                .find(|p| p.name == "logistic")
                .map(|p| TransferCell {
                    train: tr.name.clone(),
                    eval: ev.name.clone(),
                    alerts: p.alerts,
                    precision: p.precision(report.faulty_ranks),
                    fault_recall: p.fault_recall(report.faulty_ranks),
                    median_lead_days: p.median_lead_days(),
                    fitted,
                })
                .unwrap_or(TransferCell {
                    // The predictor never crossed threshold on this
                    // stream: zero alerts, zero recall.
                    train: tr.name.clone(),
                    eval: ev.name.clone(),
                    alerts: 0,
                    precision: 0.0,
                    fault_recall: 0.0,
                    median_lead_days: None,
                    fitted,
                });
            cells.push(cell);
        }
    }
    TransferMatrix {
        trains: train.iter().map(|d| d.name.clone()).collect(),
        evals: eval.iter().map(|d| d.name.clone()).collect(),
        cells,
    }
}

impl TransferMatrix {
    /// The cell for a (train, eval) name pair.
    pub fn cell(&self, train: &str, eval: &str) -> Option<&TransferCell> {
        self.cells
            .iter()
            .find(|c| c.train == train && c.eval == eval)
    }

    /// Render the text matrix the CLI prints: one row per training set,
    /// one column per evaluation set, each cell
    /// `precision/fault-recall/median-lead`. Cells where the fit fell
    /// back to frozen weights are suffixed `*`.
    pub fn render(&self) -> String {
        const CELL_WIDTH: usize = 22;
        let name_width = self
            .trains
            .iter()
            .map(|t| t.len())
            .max()
            .unwrap_or(0)
            .max("train\\eval".len());
        let mut out = String::from(
            "predictor transfer matrix — cell: precision / fault-recall / median-lead\n",
        );
        out.push_str(&format!("{:<name_width$}", "train\\eval"));
        for ev in &self.evals {
            out.push_str(&format!("  {ev:<CELL_WIDTH$}"));
        }
        out.push('\n');
        let mut any_fallback = false;
        for tr in &self.trains {
            out.push_str(&format!("{tr:<name_width$}"));
            for ev in &self.evals {
                let text = match self.cell(tr, ev) {
                    Some(c) => {
                        let lead = c
                            .median_lead_days
                            .map(|d| format!("{d:.1}d"))
                            .unwrap_or_else(|| "-".into());
                        let mark = if c.fitted {
                            ""
                        } else {
                            any_fallback = true;
                            "*"
                        };
                        format!("{:.3} / {:.3} / {lead}{mark}", c.precision, c.fault_recall)
                    }
                    None => "-".into(),
                };
                out.push_str(&format!("  {text:<CELL_WIDTH$}"));
            }
            // Trailing spaces from the fixed-width cells would make the
            // output depend on column count; trim per line.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        if any_fallback {
            out.push_str("* fit degenerate on this training set; frozen astra weights used\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_logs::HetKind;
    use astra_topology::{DimmId, DimmSlot, NodeId, PhysAddr, RankId, SocketId};
    use astra_util::CalDate;

    fn at(minute: i64) -> Minute {
        CalDate::new(2019, 3, 1).midnight().plus(minute)
    }

    fn rec(minute: i64, node: u32, addr: u64, bit: u16) -> CeRecord {
        CeRecord {
            time: at(minute),
            node: NodeId(node),
            socket: SocketId(0),
            slot: DimmSlot::from_index(0).unwrap(),
            rank: RankId(0),
            bank: (addr % 4) as u16,
            row: None,
            col: (addr % 32) as u16,
            bit_pos: bit,
            addr: PhysAddr(addr),
            syndrome: 0,
        }
    }

    fn due(minute: i64, node: u32) -> HetRecord {
        HetRecord {
            time: at(minute),
            node: NodeId(node),
            kind: HetKind::UncorrectableEcc,
            severity: HetKind::UncorrectableEcc.severity(),
            slot: Some(DimmSlot::from_index(0).unwrap()),
        }
    }

    /// A toy dataset: nodes 0..bad_nodes are noisy, spread-out, and DUE;
    /// the rest log one quiet CE each.
    fn toy(name: &str, bad_nodes: u32, quiet_nodes: u32) -> TransferDataset {
        let mut records = Vec::new();
        let mut hets = Vec::new();
        for n in 0..bad_nodes {
            for i in 0..200i64 {
                records.push(rec(
                    i * 10,
                    n,
                    0x1000 + (i as u64 * 64) % 4096,
                    (i % 7) as u16,
                ));
            }
            hets.push(due(3000, n));
        }
        for n in bad_nodes..bad_nodes + quiet_nodes {
            records.push(rec(50, n, 0x40, 3));
        }
        records.sort_by_key(|r| (r.time, r.node.0));
        TransferDataset {
            name: name.to_string(),
            records,
            hets,
            ground_truth: Vec::new(),
        }
    }

    #[test]
    fn samples_label_due_ranks_positive() {
        let ds = toy("toy", 3, 20);
        let samples = collect_samples(&ds, &PredictConfig::default());
        assert_eq!(samples.len(), 23, "one sample per rank that logged CEs");
        let positives = samples.iter().filter(|(_, l)| *l).count();
        assert_eq!(positives, 3);
        // The noisy ranks accumulated real spread.
        for (f, label) in &samples {
            if *label {
                assert!(f.total_ces >= 200);
                assert!(f.distinct_addrs > 1);
            }
        }
    }

    #[test]
    fn matrix_has_all_pairs_and_renders() {
        let a = toy("alpha", 3, 20);
        let b = toy("beta", 2, 30);
        let m = transfer_matrix(&[a.clone(), b.clone()], &[a, b], &PredictConfig::default());
        assert_eq!(m.cells.len(), 4);
        assert!(m.cell("alpha", "beta").is_some());
        let text = m.render();
        assert!(text.contains("train\\eval"), "{text}");
        assert!(text.lines().count() >= 3, "{text}");
        // A fit on clearly separable toy data must not fall back.
        assert!(m.cells.iter().all(|c| c.fitted), "{text}");
    }

    #[test]
    fn degenerate_training_set_falls_back_and_is_marked() {
        // All-negative training set: fit() has no positive class.
        let neg = toy("neg", 0, 10);
        let ev = toy("ev", 2, 10);
        let m = transfer_matrix(&[neg], &[ev], &PredictConfig::default());
        assert!(!m.cells[0].fitted);
        assert!(m.render().contains('*'));
    }

    /// Injected-fault truth must NOT leak into training labels: in the
    /// simulator every CE-logging rank hosts a fault, so fault-as-label
    /// would collapse every training set to a single class.
    #[test]
    fn ground_truth_faults_do_not_label_positive() {
        use astra_faultsim::{Fault, FaultMode};
        use astra_topology::DramCoord;
        let mut ds = toy("gt", 0, 5);
        // A silent injected fault (no DUE) on node 2's rank.
        let slot = DimmSlot::from_index(0).unwrap();
        ds.ground_truth = vec![GroundTruthFault {
            fault: Fault {
                dimm: DimmId {
                    node: NodeId(2),
                    slot,
                },
                rank: RankId(0),
                mode: FaultMode::SingleBit,
                anchor: DramCoord {
                    slot,
                    rank: RankId(0),
                    bank: 0,
                    row: 0,
                    col: 0,
                },
                bit: 3,
                onset: at(0),
                error_budget: 1,
            },
            offered_errors: 1,
        }];
        let samples = collect_samples(&ds, &PredictConfig::default());
        assert_eq!(samples.iter().filter(|(_, l)| *l).count(), 0);
    }
}

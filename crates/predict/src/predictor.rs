//! Pluggable UE-risk predictors.
//!
//! A predictor maps a [`FeatureVector`] to a risk score in `[0, 1]` and
//! fires when the score crosses its threshold. Two implementations ship:
//!
//! * [`RulePredictor`] — the kind of threshold policy an operator would
//!   deploy first (and what DDR5 "predictive failure analysis" registers
//!   implement in silicon): fire on window CE volume, spatial spread, or
//!   escalation past a ladder rung.
//! * [`LogisticPredictor`] — a logistic score over log-transformed
//!   features. The workspace intentionally has no ML dependency, so the
//!   weights come from per-feature univariate OLS fits
//!   ([`astra_stats::linear_fit`]) against labels, each weight damped by
//!   its fit's r²; that is crude next to a real solver but is fit from
//!   data, monotone in the evidence, and fully deterministic.

use crate::features::{EscalationLevel, FeatureVector};
use astra_stats::linear_fit;

/// A streaming UE-risk scorer.
///
/// `Send + Sync` because analyzer state that embeds predictors moves
/// across threads: the serve daemon runs each site's analyzer on a
/// dedicated ingest thread.
pub trait Predictor: Send + Sync {
    /// Stable short name used in alerts, reports, and metric names.
    fn name(&self) -> &'static str;

    /// Risk score in `[0, 1]`.
    fn score(&self, features: &FeatureVector) -> f64;

    /// Alert threshold on [`Predictor::score`].
    fn threshold(&self) -> f64;

    /// Whether this feature snapshot crosses the alert threshold.
    fn fires(&self, features: &FeatureVector) -> bool {
        self.score(features) >= self.threshold()
    }
}

/// Threshold rules over the feature state.
///
/// The score is the *largest* fractional satisfaction across the rules, so
/// it rises smoothly toward 1.0 as any single rule approaches firing; the
/// predictor fires when at least one rule is fully met.
#[derive(Debug, Clone)]
pub struct RulePredictor {
    /// Fire when the leaky-window CE count reaches this many errors.
    pub window_ces: f64,
    /// Fire when the footprint escalates to this rung or beyond.
    pub escalation: EscalationLevel,
    /// Fire when this many distinct columns have been touched.
    pub distinct_cols: u32,
    /// Ignore ranks with fewer lifetime CEs than this (warm-up guard: the
    /// paper's §4 shows most CE-ever DIMMs log a handful of errors and
    /// never fail).
    pub min_total_ces: u64,
}

impl RulePredictor {
    /// Thresholds tuned for the Astra-profile simulation: the window must
    /// see sustained activity well beyond the transient-fault background,
    /// or the footprint must have escalated to a multi-address mode.
    pub fn astra() -> RulePredictor {
        RulePredictor {
            window_ces: 24.0,
            escalation: EscalationLevel::SingleColumn,
            distinct_cols: 4,
            min_total_ces: 8,
        }
    }
}

impl Predictor for RulePredictor {
    fn name(&self) -> &'static str {
        "rule"
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        if f.total_ces < self.min_total_ces {
            return 0.0;
        }
        let window = (f.window_ces / self.window_ces).min(1.0);
        let esc = f64::from(f.escalation.rung()) / f64::from(self.escalation.rung().max(1));
        let cols = f64::from(f.distinct_cols) / f64::from(self.distinct_cols.max(1));
        window.max(esc.min(1.0)).max(cols.min(1.0))
    }

    fn threshold(&self) -> f64 {
        1.0
    }
}

/// Number of inputs to the logistic score (see [`transform`]).
pub const LOGISTIC_DIM: usize = 6;

/// Logistic score over log-transformed features.
#[derive(Debug, Clone)]
pub struct LogisticPredictor {
    /// Per-feature weights (see [`transform`] for the feature order).
    pub weights: [f64; LOGISTIC_DIM],
    /// Additive bias.
    pub bias: f64,
    /// Alert threshold on the sigmoid output.
    pub alert_threshold: f64,
}

/// Transform a feature snapshot into the logistic input vector. Count-like
/// features get `ln(1 + x)` so the heavy-tailed CE distributions (§3.2's
/// four-orders-of-magnitude spread) don't let one feature swamp the rest.
pub fn transform(f: &FeatureVector) -> [f64; LOGISTIC_DIM] {
    [
        (1.0 + f.window_ces).ln(),
        (1.0 + f.total_ces as f64).ln(),
        f64::from(f.distinct_cols.max(f.distinct_banks)),
        (1.0 + f64::from(f.distinct_addrs)).ln(),
        f.dominant_lane_share,
        f64::from(f.escalation.rung()),
    ]
}

impl LogisticPredictor {
    /// Weights fit offline (via [`LogisticPredictor::fit`]) on a 4-rack
    /// Astra-profile simulation, then frozen here so the CLI scores
    /// without a training pass. Spread features dominate; the
    /// dominant-lane share carries a small negative weight because a
    /// perfectly sticky single bit is the *least* dangerous footprint.
    pub fn astra() -> LogisticPredictor {
        LogisticPredictor {
            weights: [0.55, 0.50, 0.35, 0.80, -0.40, 0.90],
            bias: -6.0,
            alert_threshold: 0.5,
        }
    }

    /// Fit weights from labeled snapshots (`true` = the rank later
    /// produced an uncorrectable error or hosted an injected fault).
    ///
    /// Each weight is the slope of a univariate OLS fit of the label on
    /// that transformed feature, damped by the fit's r² so features that
    /// explain nothing contribute nothing. The bias centres the decision
    /// boundary halfway between the class means of the weighted sum.
    /// Returns `None` when either class is absent or every feature is
    /// degenerate.
    pub fn fit(
        samples: &[(FeatureVector, bool)],
        alert_threshold: f64,
    ) -> Option<LogisticPredictor> {
        let positives = samples.iter().filter(|(_, label)| *label).count();
        if positives == 0 || positives == samples.len() {
            return None;
        }
        let xs: Vec<[f64; LOGISTIC_DIM]> = samples.iter().map(|(f, _)| transform(f)).collect();
        let ys: Vec<f64> = samples
            .iter()
            .map(|(_, label)| if *label { 1.0 } else { 0.0 })
            .collect();

        let mut weights = [0.0; LOGISTIC_DIM];
        let mut any = false;
        for dim in 0..LOGISTIC_DIM {
            let col: Vec<f64> = xs.iter().map(|x| x[dim]).collect();
            if let Some(fit) = linear_fit(&col, &ys) {
                weights[dim] = fit.slope * fit.r_squared;
                any |= weights[dim] != 0.0;
            }
        }
        if !any {
            return None;
        }

        let dot =
            |x: &[f64; LOGISTIC_DIM]| -> f64 { x.iter().zip(&weights).map(|(a, w)| a * w).sum() };
        let (mut pos_sum, mut neg_sum) = (0.0, 0.0);
        for (x, y) in xs.iter().zip(&ys) {
            if *y > 0.5 {
                pos_sum += dot(x);
            } else {
                neg_sum += dot(x);
            }
        }
        let midpoint =
            (pos_sum / positives as f64 + neg_sum / (samples.len() - positives) as f64) / 2.0;
        Some(LogisticPredictor {
            weights,
            bias: -midpoint,
            alert_threshold,
        })
    }
}

impl Predictor for LogisticPredictor {
    fn name(&self) -> &'static str {
        "logistic"
    }

    fn score(&self, f: &FeatureVector) -> f64 {
        let x = transform(f);
        let z: f64 = self.bias + x.iter().zip(&self.weights).map(|(a, w)| a * w).sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }

    fn threshold(&self) -> f64 {
        self.alert_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> FeatureVector {
        FeatureVector {
            window_ces: 1.0,
            total_ces: 1,
            distinct_banks: 1,
            distinct_cols: 1,
            distinct_addrs: 1,
            distinct_lanes: 1,
            dominant_lane_share: 1.0,
            minutes_since_first: 10,
            escalation: EscalationLevel::SingleBit,
        }
    }

    fn loud() -> FeatureVector {
        FeatureVector {
            window_ces: 400.0,
            total_ces: 2000,
            distinct_banks: 8,
            distinct_cols: 40,
            distinct_addrs: 900,
            distinct_lanes: 1,
            dominant_lane_share: 1.0,
            minutes_since_first: 10_000,
            escalation: EscalationLevel::RankLevel,
        }
    }

    #[test]
    fn rule_fires_on_loud_not_quiet() {
        let p = RulePredictor::astra();
        assert!(!p.fires(&quiet()));
        assert!(p.fires(&loud()));
        assert!(p.score(&quiet()) < p.score(&loud()));
    }

    #[test]
    fn rule_warmup_suppresses_early_escalation() {
        let p = RulePredictor::astra();
        let mut f = loud();
        f.total_ces = p.min_total_ces - 1;
        assert_eq!(p.score(&f), 0.0);
    }

    #[test]
    fn logistic_astra_orders_risk() {
        let p = LogisticPredictor::astra();
        let lo = p.score(&quiet());
        let hi = p.score(&loud());
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(hi > lo);
        assert!(p.fires(&loud()));
        assert!(!p.fires(&quiet()));
    }

    #[test]
    fn fit_separates_labeled_classes() {
        let mut samples = Vec::new();
        for i in 0..20u32 {
            let mut f = quiet();
            f.window_ces = 1.0 + f64::from(i % 3);
            samples.push((f, false));
            let mut g = loud();
            g.distinct_addrs = 500 + i;
            samples.push((g, true));
        }
        let p = LogisticPredictor::fit(&samples, 0.5).expect("separable data fits");
        assert!(p.score(&loud()) > p.score(&quiet()));
        assert!(p.fires(&loud()));
        assert!(!p.fires(&quiet()));
    }

    #[test]
    fn fit_rejects_single_class() {
        let samples = vec![(quiet(), false), (quiet(), false)];
        assert!(LogisticPredictor::fit(&samples, 0.5).is_none());
        let samples = vec![(loud(), true)];
        assert!(LogisticPredictor::fit(&samples, 0.5).is_none());
    }
}

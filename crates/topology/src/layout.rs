//! Sensor placement and airflow layout.
//!
//! Each Astra node carries six sensors (§2.2): one CPU temperature sensor
//! per socket and two DIMM temperature sensors per socket, each DIMM sensor
//! covering a group of four slots:
//!
//! * `A,C,E,G` — socket 0, group 0
//! * `H,F,D,B` — socket 0, group 1
//! * `I,K,M,O` — socket 1, group 0
//! * `J,L,N,P` — socket 1, group 1
//!
//! A seventh per-node sensor reports DC power draw.
//!
//! Cooling flows **front to back** (Figure 1): cool air crosses socket 1
//! ("CPU2") and its DIMMs first, then reaches socket 0 ("CPU1") pre-warmed.
//! [`airflow_position`] encodes that order as a 0.0–1.0 coordinate used by
//! the thermal model — larger means further downstream, i.e. hotter.

use crate::ids::{DimmSlot, SocketId};

/// One of the four DIMM sensor groups on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimmGroup(u8);

impl DimmGroup {
    /// All four groups in sensor-index order.
    pub const ALL: [DimmGroup; 4] = [DimmGroup(0), DimmGroup(1), DimmGroup(2), DimmGroup(3)];

    /// Construct from a group index 0–3.
    pub fn from_index(idx: u8) -> Option<Self> {
        (idx < 4).then_some(DimmGroup(idx))
    }

    /// Group index 0–3.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The group covering a DIMM slot.
    pub fn of_slot(slot: DimmSlot) -> Self {
        // A,C,E,G -> 0; B,D,F,H -> 1; I,K,M,O -> 2; J,L,N,P -> 3.
        let idx = slot.index() as u8;
        DimmGroup((idx / 8) * 2 + (idx % 2))
    }

    /// The socket whose channels this group serves.
    pub fn socket(self) -> SocketId {
        SocketId(self.0 / 2)
    }

    /// The four slots covered by this group, in letter order.
    pub fn slots(self) -> [DimmSlot; 4] {
        let base = (self.0 / 2) * 8 + (self.0 % 2);
        [
            DimmSlot::from_index(base).unwrap(),
            DimmSlot::from_index(base + 2).unwrap(),
            DimmSlot::from_index(base + 4).unwrap(),
            DimmSlot::from_index(base + 6).unwrap(),
        ]
    }

    /// Label used in figure legends, e.g. `"DIMMs A,C,E,G"`.
    pub fn label(self) -> String {
        let letters: Vec<String> = self
            .slots()
            .iter()
            .map(|s| s.letter().to_string())
            .collect();
        format!("DIMMs {}", letters.join(","))
    }

    /// Label used in the Fig 14 panels, e.g. `"CPU1 DIMMs 1-4"`.
    pub fn panel_label(self) -> String {
        let half = if self.0.is_multiple_of(2) {
            "1-4"
        } else {
            "5-8"
        };
        format!("{} DIMMs {}", self.socket().cpu_label(), half)
    }
}

/// Kind of per-node sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SensorKind {
    /// CPU temperature sensor for a socket.
    CpuTemp(SocketId),
    /// DIMM-group temperature sensor.
    DimmTemp(DimmGroup),
    /// Node DC power draw sensor.
    DcPower,
}

/// A sensor identified by a dense per-node index:
/// 0–1 CPU temps, 2–5 DIMM group temps, 6 DC power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SensorId(u8);

impl SensorId {
    /// Sensors per node (6 temperature + 1 power).
    pub const COUNT: usize = 7;

    /// Construct from a dense index.
    pub fn from_index(idx: u8) -> Option<Self> {
        (idx < Self::COUNT as u8).then_some(SensorId(idx))
    }

    /// Dense per-node index 0–6.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// What this sensor measures.
    pub fn kind(self) -> SensorKind {
        match self.0 {
            0 => SensorKind::CpuTemp(SocketId(0)),
            1 => SensorKind::CpuTemp(SocketId(1)),
            2..=5 => SensorKind::DimmTemp(DimmGroup(self.0 - 2)),
            _ => SensorKind::DcPower,
        }
    }

    /// The sensor for a socket's CPU temperature.
    pub fn cpu(socket: SocketId) -> Self {
        SensorId(socket.0)
    }

    /// The sensor covering a DIMM group.
    pub fn dimm_group(group: DimmGroup) -> Self {
        SensorId(2 + group.0)
    }

    /// The sensor covering a DIMM slot's temperature.
    pub fn for_slot(slot: DimmSlot) -> Self {
        Self::dimm_group(DimmGroup::of_slot(slot))
    }

    /// The node DC power sensor.
    pub fn dc_power() -> Self {
        SensorId(6)
    }

    /// All sensors in index order.
    pub fn all() -> impl Iterator<Item = SensorId> {
        (0..Self::COUNT as u8).map(SensorId)
    }

    /// Short name used in telemetry records, e.g. `cpu0`, `dimmg2`, `power`.
    pub fn name(self) -> String {
        match self.kind() {
            SensorKind::CpuTemp(s) => format!("cpu{}", s.0),
            SensorKind::DimmTemp(g) => format!("dimmg{}", g.index()),
            SensorKind::DcPower => "power".to_string(),
        }
    }

    /// Parse the format produced by [`SensorId::name`].
    pub fn parse_name(s: &str) -> Option<Self> {
        match s {
            "cpu0" => Some(SensorId(0)),
            "cpu1" => Some(SensorId(1)),
            "power" => Some(SensorId(6)),
            _ => {
                let g: u8 = s.strip_prefix("dimmg")?.parse().ok()?;
                (g < 4).then(|| SensorId(2 + g))
            }
        }
    }
}

/// Airflow coordinate of a socket: 0.0 = front (coolest), 1.0 = back
/// (hottest). Socket 1 ("CPU2") is upstream per Figure 1.
pub fn airflow_position(socket: SocketId) -> f64 {
    match socket.0 {
        1 => 0.25,
        _ => 0.75,
    }
}

/// Airflow coordinate of a DIMM group. Groups inherit their socket's
/// position with a small offset distinguishing the two groups per socket —
/// the downstream group of each socket sits slightly hotter, which is what
/// produces the per-slot fault skew the paper observes (slots J, E, I, P
/// high; A, K, L, M, N low are *not* purely thermal in the paper, so the
/// offsets here are deliberately small).
pub fn group_airflow_position(group: DimmGroup) -> f64 {
    let base = airflow_position(group.socket());
    base + if group.index().is_multiple_of(2) {
        -0.05
    } else {
        0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_expected_slots() {
        let letters = |g: DimmGroup| -> String { g.slots().iter().map(|s| s.letter()).collect() };
        assert_eq!(letters(DimmGroup(0)), "ACEG");
        assert_eq!(letters(DimmGroup(1)), "BDFH");
        assert_eq!(letters(DimmGroup(2)), "IKMO");
        assert_eq!(letters(DimmGroup(3)), "JLNP");
    }

    #[test]
    fn of_slot_inverts_slots() {
        for g in DimmGroup::ALL {
            for slot in g.slots() {
                assert_eq!(DimmGroup::of_slot(slot), g);
            }
        }
    }

    #[test]
    fn group_sockets() {
        assert_eq!(DimmGroup(0).socket(), SocketId(0));
        assert_eq!(DimmGroup(1).socket(), SocketId(0));
        assert_eq!(DimmGroup(2).socket(), SocketId(1));
        assert_eq!(DimmGroup(3).socket(), SocketId(1));
    }

    #[test]
    fn sensor_indices_roundtrip() {
        for s in SensorId::all() {
            assert_eq!(SensorId::from_index(s.index() as u8), Some(s));
            assert_eq!(SensorId::parse_name(&s.name()), Some(s));
        }
        assert_eq!(SensorId::from_index(7), None);
        assert_eq!(SensorId::parse_name("dimmg4"), None);
        assert_eq!(SensorId::parse_name("bogus"), None);
    }

    #[test]
    fn sensor_kinds() {
        assert_eq!(
            SensorId::cpu(SocketId(1)).kind(),
            SensorKind::CpuTemp(SocketId(1))
        );
        assert_eq!(SensorId::dc_power().kind(), SensorKind::DcPower);
        let slot_j = DimmSlot::from_letter('J').unwrap();
        assert_eq!(
            SensorId::for_slot(slot_j).kind(),
            SensorKind::DimmTemp(DimmGroup(3))
        );
    }

    #[test]
    fn airflow_cpu2_is_upstream() {
        assert!(airflow_position(SocketId(1)) < airflow_position(SocketId(0)));
    }

    #[test]
    fn group_airflow_within_unit_interval() {
        for g in DimmGroup::ALL {
            let p = group_airflow_position(g);
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(DimmGroup(0).label(), "DIMMs A,C,E,G");
        assert_eq!(DimmGroup(3).label(), "DIMMs J,L,N,P");
        assert_eq!(DimmGroup(0).panel_label(), "CPU1 DIMMs 1-4");
        assert_eq!(DimmGroup(3).panel_label(), "CPU2 DIMMs 5-8");
    }
}

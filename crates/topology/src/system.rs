//! The system-level configuration: how many racks, and iterators over the
//! hierarchy.
//!
//! [`SystemConfig::astra`] is the full 2,592-node machine. Tests and benches
//! use [`SystemConfig::scaled`] to shrink the rack count while keeping every
//! structural ratio (chassis per rack, nodes per chassis, DIMMs per node)
//! identical, so distribution *shapes* are preserved at lower cost.

use crate::geometry::DramGeometry;
use crate::ids::{DimmId, DimmSlot, NodeId, RackId, RackRegion};

/// Static description of a machine in the Astra family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of racks.
    pub racks: u32,
    /// Chassis per rack (18 on Astra, stacked vertically).
    pub chassis_per_rack: u32,
    /// Nodes per chassis (4 on Astra).
    pub nodes_per_chassis: u32,
    /// DRAM geometry of every DIMM.
    pub geometry: DramGeometry,
}

impl SystemConfig {
    /// The full Astra machine: 36 racks, 2,592 nodes, 41,472 DIMMs.
    pub fn astra() -> Self {
        SystemConfig {
            racks: 36,
            chassis_per_rack: 18,
            nodes_per_chassis: 4,
            geometry: DramGeometry::ASTRA,
        }
    }

    /// A structurally identical machine with the given rack count.
    ///
    /// Panics if `racks == 0`.
    pub fn scaled(racks: u32) -> Self {
        assert!(racks > 0, "a machine needs at least one rack");
        SystemConfig {
            racks,
            ..Self::astra()
        }
    }

    /// Nodes per rack.
    pub fn nodes_per_rack(&self) -> u32 {
        self.chassis_per_rack * self.nodes_per_chassis
    }

    /// Total node count.
    pub fn node_count(&self) -> u32 {
        self.racks * self.nodes_per_rack()
    }

    /// Total socket count (two per node).
    pub fn socket_count(&self) -> u32 {
        self.node_count() * 2
    }

    /// Total DIMM count (sixteen per node).
    pub fn dimm_count(&self) -> u64 {
        u64::from(self.node_count()) * DimmSlot::COUNT as u64
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterate over all DIMMs in (node, slot) order.
    pub fn dimms(&self) -> impl Iterator<Item = DimmId> {
        let count = self.node_count();
        (0..count).flat_map(|n| {
            DimmSlot::all().map(move |slot| DimmId {
                node: NodeId(n),
                slot,
            })
        })
    }

    /// Iterate over the nodes of one rack.
    pub fn rack_nodes(&self, rack: RackId) -> impl Iterator<Item = NodeId> {
        let per = self.nodes_per_rack();
        let start = rack.0 * per;
        (start..start + per).map(NodeId)
    }

    /// Rack of a node under this configuration.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        node.rack(self.nodes_per_rack())
    }

    /// Rack region of a node under this configuration.
    pub fn region_of(&self, node: NodeId) -> RackRegion {
        node.region(self.nodes_per_rack(), self.chassis_per_rack)
    }

    /// Whether `node` is a valid id for this configuration.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 < self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astra_headline_counts() {
        let sys = SystemConfig::astra();
        assert_eq!(sys.node_count(), 2_592);
        assert_eq!(sys.socket_count(), 5_184);
        assert_eq!(sys.dimm_count(), 41_472);
        assert_eq!(sys.nodes_per_rack(), 72);
    }

    #[test]
    fn scaled_preserves_ratios() {
        let sys = SystemConfig::scaled(6);
        assert_eq!(sys.node_count(), 432);
        assert_eq!(sys.dimm_count(), 6_912);
        assert_eq!(sys.nodes_per_rack(), 72);
    }

    #[test]
    fn node_iteration_matches_count() {
        let sys = SystemConfig::scaled(2);
        assert_eq!(sys.nodes().count() as u32, sys.node_count());
        assert_eq!(sys.dimms().count() as u64, sys.dimm_count());
    }

    #[test]
    fn rack_nodes_partition_the_machine() {
        let sys = SystemConfig::scaled(3);
        let mut seen = vec![false; sys.node_count() as usize];
        for rack in 0..sys.racks {
            for node in sys.rack_nodes(RackId(rack)) {
                assert_eq!(sys.rack_of(node), RackId(rack));
                assert!(!seen[node.0 as usize], "node visited twice");
                seen[node.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn regions_are_balanced_per_rack() {
        let sys = SystemConfig::astra();
        let mut counts = [0u32; 3];
        for node in sys.rack_nodes(RackId(7)) {
            counts[sys.region_of(node).index()] += 1;
        }
        assert_eq!(counts, [24, 24, 24]);
    }

    #[test]
    fn contains_checks_bounds() {
        let sys = SystemConfig::scaled(1);
        assert!(sys.contains(NodeId(0)));
        assert!(sys.contains(NodeId(71)));
        assert!(!sys.contains(NodeId(72)));
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_panics() {
        SystemConfig::scaled(0);
    }
}

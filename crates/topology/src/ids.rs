//! Strongly-typed identifiers for Astra's physical hierarchy.
//!
//! Node numbering follows rack-major order: node `n` lives in rack
//! `n / 72`, chassis `(n % 72) / 4` (chassis 0 at the *bottom* of the rack),
//! position `n % 4` within the chassis. The positional analyses of §3.4
//! divide each 18-chassis rack into three 6-chassis [`RackRegion`]s.

use std::fmt;

/// Identifier of a rack, 0-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub u32);

/// Identifier of a chassis within a rack, 0-based from the **bottom**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChassisId(pub u32);

/// Vertical region of a rack, per the §3.4 analysis: 18 chassis split into
/// three groups of six.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RackRegion {
    /// Chassis 0–5.
    Bottom,
    /// Chassis 6–11.
    Middle,
    /// Chassis 12–17.
    Top,
}

impl RackRegion {
    /// All regions, bottom to top.
    pub const ALL: [RackRegion; 3] = [RackRegion::Bottom, RackRegion::Middle, RackRegion::Top];

    /// Region containing the given chassis (assuming `chassis_per_rack`
    /// divides into three equal groups).
    pub fn of_chassis(chassis: ChassisId, chassis_per_rack: u32) -> Self {
        let third = (chassis_per_rack / 3).max(1);
        match chassis.0 / third {
            0 => RackRegion::Bottom,
            1 => RackRegion::Middle,
            _ => RackRegion::Top,
        }
    }

    /// Stable index for array-indexed aggregation (bottom = 0).
    pub fn index(self) -> usize {
        match self {
            RackRegion::Bottom => 0,
            RackRegion::Middle => 1,
            RackRegion::Top => 2,
        }
    }

    /// Lower-case name as used in figure labels.
    pub fn name(self) -> &'static str {
        match self {
            RackRegion::Bottom => "bottom",
            RackRegion::Middle => "middle",
            RackRegion::Top => "top",
        }
    }
}

impl fmt::Display for RackRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a compute node: a dense index in rack-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Nodes per chassis on Astra.
    pub const PER_CHASSIS: u32 = 4;

    /// Rack containing this node, given nodes-per-rack.
    pub fn rack(self, nodes_per_rack: u32) -> RackId {
        RackId(self.0 / nodes_per_rack)
    }

    /// Chassis within the rack containing this node.
    pub fn chassis(self, nodes_per_rack: u32) -> ChassisId {
        ChassisId((self.0 % nodes_per_rack) / Self::PER_CHASSIS)
    }

    /// Position of the node within its chassis, 0–3.
    pub fn slot_in_chassis(self) -> u32 {
        self.0 % Self::PER_CHASSIS
    }

    /// Vertical region of the rack this node sits in.
    pub fn region(self, nodes_per_rack: u32, chassis_per_rack: u32) -> RackRegion {
        RackRegion::of_chassis(self.chassis(nodes_per_rack), chassis_per_rack)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:04}", self.0)
    }
}

/// CPU socket within a node: 0 or 1.
///
/// Per Figure 1 of the paper, cooling flows front-to-back and reaches
/// socket 1 ("CPU2") *before* socket 0 ("CPU1"), so CPU1 runs hotter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u8);

impl SocketId {
    /// Both sockets.
    pub const ALL: [SocketId; 2] = [SocketId(0), SocketId(1)];

    /// Human label used by the paper's figures: socket 0 is "CPU1".
    pub fn cpu_label(self) -> &'static str {
        match self.0 {
            0 => "CPU1",
            _ => "CPU2",
        }
    }
}

/// DIMM slot letter, `A`–`P`. Slots A–H belong to socket 0, I–P to socket 1
/// (Figure 7 caption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimmSlot(u8);

impl DimmSlot {
    /// Number of DIMM slots per node.
    pub const COUNT: usize = 16;

    /// Construct from a slot index 0–15 (0 = `A`).
    pub fn from_index(idx: u8) -> Option<Self> {
        (idx < 16).then_some(DimmSlot(idx))
    }

    /// Construct from the slot letter `A`–`P` (case-insensitive).
    pub fn from_letter(c: char) -> Option<Self> {
        let c = c.to_ascii_uppercase();
        ('A'..='P').contains(&c).then(|| DimmSlot(c as u8 - b'A'))
    }

    /// Slot index, 0–15.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Slot letter, `A`–`P`.
    pub fn letter(self) -> char {
        (b'A' + self.0) as char
    }

    /// The socket this slot's memory channel belongs to.
    pub fn socket(self) -> SocketId {
        SocketId(self.0 / 8)
    }

    /// The memory channel within the socket, 0–7.
    pub fn channel(self) -> u8 {
        self.0 % 8
    }

    /// Iterate over all sixteen slots in letter order.
    pub fn all() -> impl Iterator<Item = DimmSlot> {
        (0..16).map(DimmSlot)
    }
}

impl fmt::Display for DimmSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// DIMM rank: which side of the (dual-rank) DIMM, 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RankId(pub u8);

impl RankId {
    /// Both ranks of a dual-rank DIMM.
    pub const ALL: [RankId; 2] = [RankId(0), RankId(1)];
}

/// A specific DIMM in the system: a node plus a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimmId {
    /// Host node.
    pub node: NodeId,
    /// Slot letter on that node.
    pub slot: DimmSlot,
}

impl DimmId {
    /// Dense index of this DIMM across the whole system (16 per node).
    pub fn dense_index(self) -> u64 {
        u64::from(self.node.0) * 16 + self.slot.index() as u64
    }

    /// Inverse of [`DimmId::dense_index`].
    pub fn from_dense_index(idx: u64) -> Self {
        DimmId {
            node: NodeId((idx / 16) as u32),
            slot: DimmSlot::from_index((idx % 16) as u8).expect("mod 16 < 16"),
        }
    }
}

impl fmt::Display for DimmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES_PER_RACK: u32 = 72;
    const CHASSIS_PER_RACK: u32 = 18;

    #[test]
    fn node_rack_chassis_math() {
        let n = NodeId(0);
        assert_eq!(n.rack(NODES_PER_RACK), RackId(0));
        assert_eq!(n.chassis(NODES_PER_RACK), ChassisId(0));
        assert_eq!(n.slot_in_chassis(), 0);

        let n = NodeId(71);
        assert_eq!(n.rack(NODES_PER_RACK), RackId(0));
        assert_eq!(n.chassis(NODES_PER_RACK), ChassisId(17));
        assert_eq!(n.slot_in_chassis(), 3);

        let n = NodeId(72);
        assert_eq!(n.rack(NODES_PER_RACK), RackId(1));
        assert_eq!(n.chassis(NODES_PER_RACK), ChassisId(0));

        let n = NodeId(2591);
        assert_eq!(n.rack(NODES_PER_RACK), RackId(35));
        assert_eq!(n.chassis(NODES_PER_RACK), ChassisId(17));
    }

    #[test]
    fn regions_split_rack_in_thirds() {
        assert_eq!(
            RackRegion::of_chassis(ChassisId(0), CHASSIS_PER_RACK),
            RackRegion::Bottom
        );
        assert_eq!(
            RackRegion::of_chassis(ChassisId(5), CHASSIS_PER_RACK),
            RackRegion::Bottom
        );
        assert_eq!(
            RackRegion::of_chassis(ChassisId(6), CHASSIS_PER_RACK),
            RackRegion::Middle
        );
        assert_eq!(
            RackRegion::of_chassis(ChassisId(11), CHASSIS_PER_RACK),
            RackRegion::Middle
        );
        assert_eq!(
            RackRegion::of_chassis(ChassisId(12), CHASSIS_PER_RACK),
            RackRegion::Top
        );
        assert_eq!(
            RackRegion::of_chassis(ChassisId(17), CHASSIS_PER_RACK),
            RackRegion::Top
        );
    }

    #[test]
    fn region_indices_are_stable() {
        assert_eq!(RackRegion::Bottom.index(), 0);
        assert_eq!(RackRegion::Middle.index(), 1);
        assert_eq!(RackRegion::Top.index(), 2);
    }

    #[test]
    fn slot_letters_roundtrip() {
        for slot in DimmSlot::all() {
            assert_eq!(DimmSlot::from_letter(slot.letter()), Some(slot));
            assert_eq!(DimmSlot::from_index(slot.index() as u8), Some(slot));
        }
        assert_eq!(DimmSlot::from_letter('Q'), None);
        assert_eq!(DimmSlot::from_letter('a'), DimmSlot::from_letter('A'));
        assert_eq!(DimmSlot::from_index(16), None);
    }

    #[test]
    fn slot_socket_split() {
        // A-H on socket 0, I-P on socket 1 (Fig 7 caption).
        assert_eq!(DimmSlot::from_letter('A').unwrap().socket(), SocketId(0));
        assert_eq!(DimmSlot::from_letter('H').unwrap().socket(), SocketId(0));
        assert_eq!(DimmSlot::from_letter('I').unwrap().socket(), SocketId(1));
        assert_eq!(DimmSlot::from_letter('P').unwrap().socket(), SocketId(1));
    }

    #[test]
    fn slot_channels_cover_eight_per_socket() {
        let mut ch0: Vec<u8> = DimmSlot::all()
            .filter(|s| s.socket() == SocketId(0))
            .map(|s| s.channel())
            .collect();
        ch0.sort_unstable();
        assert_eq!(ch0, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn dimm_dense_index_roundtrip() {
        for node in [0u32, 1, 2591] {
            for slot in DimmSlot::all() {
                let d = DimmId {
                    node: NodeId(node),
                    slot,
                };
                assert_eq!(DimmId::from_dense_index(d.dense_index()), d);
            }
        }
    }

    #[test]
    fn display_formats() {
        let d = DimmId {
            node: NodeId(17),
            slot: DimmSlot::from_letter('J').unwrap(),
        };
        assert_eq!(d.to_string(), "node0017:J");
        assert_eq!(SocketId(0).cpu_label(), "CPU1");
        assert_eq!(SocketId(1).cpu_label(), "CPU2");
        assert_eq!(RackRegion::Top.to_string(), "top");
    }
}

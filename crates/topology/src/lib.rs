//! Machine model of the Astra petascale Arm system.
//!
//! Astra (§2.2 of the paper) is 36 racks × 18 chassis × 4 nodes = 2,592
//! dual-socket compute nodes. Each socket is a 28-core Marvell ThunderX2
//! with **eight** DDR4-2666 memory channels, one dual-rank 8 GB RDIMM per
//! channel — 16 DIMM slots per node lettered `A`–`P` (A–H on socket 0,
//! I–P on socket 1), 41,472 DIMMs system-wide. Memory is protected by
//! SEC-DED ECC, *not* Chipkill.
//!
//! This crate encodes that structure as types:
//!
//! * [`ids`] — strongly-typed identifiers ([`NodeId`], [`DimmSlot`],
//!   [`SocketId`], [`DimmId`]) with the rack/chassis/region arithmetic the
//!   positional analyses (§3.4) need.
//! * [`geometry`] — DRAM device geometry (ranks, banks, rows, columns, bit
//!   lanes) and the physical-address codec that maps a DRAM coordinate to a
//!   system physical address and back.
//! * [`layout`] — sensor placement (one CPU sensor per socket, one DIMM
//!   sensor per group of four slots) and the front-to-back airflow order
//!   that makes CPU1 run hotter than CPU2.
//! * [`system`] — [`SystemConfig`]: the full Astra configuration plus scaled
//!   variants for tests and benches, with iterators over nodes and DIMMs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod ids;
pub mod layout;
pub mod system;

pub use geometry::{DramCoord, DramGeometry, PhysAddr};
pub use ids::{ChassisId, DimmId, DimmSlot, NodeId, RackId, RackRegion, RankId, SocketId};
pub use layout::{DimmGroup, SensorId, SensorKind};
pub use system::SystemConfig;

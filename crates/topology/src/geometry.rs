//! DRAM device geometry and the physical-address codec.
//!
//! Astra's DIMMs are 8 GB DDR4-2666 dual-rank RDIMMs. We model each rank as
//! 16 banks × 32,768 rows × 128 cacheline-columns of 64-byte lines, which
//! reproduces the structural levels the paper analyzes (rank, bank, column,
//! row, word, bit) without tracking the device-internal x8 chip layout —
//! SEC-DED operates on 64-bit words with 8 check bits, so the word is the
//! smallest unit an error record names, plus the failed bit position within
//! the cache line.
//!
//! The codec packs a [`DramCoord`] into the node-local physical address the
//! CE record reports, in a fixed bit layout:
//!
//! ```text
//!   bit  0..6    byte offset within the 64-byte cache line (0 in CE records)
//!   bit  6..13   column (cache line within the row)
//!   bit 13..17   bank
//!   bit 17..32   row
//!   bit 32..33   rank
//!   bit 33..36   memory channel within the socket
//!   bit 36..37   socket
//! ```
//!
//! Real memory controllers interleave these bits differently, but any fixed
//! bijection preserves the analyses: what matters is that the analyzer can
//! recover the DRAM coordinate the simulator injected.

use crate::ids::{DimmSlot, RankId, SocketId};

/// Geometry of one DRAM rank as modeled in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramGeometry {
    /// Banks per rank.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line columns per row.
    pub cols: u32,
    /// Data bits per ECC word.
    pub word_bits: u32,
    /// Bits per cache line (the unit the CE record's bit position indexes).
    pub cacheline_bits: u32,
}

impl DramGeometry {
    /// The geometry used throughout the workspace for Astra's DIMMs.
    pub const ASTRA: DramGeometry = DramGeometry {
        banks: 16,
        rows: 32_768,
        cols: 128,
        word_bits: 64,
        cacheline_bits: 512,
    };

    /// ECC words per cache line.
    pub fn words_per_line(&self) -> u32 {
        self.cacheline_bits / self.word_bits
    }
}

/// A full DRAM coordinate within one node: slot (socket + channel), rank,
/// bank, row, and column. This is the granularity at which faults live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DramCoord {
    /// DIMM slot (determines socket and channel).
    pub slot: DimmSlot,
    /// Rank within the DIMM.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: u16,
    /// Row within the bank.
    pub row: u32,
    /// Cache-line column within the row.
    pub col: u16,
}

impl DramCoord {
    /// The socket this coordinate's channel belongs to.
    pub fn socket(&self) -> SocketId {
        self.slot.socket()
    }

    /// Encode into a node-local physical address (cache-line aligned).
    pub fn encode(&self, geom: &DramGeometry) -> PhysAddr {
        debug_assert!(u32::from(self.bank) < geom.banks);
        debug_assert!(self.row < geom.rows);
        debug_assert!(u32::from(self.col) < geom.cols);
        let mut addr: u64 = 0;
        addr |= u64::from(self.col) << 6;
        addr |= u64::from(self.bank) << 13;
        addr |= u64::from(self.row) << 17;
        addr |= u64::from(self.rank.0) << 32;
        addr |= u64::from(self.slot.channel()) << 33;
        addr |= u64::from(self.slot.socket().0) << 36;
        PhysAddr(addr)
    }

    /// Decode a node-local physical address back to a DRAM coordinate.
    ///
    /// Returns `None` if any field exceeds the geometry (e.g. a corrupted
    /// log line).
    pub fn decode(addr: PhysAddr, geom: &DramGeometry) -> Option<Self> {
        let a = addr.0;
        let col = ((a >> 6) & 0x7F) as u16;
        let bank = ((a >> 13) & 0xF) as u16;
        let row = ((a >> 17) & 0x7FFF) as u32;
        let rank = ((a >> 32) & 0x1) as u8;
        let channel = ((a >> 33) & 0x7) as u8;
        let socket = ((a >> 36) & 0x1) as u8;
        if a >> 37 != 0 {
            return None;
        }
        if u32::from(col) >= geom.cols || u32::from(bank) >= geom.banks || row >= geom.rows {
            return None;
        }
        let slot = DimmSlot::from_index(socket * 8 + channel)?;
        Some(DramCoord {
            slot,
            rank: RankId(rank),
            bank,
            row,
            col,
        })
    }

    /// The same coordinate with a different column (used when a fault spans
    /// a row) — debug-asserts the column is in range.
    #[must_use]
    pub fn with_col(mut self, col: u16, geom: &DramGeometry) -> Self {
        debug_assert!(u32::from(col) < geom.cols);
        self.col = col;
        self
    }

    /// The same coordinate with a different row (used when a fault spans a
    /// column or bank).
    #[must_use]
    pub fn with_row(mut self, row: u32, geom: &DramGeometry) -> Self {
        debug_assert!(row < geom.rows);
        self.row = row;
        self
    }
}

/// Node-local physical address as reported in a CE record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Format as the `0x…` hex string used in log records.
    pub fn hex(self) -> String {
        format!("{:#012x}", self.0)
    }

    /// Parse a `0x…` hex string.
    pub fn parse_hex(s: &str) -> Option<Self> {
        let digits = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))?;
        u64::from_str_radix(digits, 16).ok().map(PhysAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const GEOM: DramGeometry = DramGeometry::ASTRA;

    #[test]
    fn astra_geometry_capacity_is_8gb_per_dimm() {
        // 2 ranks x banks x rows x cols x 64 bytes == 8 GiB.
        let per_rank = u64::from(GEOM.banks) * u64::from(GEOM.rows) * u64::from(GEOM.cols) * 64;
        assert_eq!(2 * per_rank, 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn words_per_line() {
        assert_eq!(GEOM.words_per_line(), 8);
    }

    #[test]
    fn encode_decode_roundtrip_corners() {
        for slot in DimmSlot::all() {
            for rank in RankId::ALL {
                let coord = DramCoord {
                    slot,
                    rank,
                    bank: 15,
                    row: 32_767,
                    col: 127,
                };
                let addr = coord.encode(&GEOM);
                assert_eq!(DramCoord::decode(addr, &GEOM), Some(coord));
            }
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        // Bits above the codec's 38-bit space must be rejected.
        assert_eq!(DramCoord::decode(PhysAddr(1 << 37), &GEOM), None);
        assert_eq!(DramCoord::decode(PhysAddr(u64::MAX), &GEOM), None);
    }

    #[test]
    fn hex_roundtrip() {
        let a = PhysAddr(0x1234_ABCD);
        assert_eq!(PhysAddr::parse_hex(&a.hex()), Some(a));
        assert_eq!(PhysAddr::parse_hex("garbage"), None);
        assert_eq!(PhysAddr::parse_hex("0xZZZ"), None);
    }

    #[test]
    fn socket_bit_matches_slot() {
        let coord = DramCoord {
            slot: DimmSlot::from_letter('K').unwrap(),
            rank: RankId(0),
            bank: 0,
            row: 0,
            col: 0,
        };
        let addr = coord.encode(&GEOM);
        // Slot K is on socket 1: bit 36 set.
        assert_eq!((addr.0 >> 36) & 1, 1);
        assert_eq!(coord.socket(), SocketId(1));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            slot_idx in 0u8..16,
            rank in 0u8..2,
            bank in 0u16..16,
            row in 0u32..32_768,
            col in 0u16..128,
        ) {
            let coord = DramCoord {
                slot: DimmSlot::from_index(slot_idx).unwrap(),
                rank: RankId(rank),
                bank,
                row,
                col,
            };
            let addr = coord.encode(&GEOM);
            prop_assert_eq!(DramCoord::decode(addr, &GEOM), Some(coord));
        }

        #[test]
        fn prop_encode_is_injective(
            a in (0u8..16, 0u8..2, 0u16..16, 0u32..32_768, 0u16..128),
            b in (0u8..16, 0u8..2, 0u16..16, 0u32..32_768, 0u16..128),
        ) {
            let make = |(s, r, bk, rw, c): (u8, u8, u16, u32, u16)| DramCoord {
                slot: DimmSlot::from_index(s).unwrap(),
                rank: RankId(r),
                bank: bk,
                row: rw,
                col: c,
            };
            let ca = make(a);
            let cb = make(b);
            if ca != cb {
                prop_assert_ne!(ca.encode(&GEOM), cb.encode(&GEOM));
            }
        }
    }
}

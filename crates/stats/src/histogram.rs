//! Histograms and frequency tables.

use std::collections::BTreeMap;

/// Fixed-bin histogram over a closed interval of `f64` values.
///
/// Out-of-range samples are counted in saturating edge bins (recorded
/// separately as underflow/overflow so distribution mass is never silently
/// lost — the sensor datasets contain occasional invalid readings that the
/// caller filters, but a histogram should still be honest about clipping).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo && lo.is_finite() && hi.is_finite(), "bad range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo || x.is_nan() {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Merge another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of samples below the range (plus NaNs).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Left edge of bin `i` (and `bin_edge(bins)` is the upper bound).
    pub fn bin_edge(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * i as f64
    }

    /// Normalized bin heights (sum to 1 over in-range samples; all zeros if
    /// empty).
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Sparse frequency table over integer-keyed categories (node ids, bit
/// positions, addresses, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FreqTable {
    counts: BTreeMap<u64, u64>,
}

impl FreqTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` observations of `key`.
    pub fn add(&mut self, key: u64, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    /// Increment `key` by one.
    pub fn bump(&mut self, key: u64) {
        self.add(key, 1);
    }

    /// Merge another table into this one.
    pub fn merge(&mut self, other: &FreqTable) {
        for (&k, &v) in &other.counts {
            self.add(k, v);
        }
    }

    /// Count for `key` (zero if absent).
    pub fn get(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct keys observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterate `(key, count)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// All counts as a vector (key order).
    pub fn count_values(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// The "distribution of counts": how many keys saw exactly `c`
    /// observations, for each observed `c`. This is the transform behind
    /// Fig 5a (x = faults on a node, y = number of nodes with that count).
    pub fn count_of_counts(&self) -> FreqTable {
        let mut out = FreqTable::new();
        for &c in self.counts.values() {
            out.bump(c);
        }
        out
    }

    /// Keys sorted by descending count (ties broken by key for determinism).
    pub fn keys_by_count_desc(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl FromIterator<u64> for FreqTable {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut t = FreqTable::new();
        for k in iter {
            t.bump(k);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, f64::NAN] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 2); // -0.1 and NaN
        assert_eq!(h.overflow(), 1); // 10.0 is outside [0,10)
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_edge(5) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.push(0.1);
        b.push(0.9);
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 0, 0, 1]);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..1000 {
            h.push(i as f64 / 1000.0);
        }
        let total: f64 = h.normalized().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn histogram_rejects_inverted_range() {
        Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn freq_table_basics() {
        let t: FreqTable = [3u64, 3, 3, 7, 9, 9].into_iter().collect();
        assert_eq!(t.get(3), 3);
        assert_eq!(t.get(7), 1);
        assert_eq!(t.get(42), 0);
        assert_eq!(t.distinct(), 3);
        assert_eq!(t.total(), 6);
    }

    #[test]
    fn count_of_counts() {
        let t: FreqTable = [1u64, 1, 2, 2, 3].into_iter().collect();
        // keys 1 and 2 have count 2; key 3 has count 1.
        let cc = t.count_of_counts();
        assert_eq!(cc.get(2), 2);
        assert_eq!(cc.get(1), 1);
    }

    #[test]
    fn keys_by_count_desc_is_deterministic() {
        let t: FreqTable = [5u64, 5, 4, 4, 1].into_iter().collect();
        assert_eq!(t.keys_by_count_desc(), vec![(4, 2), (5, 2), (1, 1)]);
    }

    #[test]
    fn merge_tables() {
        let mut a: FreqTable = [1u64, 2].into_iter().collect();
        let b: FreqTable = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 2);
        assert_eq!(a.get(3), 1);
    }
}

//! Quantiles and decile bucketing.
//!
//! Deciles follow the construction Schroeder et al. (and §3.3 of the Astra
//! paper) use: sort the samples, split them into ten equal-population
//! buckets, and summarize each bucket by its maximum sample value (the
//! plotted x) plus whatever per-bucket statistic the analysis computes.

/// Linear-interpolated quantile (`q` in `[0, 1]`) of an unsorted sample.
///
/// Returns `None` for an empty sample. Uses the "linear" (type-7) method,
/// matching numpy's default.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted sample (type-7 interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median of an unsorted sample.
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// A decile bucket: the samples (by index into the original data) whose
/// values fall in one tenth of the sorted order.
#[derive(Debug, Clone)]
pub struct DecileBucket {
    /// Largest sample value in the bucket (the x-coordinate in the paper's
    /// decile figures).
    pub max_value: f64,
    /// Indices (into the input slice) of the samples in this bucket.
    pub members: Vec<usize>,
}

/// Split samples into ten equal-population buckets by value.
///
/// Returns fewer than ten buckets when there are fewer than ten samples.
/// Ties are kept in sorted-stable order so bucketing is deterministic.
pub fn deciles(samples: &[f64]) -> Vec<DecileBucket> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..samples.len()).collect();
    order.sort_by(|&a, &b| {
        samples[a]
            .partial_cmp(&samples[b])
            .expect("NaN in decile input")
            .then(a.cmp(&b))
    });
    let n = order.len();
    let buckets = n.min(10);
    let mut out = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let start = b * n / buckets;
        let end = (b + 1) * n / buckets;
        let members: Vec<usize> = order[start..end].to_vec();
        let max_value = members
            .iter()
            .map(|&i| samples[i])
            .fold(f64::NEG_INFINITY, f64::max);
        out.push(DecileBucket { max_value, members });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_basics() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(quantile(&data, 0.25), Some(2.5));
    }

    #[test]
    fn deciles_partition_all_samples() {
        let data: Vec<f64> = (0..103).map(|i| i as f64).collect();
        let buckets = deciles(&data);
        assert_eq!(buckets.len(), 10);
        let covered: usize = buckets.iter().map(|b| b.members.len()).sum();
        assert_eq!(covered, 103);
        // Bucket populations differ by at most one.
        let sizes: Vec<usize> = buckets.iter().map(|b| b.members.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn decile_max_values_increase() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 50.0).collect();
        let buckets = deciles(&data);
        for pair in buckets.windows(2) {
            assert!(pair[0].max_value <= pair[1].max_value);
        }
    }

    #[test]
    fn deciles_small_samples() {
        assert!(deciles(&[]).is_empty());
        let buckets = deciles(&[3.0, 1.0, 2.0]);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].max_value, 1.0);
        assert_eq!(buckets[2].max_value, 3.0);
    }

    #[test]
    fn decile_members_index_original_positions() {
        let data = [10.0, 0.0];
        let buckets = deciles(&data);
        assert_eq!(buckets[0].members, vec![1]);
        assert_eq!(buckets[1].members, vec![0]);
    }
}

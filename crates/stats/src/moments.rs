//! Streaming moments (Welford's algorithm).

/// Single-pass accumulator for count, mean, variance, min, and max.
///
/// Uses Welford's numerically stable update, and merges with the parallel
/// (Chan et al.) combination rule so partials from worker threads can be
/// folded together.
#[derive(Debug, Clone, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let m: Moments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
    }

    #[test]
    fn empty_is_safe() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: Moments = data.iter().copied().collect();
        let mut a: Moments = data[..300].iter().copied().collect();
        let b: Moments = data[300..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data: Moments = [1.0, 2.0, 3.0].into_iter().collect();
        let mut a = data.clone();
        a.merge(&Moments::new());
        assert_eq!(a.count(), 3);
        let mut b = Moments::new();
        b.merge(&data);
        assert_eq!(b.count(), 3);
        assert!((b.mean() - 2.0).abs() < 1e-12);
    }
}

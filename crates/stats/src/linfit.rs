//! Ordinary least squares and correlation.
//!
//! Figure 9 of the paper fits a line to (mean DIMM temperature, CE count)
//! points and reads the slope sign as the presence/absence of a temperature
//! effect. [`linear_fit`] provides that fit plus r², and [`pearson`] /
//! [`spearman`] give the correlation coefficients the comparison discussion
//! leans on.

/// Result of an OLS fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 − SSres/SStot; 0 when y is constant).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit `y = a + b·x` by ordinary least squares.
///
/// Returns `None` with fewer than two points or when all x are identical
/// (the slope is undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        0.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n,
    })
}

/// Pearson correlation coefficient. `None` if undefined (fewer than two
/// points, or either variable constant).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of the mid-ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let rx = midranks(xs);
    let ry = midranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks (average rank for ties), 1-based.
fn midranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the average rank.
        let avg = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn flat_data_has_zero_slope() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pearson_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn midrank_ties_average() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}

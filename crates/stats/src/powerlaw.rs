//! Discrete power-law fitting after Clauset, Shalizi & Newman (2009).
//!
//! The paper observes (Figs 5a, 8a, 8b) that faults-per-node, faults-per-
//! bit-position and faults-per-address "appear to obey a power law", citing
//! Clauset et al. This module implements the corresponding estimator:
//!
//! * the discrete maximum-likelihood exponent
//!   `α̂ = 1 + n · [Σ ln(xᵢ / (xmin − ½))]⁻¹`,
//! * a Kolmogorov–Smirnov distance between the empirical tail and the
//!   fitted law (continuous approximation, accurate for the tails we fit),
//! * an `xmin` scan that picks the cutoff minimizing the KS distance.

/// A fitted discrete power law on the tail `x ≥ xmin`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent α (density ∝ x^−α).
    pub alpha: f64,
    /// Tail cutoff used in the fit.
    pub xmin: u64,
    /// Number of samples in the tail.
    pub n_tail: usize,
    /// Kolmogorov–Smirnov distance between data and fit on the tail.
    pub ks: f64,
}

impl PowerLawFit {
    /// Model complementary CDF `P(X ≥ x)` on the fitted tail
    /// (continuous approximation).
    pub fn ccdf(&self, x: f64) -> f64 {
        if x < self.xmin as f64 {
            return 1.0;
        }
        ((x - 0.5) / (self.xmin as f64 - 0.5)).powf(-(self.alpha - 1.0))
    }
}

/// Fit a power law to `samples` with a fixed tail cutoff `xmin`.
///
/// Returns `None` when fewer than two samples reach the tail (the MLE is
/// undefined) or `xmin == 0`.
pub fn fit_power_law(samples: &[u64], xmin: u64) -> Option<PowerLawFit> {
    if xmin == 0 {
        return None;
    }
    let tail: Vec<u64> = samples.iter().copied().filter(|&x| x >= xmin).collect();
    let n = tail.len();
    if n < 2 {
        return None;
    }
    let denom: f64 = tail
        .iter()
        .map(|&x| (x as f64 / (xmin as f64 - 0.5)).ln())
        .sum();
    if denom <= 0.0 {
        return None;
    }
    let alpha = 1.0 + n as f64 / denom;
    let fit = PowerLawFit {
        alpha,
        xmin,
        n_tail: n,
        ks: 0.0,
    };
    let ks = ks_distance(&tail, &fit);
    Some(PowerLawFit { ks, ..fit })
}

/// Fit a power law scanning `xmin` over the distinct sample values (capped
/// at `max_candidates` smallest distinct values for cost) and keeping the
/// cutoff with minimal KS distance, requiring at least `min_tail` samples in
/// the tail.
pub fn fit_power_law_auto(
    samples: &[u64],
    min_tail: usize,
    max_candidates: usize,
) -> Option<PowerLawFit> {
    let mut candidates: Vec<u64> = samples.iter().copied().filter(|&x| x > 0).collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates.truncate(max_candidates);
    let mut best: Option<PowerLawFit> = None;
    for &xmin in &candidates {
        if let Some(fit) = fit_power_law(samples, xmin) {
            if fit.n_tail < min_tail {
                continue;
            }
            if best.is_none_or(|b| fit.ks < b.ks) {
                best = Some(fit);
            }
        }
    }
    best
}

/// KS distance between the empirical distribution of `tail` and the fitted
/// law.
///
/// For discrete data the comparison runs over *distinct* values: at each
/// observed value `x` the empirical CDF `P(X ≤ x)` is compared with the
/// model CDF `1 − ccdf(x+1)`. Comparing per-sample instead would
/// misattribute the full height of a tied jump as distance.
fn ks_distance(tail: &[u64], fit: &PowerLawFit) -> f64 {
    let mut sorted = tail.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut max_d: f64 = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i];
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == x {
            j += 1;
        }
        let emp = (j + 1) as f64 / n; // P(X <= x), ties included.
        let model = 1.0 - fit.ccdf(x as f64 + 1.0);
        max_d = max_d.max((model - emp).abs());
        i = j + 1;
    }
    max_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_util::dist::power_law;
    use astra_util::DetRng;

    #[test]
    fn recovers_known_exponent() {
        // At xmin == 1 both the generator and the MLE use the continuous
        // approximation, which Clauset et al. note is biased for small
        // xmin — so the tolerance here is loose; the xmin = 5 test below
        // checks tight recovery where the approximation is accurate.
        let mut rng = DetRng::new(101);
        let samples: Vec<u64> = (0..20_000).map(|_| power_law(&mut rng, 1, 2.5)).collect();
        let fit = fit_power_law(&samples, 1).unwrap();
        assert!(
            (fit.alpha - 2.5).abs() < 0.6,
            "alpha {} should be loosely near 2.5",
            fit.alpha
        );
        assert!(
            fit.ks < 0.12,
            "ks {} too large for a true power law",
            fit.ks
        );
    }

    #[test]
    fn recovers_exponent_with_higher_xmin() {
        let mut rng = DetRng::new(102);
        let samples: Vec<u64> = (0..30_000).map(|_| power_law(&mut rng, 5, 2.2)).collect();
        let fit = fit_power_law(&samples, 5).unwrap();
        assert!((fit.alpha - 2.2).abs() < 0.1, "alpha {}", fit.alpha);
    }

    #[test]
    fn auto_scan_prefers_true_cutoff() {
        // Mixture: uniform noise below 8, power law at >= 8.
        let mut rng = DetRng::new(103);
        let mut samples: Vec<u64> = (0..4_000).map(|_| 1 + rng.below(7)).collect();
        samples.extend((0..8_000).map(|_| power_law(&mut rng, 8, 2.4)));
        let fit = fit_power_law_auto(&samples, 100, 64).unwrap();
        assert!(
            (6..=12).contains(&fit.xmin),
            "xmin {} should land near the true cutoff 8",
            fit.xmin
        );
        assert!((fit.alpha - 2.4).abs() < 0.25, "alpha {}", fit.alpha);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(fit_power_law(&[], 1).is_none());
        assert!(fit_power_law(&[5], 1).is_none());
        assert!(fit_power_law(&[3, 4, 5], 0).is_none());
        // Nothing reaches the tail.
        assert!(fit_power_law(&[1, 2, 3], 10).is_none());
    }

    #[test]
    fn all_mass_at_xmin_gives_steep_alpha() {
        // Every sample at the minimum looks like an extremely steep law.
        let fit = fit_power_law(&[1, 1, 1, 1], 1).unwrap();
        assert!(fit.alpha > 2.0, "alpha {}", fit.alpha);
    }

    #[test]
    fn geometric_data_fits_worse_than_power_law() {
        // Exponentially-tailed data should show a larger KS distance than
        // genuine power-law data of the same size.
        let mut rng = DetRng::new(104);
        let pl: Vec<u64> = (0..8_000).map(|_| power_law(&mut rng, 5, 2.5)).collect();
        let geo: Vec<u64> = (0..8_000)
            .map(|_| {
                let mut k = 5u64;
                while rng.chance(0.5) && k < 64 {
                    k += 1;
                }
                k
            })
            .collect();
        let fit_pl = fit_power_law(&pl, 5).unwrap();
        let fit_geo = fit_power_law(&geo, 5).unwrap();
        assert!(
            fit_pl.ks < fit_geo.ks,
            "power law ks {} should beat geometric ks {}",
            fit_pl.ks,
            fit_geo.ks
        );
    }

    #[test]
    fn ccdf_is_monotone_and_bounded() {
        let fit = PowerLawFit {
            alpha: 2.5,
            xmin: 2,
            n_tail: 100,
            ks: 0.0,
        };
        assert_eq!(fit.ccdf(1.0), 1.0);
        let mut prev = fit.ccdf(2.0);
        for x in 3..100 {
            let cur = fit.ccdf(x as f64);
            assert!(cur <= prev && cur >= 0.0);
            prev = cur;
        }
    }
}

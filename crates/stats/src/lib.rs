//! Statistics substrate for the astra-mem workspace.
//!
//! The analyses in the paper need a specific, narrow toolkit: histograms and
//! frequency tables, empirical CDFs and "top-k share" summaries (Fig 5b),
//! decile bucketing (Fig 13/14, after Schroeder et al.), OLS linear fits
//! (Fig 9), discrete power-law fitting in the style of Clauset, Shalizi &
//! Newman (Figs 5a and 8), χ² uniformity tests (Fig 6's "variation is
//! statistical noise" claim), kernel density estimates for violin summaries
//! (Fig 4b), and bootstrap confidence intervals. Rather than pulling in a
//! patchwork of external statistics crates, this crate implements exactly
//! that toolkit, with every estimator validated against analytic cases in
//! its tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod chi2;
pub mod ecdf;
pub mod histogram;
pub mod kde;
pub mod linfit;
pub mod moments;
pub mod powerlaw;
pub mod quantile;
pub mod survival;

pub use chi2::{chi_square_uniform, ChiSquareResult};
pub use ecdf::{top_share, TopShareCurve};
pub use histogram::{FreqTable, Histogram};
pub use kde::ViolinSummary;
pub use linfit::{linear_fit, pearson, spearman, LinearFit};
pub use moments::Moments;
pub use powerlaw::{fit_power_law, fit_power_law_auto, PowerLawFit};
pub use quantile::{deciles, median, quantile};
pub use survival::{exponential_rate_mle, ks_two_sample, KaplanMeier, Lifetime};

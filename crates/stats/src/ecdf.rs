//! Empirical CDFs and concentration ("top-k share") curves.
//!
//! Figure 5b of the paper plots, for each x, the fraction of all CEs
//! contributed by the x nodes with the most CEs — a concentration curve over
//! *entities ranked by count*, not a plain ECDF over values. [`top_share`]
//! computes exactly that, including entities with zero events (the paper's
//! curve spans all 2,592 nodes even though >60 % of them saw no CEs).

/// Concentration curve: `share[k]` is the fraction of the total carried by
/// the `k` highest-count entities (`share[0] == 0`).
#[derive(Debug, Clone)]
pub struct TopShareCurve {
    share: Vec<f64>,
    total: u64,
}

impl TopShareCurve {
    /// Fraction of the total carried by the top `k` entities.
    ///
    /// `k` saturates at the number of entities.
    pub fn share_of_top(&self, k: usize) -> f64 {
        let k = k.min(self.share.len() - 1);
        self.share[k]
    }

    /// The full curve, `share[0] == 0.0`, `share[n] == 1.0` (if total > 0).
    pub fn curve(&self) -> &[f64] {
        &self.share
    }

    /// Number of entities (including zero-count ones).
    pub fn entities(&self) -> usize {
        self.share.len() - 1
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest `k` such that the top `k` entities carry at least `frac` of
    /// the total. Returns `entities()` if the total is zero.
    pub fn entities_for_share(&self, frac: f64) -> usize {
        if self.total == 0 {
            return self.entities();
        }
        self.share
            .iter()
            .position(|&s| s >= frac)
            .unwrap_or(self.entities())
    }
}

/// Build a concentration curve from per-entity counts.
///
/// `counts` holds one entry per entity **including zeros**; order is
/// irrelevant.
pub fn top_share(counts: &[u64]) -> TopShareCurve {
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    let mut share = Vec::with_capacity(sorted.len() + 1);
    share.push(0.0);
    let mut acc: u64 = 0;
    for c in sorted {
        acc += c;
        share.push(if total == 0 {
            0.0
        } else {
            acc as f64 / total as f64
        });
    }
    TopShareCurve { share, total }
}

/// Plain ECDF over a sample: returns `(sorted values, cumulative fractions)`.
pub fn ecdf(samples: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len() as f64;
    let fracs = (1..=sorted.len()).map(|i| i as f64 / n).collect();
    (sorted, fracs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrated_counts() {
        // One entity carries 90 of 100 events.
        let counts = [90u64, 5, 3, 2, 0, 0];
        let curve = top_share(&counts);
        assert_eq!(curve.entities(), 6);
        assert_eq!(curve.total(), 100);
        assert!((curve.share_of_top(1) - 0.90).abs() < 1e-12);
        assert!((curve.share_of_top(2) - 0.95).abs() < 1e-12);
        assert!((curve.share_of_top(6) - 1.0).abs() < 1e-12);
        assert!((curve.share_of_top(100) - 1.0).abs() < 1e-12);
        assert_eq!(curve.entities_for_share(0.5), 1);
        assert_eq!(curve.entities_for_share(0.94), 2);
    }

    #[test]
    fn uniform_counts_are_linear() {
        let counts = [10u64; 10];
        let curve = top_share(&counts);
        for k in 0..=10 {
            assert!((curve.share_of_top(k) - k as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_zero_counts() {
        let counts = [0u64; 4];
        let curve = top_share(&counts);
        assert_eq!(curve.total(), 0);
        assert_eq!(curve.share_of_top(4), 0.0);
        assert_eq!(curve.entities_for_share(0.5), 4);
    }

    #[test]
    fn share_zero_is_zero() {
        let curve = top_share(&[1, 2, 3]);
        assert_eq!(curve.share_of_top(0), 0.0);
        assert_eq!(curve.entities_for_share(0.0), 0);
    }

    #[test]
    fn plain_ecdf() {
        let (xs, fs) = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
        assert!((fs[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((fs[2] - 1.0).abs() < 1e-12);
    }
}

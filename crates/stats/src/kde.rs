//! Kernel density estimation and violin-plot summaries.
//!
//! Figure 4b of the paper is a violin plot of errors-per-fault: a quartile
//! box plus a kernel density silhouette. [`ViolinSummary`] computes both
//! from raw counts. Because errors-per-fault spans five orders of magnitude
//! (median 1, max ≈ 91,000), the density is estimated in log₁₀ space — the
//! same transform the paper's plot uses on its y-axis.

use crate::quantile::quantile_sorted;

/// Gaussian KDE evaluated on a uniform grid.
///
/// Bandwidth is Silverman's rule of thumb; an explicit bandwidth can be
/// supplied for testing. Returns `(grid, densities)`.
pub fn gaussian_kde(
    samples: &[f64],
    grid_points: usize,
    bandwidth: Option<f64>,
) -> (Vec<f64>, Vec<f64>) {
    assert!(grid_points >= 2, "need at least two grid points");
    assert!(!samples.is_empty(), "KDE over empty sample");
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt();
    let h = bandwidth.unwrap_or_else(|| {
        let h = 1.06 * sd * n.powf(-0.2);
        if h > 0.0 {
            h
        } else {
            // Degenerate (constant) sample: any positive bandwidth gives a
            // spike at the value.
            0.1
        }
    });
    let lo = samples.iter().copied().fold(f64::INFINITY, f64::min) - 3.0 * h;
    let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 3.0 * h;
    let step = (hi - lo) / (grid_points - 1) as f64;
    let norm = 1.0 / (n * h * (2.0 * std::f64::consts::PI).sqrt());
    let grid: Vec<f64> = (0..grid_points).map(|i| lo + step * i as f64).collect();
    let dens: Vec<f64> = grid
        .iter()
        .map(|&g| {
            let mut acc = 0.0;
            for &x in samples {
                let z = (g - x) / h;
                acc += (-0.5 * z * z).exp();
            }
            acc * norm
        })
        .collect();
    (grid, dens)
}

/// Summary statistics + density silhouette for a violin plot of positive
/// integer counts.
#[derive(Debug, Clone)]
pub struct ViolinSummary {
    /// Smallest value.
    pub min: u64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub n: usize,
    /// Density grid in log₁₀(value) space.
    pub log10_grid: Vec<f64>,
    /// Density values matching `log10_grid`.
    pub density: Vec<f64>,
}

impl ViolinSummary {
    /// Build a summary from positive counts. Returns `None` for an empty
    /// input. Zeros are rejected (errors-per-fault is ≥ 1 by construction).
    pub fn from_counts(counts: &[u64], grid_points: usize) -> Option<Self> {
        if counts.is_empty() {
            return None;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "violin counts must be positive"
        );
        let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let logs: Vec<f64> = sorted.iter().map(|&c| c.log10()).collect();
        let (grid, density) = gaussian_kde(&logs, grid_points, None);
        Some(ViolinSummary {
            min: counts.iter().copied().min().unwrap(),
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: counts.iter().copied().max().unwrap(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            n: counts.len(),
            log10_grid: grid,
            density,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kde_integrates_to_one() {
        let samples: Vec<f64> = (0..500).map(|i| (i as f64 * 0.173).sin() * 2.0).collect();
        let (grid, dens) = gaussian_kde(&samples, 256, None);
        let step = grid[1] - grid[0];
        let integral: f64 = dens.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn kde_peaks_near_mode() {
        let samples = vec![5.0; 100];
        let (grid, dens) = gaussian_kde(&samples, 101, Some(0.5));
        let (argmax, _) = dens
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((grid[argmax] - 5.0).abs() < 0.1);
    }

    #[test]
    fn kde_handles_constant_sample() {
        let (_, dens) = gaussian_kde(&[2.0, 2.0, 2.0], 16, None);
        assert!(dens.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn violin_summary_basics() {
        // Mostly ones with one huge outlier — the Fig 4b shape.
        let mut counts = vec![1u64; 999];
        counts.push(91_000);
        let v = ViolinSummary::from_counts(&counts, 64).unwrap();
        assert_eq!(v.min, 1);
        assert_eq!(v.max, 91_000);
        assert_eq!(v.median, 1.0);
        assert_eq!(v.n, 1000);
        assert!(v.mean > 1.0);
        assert_eq!(v.log10_grid.len(), 64);
        assert_eq!(v.density.len(), 64);
    }

    #[test]
    fn violin_empty_is_none() {
        assert!(ViolinSummary::from_counts(&[], 16).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn violin_rejects_zero_counts() {
        ViolinSummary::from_counts(&[0, 1], 16);
    }
}

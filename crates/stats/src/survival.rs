//! Survival analysis: the Kaplan–Meier estimator and exponential-lifetime
//! fitting.
//!
//! The paper's related work analyzes component lifetimes this way
//! (Ostrouchov et al.'s GPU survival analysis on Titan); here it is
//! applied to Astra's replacement data: each installed component either
//! fails (replacement observed at day *t*) or survives past the end of
//! the tracking window (right-censored). An infant-mortality population
//! shows its hand as a steep early drop in the survival curve and a
//! decreasing hazard.

/// One observation: time on test, and whether the event (failure) was
/// observed or the observation was censored at that time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lifetime {
    /// Days (or any unit) until failure or censoring.
    pub time: f64,
    /// `true` if the component failed at `time`; `false` if it was still
    /// alive when observation ended.
    pub observed: bool,
}

/// A step of the Kaplan–Meier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmStep {
    /// Event time.
    pub time: f64,
    /// Survival probability just after this time.
    pub survival: f64,
    /// Number at risk just before this time.
    pub at_risk: u64,
    /// Events at this time.
    pub events: u64,
}

/// Kaplan–Meier survival curve.
#[derive(Debug, Clone)]
pub struct KaplanMeier {
    /// Steps at each distinct event time, ascending.
    pub steps: Vec<KmStep>,
    /// Total observations.
    pub n: usize,
    /// Observed events.
    pub events: u64,
}

impl KaplanMeier {
    /// Estimate the curve. Returns `None` on empty input.
    pub fn fit(lifetimes: &[Lifetime]) -> Option<KaplanMeier> {
        if lifetimes.is_empty() {
            return None;
        }
        let mut sorted: Vec<Lifetime> = lifetimes.to_vec();
        sorted.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("NaN lifetime"));

        let mut steps = Vec::new();
        let mut survival = 1.0;
        let mut at_risk = sorted.len() as u64;
        let mut total_events = 0u64;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].time;
            let mut events = 0u64;
            let mut leaving = 0u64;
            while i < sorted.len() && sorted[i].time == t {
                if sorted[i].observed {
                    events += 1;
                }
                leaving += 1;
                i += 1;
            }
            if events > 0 {
                survival *= 1.0 - events as f64 / at_risk as f64;
                steps.push(KmStep {
                    time: t,
                    survival,
                    at_risk,
                    events,
                });
                total_events += events;
            }
            at_risk -= leaving;
        }
        Some(KaplanMeier {
            steps,
            n: lifetimes.len(),
            events: total_events,
        })
    }

    /// Survival probability at time `t` (step function, right-continuous).
    pub fn survival_at(&self, t: f64) -> f64 {
        let mut s = 1.0;
        for step in &self.steps {
            if step.time <= t {
                s = step.survival;
            } else {
                break;
            }
        }
        s
    }

    /// Median survival time (`None` if the curve never drops below 0.5 —
    /// common for low-failure-rate populations like Astra's).
    pub fn median(&self) -> Option<f64> {
        self.steps
            .iter()
            .find(|s| s.survival <= 0.5)
            .map(|s| s.time)
    }
}

/// Maximum-likelihood exponential rate (failures per unit time per unit)
/// with right censoring: `events / total time on test`.
pub fn exponential_rate_mle(lifetimes: &[Lifetime]) -> Option<f64> {
    let total_time: f64 = lifetimes.iter().map(|l| l.time).sum();
    let events = lifetimes.iter().filter(|l| l.observed).count();
    (total_time > 0.0).then(|| events as f64 / total_time)
}

/// Two-sample Kolmogorov–Smirnov distance and the asymptotic p-value.
///
/// Used to compare lifetime (or any) distributions between two
/// populations, e.g. early-installed vs late-installed components.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<(f64, f64)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut xa: Vec<f64> = a.to_vec();
    let mut xb: Vec<f64> = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).expect("NaN sample"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("NaN sample"));
    let (na, nb) = (xa.len(), xb.len());
    let mut i = 0;
    let mut j = 0;
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = xa[i].min(xb[j]);
        while i < na && xa[i] <= x {
            i += 1;
        }
        while j < nb && xb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    // Asymptotic Kolmogorov distribution p-value.
    let ne = (na as f64 * nb as f64) / (na + nb) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p = kolmogorov_sf(lambda);
    Some((d, p))
}

/// Kolmogorov distribution survival function
/// `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_util::dist::{exponential, weibull};
    use astra_util::DetRng;

    #[test]
    fn km_textbook_example() {
        // Classic toy data: events at 1, 3, 5; censored at 2, 4.
        let data = [
            Lifetime {
                time: 1.0,
                observed: true,
            },
            Lifetime {
                time: 2.0,
                observed: false,
            },
            Lifetime {
                time: 3.0,
                observed: true,
            },
            Lifetime {
                time: 4.0,
                observed: false,
            },
            Lifetime {
                time: 5.0,
                observed: true,
            },
        ];
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.steps.len(), 3);
        // S(1) = 4/5; S(3) = 4/5 * 2/3; S(5) = ... * 0.
        assert!((km.survival_at(1.0) - 0.8).abs() < 1e-12);
        assert!((km.survival_at(3.0) - 0.8 * (2.0 / 3.0)).abs() < 1e-12);
        assert!(km.survival_at(5.0).abs() < 1e-12);
        assert_eq!(km.events, 3);
        // S(3) = 0.533 is still above one half; the curve first reaches
        // 0.5 at the event at t = 5.
        assert_eq!(km.median(), Some(5.0));
    }

    #[test]
    fn km_all_censored() {
        let data = [
            Lifetime {
                time: 10.0,
                observed: false,
            },
            Lifetime {
                time: 20.0,
                observed: false,
            },
        ];
        let km = KaplanMeier::fit(&data).unwrap();
        assert!(km.steps.is_empty());
        assert_eq!(km.survival_at(100.0), 1.0);
        assert_eq!(km.median(), None);
    }

    #[test]
    fn km_empty() {
        assert!(KaplanMeier::fit(&[]).is_none());
    }

    #[test]
    fn km_survival_is_monotone() {
        let mut rng = DetRng::new(31);
        let data: Vec<Lifetime> = (0..500)
            .map(|_| Lifetime {
                time: weibull(&mut rng, 30.0, 0.6),
                observed: rng.chance(0.7),
            })
            .collect();
        let km = KaplanMeier::fit(&data).unwrap();
        for pair in km.steps.windows(2) {
            assert!(pair[1].survival <= pair[0].survival);
            assert!(pair[1].time >= pair[0].time);
        }
    }

    #[test]
    fn exponential_mle_recovers_rate() {
        let mut rng = DetRng::new(32);
        // True rate 0.1; censor everything beyond t=30.
        let data: Vec<Lifetime> = (0..20_000)
            .map(|_| {
                let t = exponential(&mut rng, 0.1);
                if t > 30.0 {
                    Lifetime {
                        time: 30.0,
                        observed: false,
                    }
                } else {
                    Lifetime {
                        time: t,
                        observed: true,
                    }
                }
            })
            .collect();
        let rate = exponential_rate_mle(&data).unwrap();
        assert!((rate - 0.1).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn ks_same_distribution_high_p() {
        let mut rng = DetRng::new(33);
        let a: Vec<f64> = (0..800).map(|_| exponential(&mut rng, 1.0)).collect();
        let b: Vec<f64> = (0..800).map(|_| exponential(&mut rng, 1.0)).collect();
        let (d, p) = ks_two_sample(&a, &b).unwrap();
        assert!(d < 0.08, "d {d}");
        assert!(p > 0.05, "p {p}");
    }

    #[test]
    fn ks_different_distributions_low_p() {
        let mut rng = DetRng::new(34);
        let a: Vec<f64> = (0..800).map(|_| exponential(&mut rng, 1.0)).collect();
        let b: Vec<f64> = (0..800).map(|_| exponential(&mut rng, 2.0)).collect();
        let (d, p) = ks_two_sample(&a, &b).unwrap();
        assert!(d > 0.1, "d {d}");
        assert!(p < 1e-6, "p {p}");
    }

    #[test]
    fn ks_degenerate() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        let (d, p) = ks_two_sample(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert_eq!(d, 0.0);
        assert!(p > 0.99);
    }

    #[test]
    fn kolmogorov_sf_bounds() {
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(0.5) > kolmogorov_sf(1.0));
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }
}

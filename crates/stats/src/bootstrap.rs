//! Bootstrap confidence intervals.
//!
//! Used to attach uncertainty to the headline ratios in EXPERIMENTS.md
//! (e.g. the share of CEs carried by the top-8 nodes) without assuming a
//! parametric form — appropriate for the heavy-tailed distributions this
//! workload produces.

use astra_util::DetRng;

/// Percentile-bootstrap confidence interval for `stat` over `samples`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// The statistic on the original sample.
    pub point: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Number of resamples used.
    pub resamples: usize,
}

/// Compute a percentile-bootstrap CI.
///
/// * `confidence` — e.g. `0.95` for a 95 % interval.
/// * `resamples` — bootstrap iterations (1,000 is plenty for reporting).
///
/// Returns `None` on an empty sample.
pub fn bootstrap_ci<F>(
    samples: &[f64],
    stat: F,
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if samples.is_empty() || resamples == 0 {
        return None;
    }
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
    let point = stat(samples);
    let mut rng = DetRng::new(seed);
    let n = samples.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; n];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = samples[rng.below(n as u64) as usize];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)) as usize).min(resamples - 1);
    Some(BootstrapCi {
        point,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn ci_brackets_the_mean() {
        let samples: Vec<f64> = (0..500).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_ci(&samples, mean, 1000, 0.95, 7).unwrap();
        assert!((ci.point - 4.5).abs() < 1e-12);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        // CI for a 500-sample mean of bounded data should be tight.
        assert!(ci.hi - ci.lo < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_ci(&samples, mean, 200, 0.9, 42).unwrap();
        let b = bootstrap_ci(&samples, mean, 200, 0.9, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(bootstrap_ci(&[], mean, 100, 0.95, 1).is_none());
        assert!(bootstrap_ci(&[1.0], mean, 0, 0.95, 1).is_none());
    }

    #[test]
    fn constant_sample_gives_degenerate_ci() {
        let samples = vec![3.0; 50];
        let ci = bootstrap_ci(&samples, mean, 100, 0.95, 9).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }
}

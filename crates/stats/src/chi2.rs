//! χ² uniformity test.
//!
//! §3.2 of the paper argues that fault counts across sockets, banks and
//! columns are "fairly uniformly distributed and that variation can be
//! explained by statistical noise". [`chi_square_uniform`] quantifies that
//! claim: it tests observed category counts against the uniform null and
//! reports the p-value via the regularized upper incomplete gamma function.

/// Result of a χ² goodness-of-fit test against the uniform distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (categories − 1).
    pub dof: usize,
    /// Probability of a statistic at least this large under the null.
    pub p_value: f64,
}

impl ChiSquareResult {
    /// Whether the uniform null survives at the given significance level.
    pub fn is_uniform_at(&self, significance: f64) -> bool {
        self.p_value > significance
    }
}

/// Test observed category `counts` against a uniform expectation.
///
/// Returns `None` when there are fewer than two categories or the total
/// count is zero (the test is undefined).
pub fn chi_square_uniform(counts: &[u64]) -> Option<ChiSquareResult> {
    let k = counts.len();
    if k < 2 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let expected = total as f64 / k as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    let dof = k - 1;
    let p_value = gamma_q(dof as f64 / 2.0, statistic / 2.0);
    Some(ChiSquareResult {
        statistic,
        dof,
        p_value,
    })
}

/// Test observed counts against arbitrary expected proportions.
///
/// `expected_weights` are unnormalized; they must be positive. Returns
/// `None` on degenerate inputs.
pub fn chi_square_expected(counts: &[u64], expected_weights: &[f64]) -> Option<ChiSquareResult> {
    if counts.len() != expected_weights.len() || counts.len() < 2 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    let wsum: f64 = expected_weights.iter().sum();
    if total == 0 || wsum <= 0.0 || expected_weights.iter().any(|&w| w <= 0.0) {
        return None;
    }
    let statistic: f64 = counts
        .iter()
        .zip(expected_weights)
        .map(|(&o, &w)| {
            let e = total as f64 * w / wsum;
            let d = o as f64 - e;
            d * d / e
        })
        .sum();
    let dof = counts.len() - 1;
    Some(ChiSquareResult {
        statistic,
        dof,
        p_value: gamma_q(dof as f64 / 2.0, statistic / 2.0),
    })
}

/// Natural log of the gamma function (Lanczos approximation, |ε| < 2e-10).
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized upper incomplete gamma function `Q(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammq`).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-14 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-14 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_q_boundaries() {
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
        // Q(1, x) = e^-x for the exponential case.
        for x in [0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_q(1.0, x) - (-x).exp()).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn chi2_p_value_known_case() {
        // dof=1, statistic=3.841 is the 95th percentile: p ≈ 0.05.
        let p = gamma_q(0.5, 3.841 / 2.0);
        assert!((p - 0.05).abs() < 0.001, "p {p}");
        // dof=10, statistic=18.307 is the 95th percentile.
        let p = gamma_q(5.0, 18.307 / 2.0);
        assert!((p - 0.05).abs() < 0.001, "p {p}");
    }

    #[test]
    fn uniform_counts_pass() {
        let counts = [100u64, 103, 97, 101, 99, 100, 98, 102];
        let r = chi_square_uniform(&counts).unwrap();
        assert!(r.p_value > 0.9, "near-uniform counts, p {}", r.p_value);
        assert!(r.is_uniform_at(0.05));
    }

    #[test]
    fn skewed_counts_fail() {
        let counts = [1000u64, 100, 100, 100];
        let r = chi_square_uniform(&counts).unwrap();
        assert!(r.p_value < 1e-6, "heavily skewed counts, p {}", r.p_value);
        assert!(!r.is_uniform_at(0.05));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(chi_square_uniform(&[]).is_none());
        assert!(chi_square_uniform(&[5]).is_none());
        assert!(chi_square_uniform(&[0, 0, 0]).is_none());
    }

    #[test]
    fn expected_weights_variant() {
        // Observation matches a 1:2:3 expectation.
        let counts = [100u64, 200, 300];
        let r = chi_square_expected(&counts, &[1.0, 2.0, 3.0]).unwrap();
        assert!(r.p_value > 0.99, "p {}", r.p_value);
        // Same counts against uniform should fail.
        let r = chi_square_uniform(&counts).unwrap();
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn expected_weights_rejects_bad_input() {
        assert!(chi_square_expected(&[1, 2], &[1.0]).is_none());
        assert!(chi_square_expected(&[1, 2], &[1.0, 0.0]).is_none());
        assert!(chi_square_expected(&[1, 2], &[1.0, -1.0]).is_none());
    }
}

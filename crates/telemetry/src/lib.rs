//! Environmental telemetry simulator (§2.2, §3.3 of the paper).
//!
//! Each Astra node reports six temperature sensors (one CPU sensor per
//! socket, one DIMM sensor per group of four slots) plus DC power, sampled
//! once per minute by the BMC. This crate reproduces that data stream with
//! the properties the paper measures:
//!
//! * CPU temperatures in the mid-50s to mid-70s °C with ≈ 7 °C between the
//!   first and ninth deciles; DIMM temperatures in the high-30s to low-50s
//!   with ≈ 4 °C decile spread (Fig 13) — Astra's cooling is much tighter
//!   than the Schroeder et al. systems;
//! * CPU1 (socket 0) hotter than CPU2 (socket 1): front-to-back airflow
//!   reaches socket 1 first (Fig 1);
//! * node DC power roughly 240–380 W tracking utilization (Fig 2c, 14);
//! * rack-to-rack mean differences below ≈ 4.2 °C and region-to-region
//!   differences below 1 °C (§3.4) — temperature cannot explain positional
//!   fault skew;
//! * a small fraction (< 1 %) of unreadable or clearly invalid samples,
//!   which the analysis excludes (§2.2).
//!
//! **Temperature is deliberately decoupled from error generation**: the
//! fault simulator never consults this model, which is how the
//! reproduction encodes the paper's central negative result (no strong
//! temperature/utilization ↔ CE correlation, Figs 9, 13, 14).
//!
//! Because a full-scale minute-resolution trace is ~3 × 10⁹ samples, the
//! model is *functional*: [`TelemetryModel::reading`] computes any sample
//! on demand in O(1) from `(seed, node, sensor, minute)`, so analyses can
//! query windows without materializing the dataset, and
//! [`TelemetryModel::records`] materializes configurable-stride excerpts
//! for the text-log pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod profile;

pub use model::TelemetryModel;
pub use profile::ThermalProfile;

//! The O(1) random-access telemetry model.
//!
//! Every quantity is a pure function of `(seed, node, sensor, minute)`:
//!
//! * **Utilization** is piecewise-constant over fixed job blocks (jobs on
//!   HPC machines run for hours), with a diurnal modulation. Each block's
//!   busy/idle state and level come from a counter-mode hash, so
//!   utilization at an arbitrary minute costs one hash, not a replay.
//! * **Temperatures** are inlet + position offsets + utilization-driven
//!   rise + per-minute sensor noise.
//! * **Power** is idle + utilization-proportional dynamic power + noise.
//!
//! Per-minute noise is also counter-mode: `hash(seed, node, sensor,
//! minute)` seeds a tiny Box–Muller draw. Nothing here consults the fault
//! simulator, so CE occurrence is independent of temperature by
//! construction — the paper's negative result.

use astra_logs::SensorRecord;
use astra_topology::{NodeId, RackRegion, SensorId, SensorKind, SystemConfig};
use astra_util::rng::splitmix64;
use astra_util::time::TimeSpan;
use astra_util::{Minute, StreamKey};

use crate::profile::ThermalProfile;

/// Deterministic telemetry source for one machine.
#[derive(Debug, Clone)]
pub struct TelemetryModel {
    system: SystemConfig,
    profile: ThermalProfile,
    seed: u64,
    key: StreamKey,
}

/// Map a 64-bit hash to a uniform in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl TelemetryModel {
    /// Create a model for `system` under `profile`.
    pub fn new(system: SystemConfig, profile: ThermalProfile, seed: u64) -> Self {
        TelemetryModel {
            system,
            profile,
            seed,
            key: StreamKey::root("telemetry"),
        }
    }

    /// The machine this model covers.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    fn hash(&self, a: u64, b: u64, c: u64) -> u64 {
        let mut state = self.seed
            ^ self.key.value()
            ^ a.rotate_left(17)
            ^ b.rotate_left(34)
            ^ c.rotate_left(51);
        splitmix64(&mut state);
        splitmix64(&mut state)
    }

    /// Standard-normal draw in counter mode.
    fn noise(&self, a: u64, b: u64, c: u64) -> f64 {
        let h1 = self.hash(a, b, c);
        let h2 = self.hash(a ^ 0xDEAD_BEEF, b, c);
        let u1 = (1.0 - unit(h1)).max(1e-12);
        let u2 = unit(h2);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Node utilization in [0, 1] at a given minute.
    pub fn utilization(&self, node: NodeId, t: Minute) -> f64 {
        let p = &self.profile;
        let block = t.value().div_euclid(p.job_block_minutes as i64) as u64;
        let h = self.hash(1, u64::from(node.0), block);
        let busy = unit(h) < p.busy_prob;
        let base = if busy {
            // Per-block level jitter so busy blocks aren't identical.
            p.busy_util + 0.1 * (unit(self.hash(2, u64::from(node.0), block)) - 0.5)
        } else {
            p.idle_util
        };
        // Diurnal modulation: the machine room is busier in working hours.
        let phase = f64::from(t.minute_of_day()) / 1440.0 * std::f64::consts::TAU;
        let diurnal = p.diurnal_amplitude * (phase - std::f64::consts::PI * 0.75).sin();
        (base + diurnal).clamp(0.0, 1.0)
    }

    /// Inlet air temperature for a node: room base + rack offset + region
    /// offset (both small, per §3.4).
    pub fn inlet(&self, node: NodeId) -> f64 {
        let p = &self.profile;
        let rack = self.system.rack_of(node);
        let rack_off = (unit(self.hash(3, u64::from(rack.0), 0)) - 0.5) * p.rack_inlet_spread;
        let region = self.system.region_of(node);
        let region_off = match region {
            RackRegion::Bottom => -0.5,
            RackRegion::Middle => 0.0,
            RackRegion::Top => 0.5,
        } * p.region_inlet_spread;
        p.inlet_temp + rack_off + region_off
    }

    /// The true (pre-corruption) value of a sensor at a minute.
    pub fn true_value(&self, node: NodeId, sensor: SensorId, t: Minute) -> f64 {
        let p = &self.profile;
        let util = self.utilization(node, t);
        let inlet = self.inlet(node);
        let noise = self.noise(
            4 + sensor.index() as u64,
            u64::from(node.0),
            t.value() as u64,
        );
        match sensor.kind() {
            SensorKind::CpuTemp(socket) => {
                inlet
                    + p.cpu_idle_rise[usize::from(socket.0)]
                    + p.cpu_util_rise * util
                    + p.cpu_noise_sd * noise
            }
            SensorKind::DimmTemp(group) => {
                inlet
                    + p.dimm_idle_rise[group.index()]
                    + p.dimm_util_rise * util
                    + p.dimm_noise_sd * noise
            }
            SensorKind::DcPower => p.idle_power + p.dynamic_power * util + p.power_noise_sd * noise,
        }
    }

    /// A BMC reading: the true value possibly replaced by an unreadable
    /// marker or a clearly-invalid outlier (which
    /// [`SensorRecord::valid_value`] filters, as the paper's analysis
    /// does).
    pub fn reading(&self, node: NodeId, sensor: SensorId, t: Minute) -> SensorRecord {
        let p = &self.profile;
        let h = self.hash(
            99,
            u64::from(node.0) << 3 | sensor.index() as u64,
            t.value() as u64,
        );
        let u = unit(h);
        let value = if u < p.unreadable_prob {
            None
        } else if u < p.unreadable_prob + p.invalid_prob {
            // A stuck/garbage reading far outside plausibility.
            Some(if sensor.kind() == SensorKind::DcPower {
                4000.0
            } else {
                255.0
            })
        } else {
            Some(self.true_value(node, sensor, t))
        };
        SensorRecord {
            time: t,
            node,
            sensor,
            value,
        }
    }

    /// Materialize records for every sensor of the given nodes over a
    /// span, sampling every `stride_minutes` (1 = the BMC's real cadence).
    pub fn records(
        &self,
        nodes: impl IntoIterator<Item = NodeId>,
        span: TimeSpan,
        stride_minutes: u64,
    ) -> Vec<SensorRecord> {
        assert!(stride_minutes > 0, "stride must be positive");
        let _span = astra_obs::span("telemetry.records");
        let mut out = Vec::new();
        for node in nodes {
            let mut t = span.start;
            while t < span.end {
                for sensor in SensorId::all() {
                    out.push(self.reading(node, sensor, t));
                }
                t = t.plus(stride_minutes as i64);
            }
        }
        let obs = astra_obs::global();
        obs.counter("telemetry.readings").add(out.len() as u64);
        obs.counter("telemetry.readings_unreadable")
            .add(out.iter().filter(|r| r.value.is_none()).count() as u64);
        out
    }

    /// Mean of *valid* readings of one sensor over `[end - window, end)`,
    /// sampling every `stride_minutes`. Returns `None` when no valid
    /// sample falls in the window. This is the §3.3 primitive: "the mean
    /// temperature over the time interval immediately before the error".
    pub fn window_mean(
        &self,
        node: NodeId,
        sensor: SensorId,
        end: Minute,
        window_minutes: u64,
        stride_minutes: u64,
    ) -> Option<f64> {
        assert!(stride_minutes > 0);
        let mut sum = 0.0;
        let mut n = 0u64;
        let mut t = end.plus(-(window_minutes as i64));
        while t < end {
            if let Some(v) = self.reading(node, sensor, t).valid_value() {
                sum += v;
                n += 1;
            }
            t = t.plus(stride_minutes as i64);
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::SocketId;
    use astra_util::time::sensor_span;
    use astra_util::CalDate;

    fn model() -> TelemetryModel {
        TelemetryModel::new(SystemConfig::scaled(4), ThermalProfile::astra(), 42)
    }

    fn at(day: u32, minute: i64) -> Minute {
        CalDate::new(2019, 6, day).midnight().plus(minute)
    }

    #[test]
    fn deterministic() {
        let m = model();
        let t = at(1, 600);
        for sensor in SensorId::all() {
            let a = m.reading(NodeId(7), sensor, t);
            let b = m.reading(NodeId(7), sensor, t);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn utilization_in_unit_interval_and_blocky() {
        let m = model();
        let u1 = m.utilization(NodeId(3), at(1, 0));
        let u2 = m.utilization(NodeId(3), at(1, 30));
        // Same job block, same diurnal-ish phase: close values.
        assert!((u1 - u2).abs() < 0.2);
        for minute in (0..1440).step_by(17) {
            let u = m.utilization(NodeId(3), at(2, minute));
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn cpu1_runs_hotter_than_cpu2() {
        let m = model();
        let mut sum = [0.0f64; 2];
        let mut n = 0;
        for node in 0..64u32 {
            for minute in (0..1440).step_by(60) {
                for s in [0u8, 1] {
                    let v = m.true_value(NodeId(node), SensorId::cpu(SocketId(s)), at(3, minute));
                    sum[usize::from(s)] += v;
                }
                n += 1;
            }
        }
        let mean0 = sum[0] / f64::from(n);
        let mean1 = sum[1] / f64::from(n);
        assert!(
            mean0 > mean1 + 2.0,
            "CPU1 {mean0:.1} should be clearly hotter than CPU2 {mean1:.1}"
        );
    }

    #[test]
    fn temperature_ranges_match_paper() {
        // Fig 13: monthly average CPU temps ~55-75 C, DIMM ~35-52 C.
        let m = model();
        let mut cpu = astra_stats::Moments::new();
        let mut dimm = astra_stats::Moments::new();
        let mut power = astra_stats::Moments::new();
        for node in (0..288u32).step_by(7) {
            for minute in (0..1440).step_by(120) {
                cpu.push(m.true_value(NodeId(node), SensorId::cpu(SocketId(0)), at(5, minute)));
                dimm.push(m.true_value(
                    NodeId(node),
                    SensorId::from_index(3).unwrap(),
                    at(5, minute),
                ));
                power.push(m.true_value(NodeId(node), SensorId::dc_power(), at(5, minute)));
            }
        }
        assert!(
            (55.0..=75.0).contains(&cpu.mean()),
            "cpu mean {}",
            cpu.mean()
        );
        assert!(
            (35.0..=52.0).contains(&dimm.mean()),
            "dimm mean {}",
            dimm.mean()
        );
        assert!(
            (240.0..=390.0).contains(&power.mean()),
            "power mean {}",
            power.mean()
        );
    }

    #[test]
    fn rack_and_region_offsets_are_small() {
        let m = model();
        let sys = *m.system();
        // Mean inlet per rack varies less than the paper's 4.2 C bound;
        // per region less than 1 C.
        let mut rack_means = Vec::new();
        for rack in 0..sys.racks {
            let nodes: Vec<NodeId> = sys.rack_nodes(astra_topology::RackId(rack)).collect();
            let mean: f64 = nodes.iter().map(|&n| m.inlet(n)).sum::<f64>() / nodes.len() as f64;
            rack_means.push(mean);
        }
        let spread = rack_means.iter().cloned().fold(f64::MIN, f64::max)
            - rack_means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 4.2, "rack spread {spread}");

        let mut region_means = [0.0f64; 3];
        let mut counts = [0u32; 3];
        for node in sys.nodes() {
            let r = sys.region_of(node).index();
            region_means[r] += m.inlet(node);
            counts[r] += 1;
        }
        for r in 0..3 {
            region_means[r] /= f64::from(counts[r]);
        }
        let rspread = region_means.iter().cloned().fold(f64::MIN, f64::max)
            - region_means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(rspread < 1.0, "region spread {rspread}");
    }

    #[test]
    fn invalid_fraction_below_one_percent() {
        let m = model();
        let mut invalid = 0u32;
        let mut total = 0u32;
        for node in 0..64u32 {
            for minute in (0..1440).step_by(13) {
                for sensor in SensorId::all() {
                    let rec = m.reading(NodeId(node), sensor, at(7, minute));
                    if rec.valid_value().is_none() {
                        invalid += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = f64::from(invalid) / f64::from(total);
        assert!(frac < 0.01, "invalid fraction {frac}");
        assert!(invalid > 0, "some samples must be invalid");
    }

    #[test]
    fn power_tracks_utilization() {
        let m = model();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for node in 0..96u32 {
            let t = at(9, 600);
            xs.push(m.utilization(NodeId(node), t));
            ys.push(m.true_value(NodeId(node), SensorId::dc_power(), t));
        }
        let r = astra_stats::pearson(&xs, &ys).unwrap();
        assert!(r > 0.9, "power should track utilization, r = {r}");
    }

    #[test]
    fn window_mean_reasonable() {
        let m = model();
        let end = at(10, 720);
        let mean = m
            .window_mean(NodeId(5), SensorId::from_index(2).unwrap(), end, 60, 5)
            .unwrap();
        assert!((30.0..=60.0).contains(&mean), "window mean {mean}");
    }

    #[test]
    fn records_cover_all_sensors_and_stride() {
        let m = model();
        let span = TimeSpan::new(at(11, 0), at(11, 30));
        let recs = m.records([NodeId(1), NodeId(2)], span, 10);
        // 2 nodes x 3 samples x 7 sensors.
        assert_eq!(recs.len(), 2 * 3 * 7);
        assert!(recs.iter().all(|r| span.contains(r.time)));
    }

    #[test]
    fn full_sensor_span_sampling_is_fast_enough() {
        // Random access means a month-long window query is cheap.
        let m = model();
        let span = sensor_span();
        let mean = m.window_mean(
            NodeId(0),
            SensorId::cpu(SocketId(0)),
            span.end,
            30 * 1440,
            60,
        );
        assert!(mean.is_some());
    }
}

//! Thermal/power model constants.

/// Calibration constants for the telemetry model. Temperatures in °C,
/// power in watts, durations in minutes.
#[derive(Debug, Clone)]
pub struct ThermalProfile {
    /// Machine-room inlet air temperature.
    pub inlet_temp: f64,
    /// Peak-to-peak rack-to-rack inlet variation (the paper observed mean
    /// sensor differences below ≈ 4.2 °C across racks).
    pub rack_inlet_spread: f64,
    /// Peak-to-peak region (vertical) inlet variation (< 1 °C on Astra).
    pub region_inlet_spread: f64,
    /// CPU die rise above inlet at idle, per socket `[socket0, socket1]`.
    /// Socket 0 ("CPU1") is downstream in the airflow and runs hotter.
    pub cpu_idle_rise: [f64; 2],
    /// Additional CPU rise at full utilization.
    pub cpu_util_rise: f64,
    /// Per-minute CPU sensor noise (standard deviation).
    pub cpu_noise_sd: f64,
    /// DIMM rise above inlet at idle per sensor group (A,C,E,G / H,F,D,B /
    /// I,K,M,O / J,L,N,P). Socket-0 groups are downstream and warmer.
    pub dimm_idle_rise: [f64; 4],
    /// Additional DIMM rise at full utilization.
    pub dimm_util_rise: f64,
    /// Per-minute DIMM sensor noise.
    pub dimm_noise_sd: f64,
    /// Node DC power at idle.
    pub idle_power: f64,
    /// Additional power at full utilization.
    pub dynamic_power: f64,
    /// Per-minute power sensor noise.
    pub power_noise_sd: f64,
    /// Utilization when a job occupies the node.
    pub busy_util: f64,
    /// Utilization when idle.
    pub idle_util: f64,
    /// Probability a job block is busy.
    pub busy_prob: f64,
    /// Job block length in minutes (utilization is constant per block).
    pub job_block_minutes: u64,
    /// Amplitude of the diurnal utilization modulation (0–1 scale).
    pub diurnal_amplitude: f64,
    /// Probability a sample is unreadable.
    pub unreadable_prob: f64,
    /// Probability a readable sample is a clearly-invalid outlier
    /// (the bogus DC power readings §2.2 mentions).
    pub invalid_prob: f64,
}

impl ThermalProfile {
    /// Calibrated Astra profile (see crate docs for the targets).
    pub fn astra() -> Self {
        ThermalProfile {
            inlet_temp: 18.0,
            rack_inlet_spread: 3.0,
            region_inlet_spread: 0.6,
            cpu_idle_rise: [39.0, 34.0],
            cpu_util_rise: 16.0,
            cpu_noise_sd: 1.2,
            dimm_idle_rise: [19.5, 21.0, 16.5, 18.0],
            dimm_util_rise: 7.0,
            dimm_noise_sd: 0.7,
            idle_power: 242.0,
            dynamic_power: 130.0,
            power_noise_sd: 7.0,
            busy_util: 0.82,
            idle_util: 0.12,
            busy_prob: 0.62,
            job_block_minutes: 360,
            diurnal_amplitude: 0.08,
            unreadable_prob: 0.004,
            invalid_prob: 0.001,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astra_profile_sane() {
        let p = ThermalProfile::astra();
        assert!(p.cpu_idle_rise[0] > p.cpu_idle_rise[1], "CPU1 runs hotter");
        // Socket-0 DIMM groups (0, 1) warmer than socket-1 groups (2, 3).
        assert!(p.dimm_idle_rise[0] > p.dimm_idle_rise[2]);
        assert!(p.dimm_idle_rise[1] > p.dimm_idle_rise[3]);
        assert!(p.unreadable_prob + p.invalid_prob < 0.01, "< 1% excluded");
        assert!(p.job_block_minutes > 0);
        assert!((0.0..=1.0).contains(&p.busy_prob));
    }
}

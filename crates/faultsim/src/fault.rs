//! Fault modes and footprints.
//!
//! A fault is a persistent defect anchored somewhere in a DRAM rank; each
//! time it activates it corrupts one bit at a coordinate drawn from its
//! footprint. The modes mirror §2.1/§3.2 of the paper:
//!
//! * `SingleBit` — every error at one (address, bit);
//! * `SingleWord` — one address, bits vary within one 64-bit word;
//! * `SingleColumn` — one column of one bank, rows vary;
//! * `SingleRow` — one row of one bank, columns vary (ground truth only:
//!   Astra's logs cannot expose rows, so the analyzer will see these as
//!   bank-footprint faults — exactly the limitation §3.2 describes);
//! * `SingleBank` — one bank, rows and columns vary;
//! * `RankPin` — a pin/lane defect: one bit lane across many banks of one
//!   rank. These are the super-sticky faults that produce the huge error
//!   counts (§3.2's 91,000-error fault) and concentrate CEs on a handful
//!   of nodes.

use astra_topology::{DimmId, DramCoord, DramGeometry, RankId};
use astra_util::{DetRng, Minute};

/// Physical fault modes (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultMode {
    /// One stuck/weak bit.
    SingleBit,
    /// One weak 64-bit word.
    SingleWord,
    /// One bad column.
    SingleColumn,
    /// One bad row.
    SingleRow,
    /// One bad bank (e.g. row-decoder defect).
    SingleBank,
    /// One bad data pin / lane across a rank.
    RankPin,
}

impl FaultMode {
    /// All modes.
    pub const ALL: [FaultMode; 6] = [
        FaultMode::SingleBit,
        FaultMode::SingleWord,
        FaultMode::SingleColumn,
        FaultMode::SingleRow,
        FaultMode::SingleBank,
        FaultMode::RankPin,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::SingleBit => "single-bit",
            FaultMode::SingleWord => "single-word",
            FaultMode::SingleColumn => "single-column",
            FaultMode::SingleRow => "single-row",
            FaultMode::SingleBank => "single-bank",
            FaultMode::RankPin => "rank-pin",
        }
    }
}

/// A ground-truth fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The DIMM the fault lives on.
    pub dimm: DimmId,
    /// The rank within the DIMM.
    pub rank: RankId,
    /// Fault mode.
    pub mode: FaultMode,
    /// Anchor coordinate: the fixed part of the footprint (fields the mode
    /// varies are re-drawn per error).
    pub anchor: DramCoord,
    /// Anchor bit within the 512-bit cache line.
    pub bit: u16,
    /// When the fault became active.
    pub onset: Minute,
    /// Total errors this fault will produce over the simulation (before
    /// any logging losses).
    pub error_budget: u64,
}

impl Fault {
    /// Draw the coordinate and bit for one error activation.
    ///
    /// The fixed/varying split per mode is what the downstream classifier
    /// reconstructs from the error stream.
    pub fn sample_error(&self, geom: &DramGeometry, rng: &mut DetRng) -> (DramCoord, u16) {
        let mut coord = self.anchor;
        let mut bit = self.bit;
        match self.mode {
            FaultMode::SingleBit => {}
            FaultMode::SingleWord => {
                // Same word: keep the word index, vary the bit within it.
                let word_base = (self.bit / 64) * 64;
                bit = word_base + rng.below(64) as u16;
            }
            FaultMode::SingleColumn => {
                coord.row = rng.below(u64::from(geom.rows)) as u32;
            }
            FaultMode::SingleRow => {
                coord.col = rng.below(u64::from(geom.cols)) as u16;
            }
            FaultMode::SingleBank => {
                coord.row = rng.below(u64::from(geom.rows)) as u32;
                coord.col = rng.below(u64::from(geom.cols)) as u16;
            }
            FaultMode::RankPin => {
                // Same bit lane, anywhere in the rank.
                coord.bank = rng.below(u64::from(geom.banks)) as u16;
                coord.row = rng.below(u64::from(geom.rows)) as u32;
                coord.col = rng.below(u64::from(geom.cols)) as u16;
            }
        }
        (coord, bit)
    }

    /// Draw a random anchor for a fault of the given mode on `(dimm, rank)`.
    pub fn random_anchor(
        dimm: DimmId,
        rank: RankId,
        mode: FaultMode,
        geom: &DramGeometry,
        onset: Minute,
        error_budget: u64,
        rng: &mut DetRng,
    ) -> Fault {
        let anchor = DramCoord {
            slot: dimm.slot,
            rank,
            bank: rng.below(u64::from(geom.banks)) as u16,
            row: rng.below(u64::from(geom.rows)) as u32,
            col: rng.below(u64::from(geom.cols)) as u16,
        };
        let bit = rng.below(u64::from(geom.cacheline_bits)) as u16;
        Fault {
            dimm,
            rank,
            mode,
            anchor,
            bit,
            onset,
            error_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::{DimmSlot, NodeId};

    const GEOM: DramGeometry = DramGeometry::ASTRA;

    fn fault(mode: FaultMode) -> Fault {
        let dimm = DimmId {
            node: NodeId(3),
            slot: DimmSlot::from_letter('E').unwrap(),
        };
        let mut rng = DetRng::new(7);
        Fault::random_anchor(
            dimm,
            RankId(0),
            mode,
            &GEOM,
            Minute::from_i64(0),
            10,
            &mut rng,
        )
    }

    #[test]
    fn single_bit_never_moves() {
        let f = fault(FaultMode::SingleBit);
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let (coord, bit) = f.sample_error(&GEOM, &mut rng);
            assert_eq!(coord, f.anchor);
            assert_eq!(bit, f.bit);
        }
    }

    #[test]
    fn single_word_stays_in_word() {
        let f = fault(FaultMode::SingleWord);
        let word = f.bit / 64;
        let mut rng = DetRng::new(2);
        let mut bits_seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let (coord, bit) = f.sample_error(&GEOM, &mut rng);
            assert_eq!(coord, f.anchor, "address fixed for word faults");
            assert_eq!(bit / 64, word, "bit stays in the anchored word");
            bits_seen.insert(bit);
        }
        assert!(bits_seen.len() > 10, "word fault should vary the bit");
    }

    #[test]
    fn single_column_varies_rows_only() {
        let f = fault(FaultMode::SingleColumn);
        let mut rng = DetRng::new(3);
        let mut rows = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let (coord, bit) = f.sample_error(&GEOM, &mut rng);
            assert_eq!(coord.col, f.anchor.col);
            assert_eq!(coord.bank, f.anchor.bank);
            assert_eq!(coord.rank, f.anchor.rank);
            assert_eq!(bit, f.bit);
            rows.insert(coord.row);
        }
        assert!(rows.len() > 100);
    }

    #[test]
    fn single_row_varies_cols_only() {
        let f = fault(FaultMode::SingleRow);
        let mut rng = DetRng::new(4);
        let mut cols = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let (coord, _) = f.sample_error(&GEOM, &mut rng);
            assert_eq!(coord.row, f.anchor.row);
            assert_eq!(coord.bank, f.anchor.bank);
            cols.insert(coord.col);
        }
        assert!(cols.len() > 50);
    }

    #[test]
    fn single_bank_stays_in_bank() {
        let f = fault(FaultMode::SingleBank);
        let mut rng = DetRng::new(5);
        for _ in 0..200 {
            let (coord, _) = f.sample_error(&GEOM, &mut rng);
            assert_eq!(coord.bank, f.anchor.bank);
            assert_eq!(coord.rank, f.anchor.rank);
        }
    }

    #[test]
    fn rank_pin_fixes_bit_varies_banks() {
        let f = fault(FaultMode::RankPin);
        let mut rng = DetRng::new(6);
        let mut banks = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let (coord, bit) = f.sample_error(&GEOM, &mut rng);
            assert_eq!(bit, f.bit, "pin faults pin the bit lane");
            assert_eq!(coord.rank, f.anchor.rank);
            banks.insert(coord.bank);
        }
        assert_eq!(
            banks.len(),
            GEOM.banks as usize,
            "pin fault spans all banks"
        );
    }

    #[test]
    fn anchors_respect_geometry() {
        let mut rng = DetRng::new(8);
        let dimm = DimmId {
            node: NodeId(0),
            slot: DimmSlot::from_letter('A').unwrap(),
        };
        for mode in FaultMode::ALL {
            for _ in 0..50 {
                let f = Fault::random_anchor(
                    dimm,
                    RankId(1),
                    mode,
                    &GEOM,
                    Minute::from_i64(0),
                    1,
                    &mut rng,
                );
                assert!(u32::from(f.anchor.bank) < GEOM.banks);
                assert!(f.anchor.row < GEOM.rows);
                assert!(u32::from(f.anchor.col) < GEOM.cols);
                assert!(u32::from(f.bit) < GEOM.cacheline_bits);
            }
        }
    }

    #[test]
    fn mode_names() {
        assert_eq!(FaultMode::SingleBit.name(), "single-bit");
        assert_eq!(FaultMode::RankPin.name(), "rank-pin");
    }
}

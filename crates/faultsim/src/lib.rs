//! Ground-truth DRAM fault and error simulator for the Astra machine model.
//!
//! The paper analyzes production logs; this crate is the workspace's
//! substitute for the production machine. It injects **faults** (persistent
//! hardware defects with a physical footprint) into the modeled DRAM
//! population and lets them produce **errors** (individual corrected-bit
//! events) over simulated time, reproducing the population statistics the
//! paper reports:
//!
//! * ≈ 4.37 M correctable errors over the Jan 20 – Sep 14, 2019 interval,
//!   a slight downward trend over time, with error-mode totals near the
//!   paper's single-bit / single-word / single-column / single-bank counts;
//! * heavy-tailed errors-per-fault (median 1, maximum ≈ 91,000 — Fig 4b);
//! * a power-law faults-per-node distribution with > 60 % of nodes at zero
//!   and the top 8 nodes carrying > 50 % of all CEs (Fig 5);
//! * positional skew in faults across DIMM ranks (rank 0 high) and slots
//!   (J, E, I, P high; A, K, L, M, N low) but *uniform* fault distributions
//!   across sockets, banks, and columns (Figs 6, 7);
//! * rack-level error spikes without fault spikes (Fig 12);
//! * DUEs at ≈ 0.00948 per DIMM-year, recorded only after the August 2019
//!   HET firmware update (Fig 15).
//!
//! Structure:
//!
//! * [`ecc`] — the SEC-DED model (and a Chipkill alternative for the
//!   what-if example): how many corrupted bits in a word stay correctable.
//! * [`fault`] — fault modes, footprints, and per-error coordinate
//!   sampling.
//! * [`profile`] — every calibration constant, in one documented struct.
//! * [`scramble`] — the bijective address scrambling that models Astra's
//!   undocumented physical-address interleaving (the reason the paper
//!   could not analyze single-row faults).
//! * [`sim`] — the node-parallel simulation driver producing syslog-ready
//!   CE records (through the bounded kernel log buffer) plus ground truth.
//! * [`due`] — uncorrectable-error and other HET event generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod due;
pub mod ecc;
pub mod fault;
pub mod profile;
pub mod scramble;
pub mod sim;

pub use ecc::{EccModel, EccOutcome};
pub use fault::{Fault, FaultMode};
pub use profile::SimProfile;
pub use sim::{simulate, GroundTruthFault, SimOutput};

//! ECC models: SEC-DED (what Astra uses) and Chipkill (what it does not).
//!
//! §2.2: "Astra does not utilize Chipkill to protect the contents of its
//! DRAM; it uses the cheaper and less power-hungry single-error-correction,
//! double-error-detection (SEC-DED) ECC." The consequence the paper draws
//! (§3.2) is that fault modes corrupting several bits of one ECC word —
//! multi-rank, multi-bank alignments — "would manifest as uncorrectable
//! memory errors", so they are invisible in the CE stream. The
//! `what_if_chipkill` example flips this model to show those modes becoming
//! correctable (and therefore visible to CE-based analysis).

/// An ECC scheme's verdict on one corrupted word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// The word was repaired; a correctable error (CE) is logged.
    Corrected,
    /// Corruption detected but unrepairable; a DUE / machine check fires.
    DetectedUncorrectable,
    /// Corruption beyond the code's detection guarantee — may be silent or
    /// miscorrected. Out of scope for the paper's analysis, but the model
    /// reports it honestly.
    BeyondDetection,
}

/// Memory protection schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccModel {
    /// Single-error-correct, double-error-detect over a 64+8-bit word.
    SecDed,
    /// Symbol-based correction: corrects any number of corrupted bits
    /// confined to one x8 DRAM device (symbol), detects two corrupted
    /// symbols.
    Chipkill,
}

impl EccModel {
    /// Judge a corrupted word given the set of corrupted bit positions
    /// within the 64-bit data word.
    pub fn judge(self, corrupted_bits: &[u8]) -> EccOutcome {
        debug_assert!(corrupted_bits.iter().all(|&b| b < 64));
        let distinct = {
            let mut bits: Vec<u8> = corrupted_bits.to_vec();
            bits.sort_unstable();
            bits.dedup();
            bits
        };
        match self {
            EccModel::SecDed => match distinct.len() {
                0 => EccOutcome::Corrected, // vacuous: nothing corrupted
                1 => EccOutcome::Corrected,
                2 => EccOutcome::DetectedUncorrectable,
                _ => EccOutcome::BeyondDetection,
            },
            EccModel::Chipkill => {
                // x8 device: bits b belong to symbol b / 8.
                let mut symbols: Vec<u8> = distinct.iter().map(|&b| b / 8).collect();
                symbols.dedup();
                match symbols.len() {
                    0 | 1 => EccOutcome::Corrected,
                    2 => EccOutcome::DetectedUncorrectable,
                    _ => EccOutcome::BeyondDetection,
                }
            }
        }
    }

    /// Whether a fault whose footprint spans `devices` distinct DRAM
    /// devices *aligned on the same word* stays correctable. This is the
    /// coarse question §3.2 answers for multi-rank/multi-bank modes.
    pub fn multi_device_correctable(self, devices: u32) -> bool {
        match self {
            EccModel::SecDed => devices == 0, // any aligned multi-device hit is >1 bit
            EccModel::Chipkill => devices <= 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded_single_bit_corrects() {
        assert_eq!(EccModel::SecDed.judge(&[17]), EccOutcome::Corrected);
    }

    #[test]
    fn secded_double_bit_detects() {
        assert_eq!(
            EccModel::SecDed.judge(&[17, 41]),
            EccOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn secded_triple_bit_is_beyond() {
        assert_eq!(
            EccModel::SecDed.judge(&[1, 2, 3]),
            EccOutcome::BeyondDetection
        );
    }

    #[test]
    fn duplicate_bits_count_once() {
        assert_eq!(EccModel::SecDed.judge(&[9, 9, 9]), EccOutcome::Corrected);
    }

    #[test]
    fn chipkill_corrects_whole_symbol() {
        // Bits 8..16 are all in symbol 1.
        assert_eq!(
            EccModel::Chipkill.judge(&[8, 9, 10, 15]),
            EccOutcome::Corrected
        );
    }

    #[test]
    fn chipkill_two_symbols_detects() {
        assert_eq!(
            EccModel::Chipkill.judge(&[0, 8]),
            EccOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn chipkill_three_symbols_beyond() {
        assert_eq!(
            EccModel::Chipkill.judge(&[0, 8, 16]),
            EccOutcome::BeyondDetection
        );
    }

    #[test]
    fn multi_device_visibility() {
        // The §3.2 statement: under SEC-DED, word-aligned multi-device
        // faults are not correctable; under Chipkill a single bad device is.
        assert!(!EccModel::SecDed.multi_device_correctable(1));
        assert!(EccModel::Chipkill.multi_device_correctable(1));
        assert!(!EccModel::Chipkill.multi_device_correctable(2));
    }
}

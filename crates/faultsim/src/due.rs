//! Uncorrectable-error (DUE) and background HET event generation (§3.5).
//!
//! HET recording begins at the August 2019 firmware date; before it, no
//! events are logged (Fig 15 is empty from May 20 to Aug 23). Memory DUEs
//! occur at a calibrated per-DIMM-year rate (0.00948, FIT ≈ 1081); the
//! non-memory kinds (power-supply and threshold events) occur at small
//! system-wide daily rates.

use astra_logs::{HetKind, HetRecord};
use astra_topology::{DimmSlot, NodeId, SystemConfig};
use astra_util::dist::poisson;
use astra_util::time::MINUTES_PER_DAY;
use astra_util::{DetRng, StreamKey};

use crate::profile::SimProfile;

/// The six non-memory HET kinds, in the order of
/// [`SimProfile::het_background_daily`].
pub const BACKGROUND_KINDS: [HetKind; 6] = [
    HetKind::RedundancyLost,
    HetKind::UcGoingHigh,
    HetKind::PowerSupplyFailureDeasserted,
    HetKind::UnrGoingHigh,
    HetKind::PowerSupplyFailureDetected,
    HetKind::RedundancyInsufficient,
];

/// Generate the complete HET log for the simulation interval.
///
/// `faulty_dimms` lists the DIMMs carrying correctable faults: a
/// calibrated share of memory DUEs lands on them (CE→UE escalation),
/// the rest strike the population uniformly. Returned records are sorted
/// by time (ties by node).
pub fn generate_het(
    system: &SystemConfig,
    profile: &SimProfile,
    seed: u64,
    faulty_dimms: &[astra_topology::DimmId],
) -> Vec<HetRecord> {
    let mut rng = DetRng::for_stream(seed, StreamKey::root("het"));
    let het_start = profile.het_start.midnight();
    let window_start = het_start.max(profile.span.start);
    let window_end = profile.span.end;
    if window_start >= window_end {
        return Vec::new();
    }
    let window_minutes = (window_end.value() - window_start.value()) as u64;
    let window_days = window_minutes as f64 / MINUTES_PER_DAY as f64;
    let window_years = window_days / 365.0;

    let mut out = Vec::new();

    // Memory DUEs: Poisson over the whole DIMM population.
    let expected_dues = system.dimm_count() as f64 * profile.due_rate_per_dimm_year * window_years;
    let n_dues = poisson(&mut rng, expected_dues);
    for _ in 0..n_dues {
        let (node, slot) = if !faulty_dimms.is_empty() && rng.chance(profile.due_on_faulty_share) {
            let dimm = *rng.pick(faulty_dimms);
            (dimm.node, dimm.slot)
        } else {
            (
                NodeId(rng.below(u64::from(system.node_count())) as u32),
                DimmSlot::from_index(rng.below(16) as u8).expect("slot < 16"),
            )
        };
        let kind = if rng.chance(0.7) {
            HetKind::UncorrectableEcc
        } else {
            HetKind::UncorrectableMce
        };
        let time = window_start.plus(rng.below(window_minutes) as i64);
        out.push(HetRecord {
            time,
            node,
            kind,
            severity: kind.severity(),
            slot: Some(slot),
        });
    }

    // Background (non-memory) events. Rates are per-day for the profile's
    // reference machine; scale with node count so small test machines
    // stay quiet.
    let machine_scale = f64::from(system.node_count()) / profile.het_reference_nodes;
    for (kind, &daily) in BACKGROUND_KINDS.iter().zip(&profile.het_background_daily) {
        let expected = daily * window_days * machine_scale;
        let n = poisson(&mut rng, expected);
        for _ in 0..n {
            let node = NodeId(rng.below(u64::from(system.node_count())) as u32);
            let time = window_start.plus(rng.below(window_minutes) as i64);
            out.push(HetRecord {
                time,
                node,
                kind: *kind,
                severity: kind.severity(),
                slot: None,
            });
        }
    }

    out.sort_by_key(|r| (r.time, r.node.0));
    out
}

/// The §3.5 FIT computation: DUEs per DIMM per year → failures in 10⁹
/// device-hours.
pub fn fit_per_dimm(dues: u64, dimms: u64, years: f64) -> f64 {
    if dimms == 0 || years <= 0.0 {
        return 0.0;
    }
    let dues_per_dimm_year = dues as f64 / (dimms as f64 * years);
    // One year = 8760 hours; FIT = failures per 1e9 hours.
    dues_per_dimm_year / 8760.0 * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_util::CalDate;

    #[test]
    fn no_events_before_firmware() {
        let system = SystemConfig::scaled(4);
        let profile = SimProfile::astra();
        let log = generate_het(&system, &profile, 42, &[]);
        let start = profile.het_start.midnight();
        assert!(log.iter().all(|r| r.time >= start));
    }

    #[test]
    fn empty_when_firmware_after_span() {
        let system = SystemConfig::scaled(4);
        let mut profile = SimProfile::astra();
        profile.het_start = CalDate::new(2020, 1, 1);
        assert!(generate_het(&system, &profile, 42, &[]).is_empty());
    }

    #[test]
    fn due_count_tracks_rate() {
        // Crank the rate so the Poisson mean is large and relative error
        // small, then check we land near the expectation.
        let system = SystemConfig::scaled(4);
        let mut profile = SimProfile::astra();
        profile.due_rate_per_dimm_year = 5.0;
        let log = generate_het(&system, &profile, 42, &[]);
        let dues = log.iter().filter(|r| r.kind.is_memory_due()).count() as f64;
        let years = 22.0 / 365.0; // Aug 23 -> Sep 14
        let expected = system.dimm_count() as f64 * 5.0 * years;
        assert!(
            (dues - expected).abs() < 4.0 * expected.sqrt(),
            "dues {dues} vs expected {expected}"
        );
    }

    #[test]
    fn memory_dues_carry_slots_and_severity() {
        let system = SystemConfig::scaled(4);
        let mut profile = SimProfile::astra();
        profile.due_rate_per_dimm_year = 1.0;
        let log = generate_het(&system, &profile, 7, &[]);
        for rec in log.iter().filter(|r| r.kind.is_memory_due()) {
            assert!(rec.slot.is_some());
            assert_eq!(rec.severity, astra_logs::HetSeverity::NonRecoverable);
        }
        for rec in log.iter().filter(|r| !r.kind.is_memory_due()) {
            assert!(rec.slot.is_none());
        }
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let system = SystemConfig::scaled(2);
        let mut profile = SimProfile::astra();
        profile.due_rate_per_dimm_year = 2.0;
        let a = generate_het(&system, &profile, 11, &[]);
        let b = generate_het(&system, &profile, 11, &[]);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn dues_prefer_faulty_dimms() {
        use astra_topology::DimmId;
        let system = SystemConfig::scaled(4);
        let mut profile = SimProfile::astra();
        profile.due_rate_per_dimm_year = 20.0; // plenty of samples
        let faulty: Vec<DimmId> = (0..10)
            .map(|i| DimmId {
                node: NodeId(i),
                slot: DimmSlot::from_index(0).unwrap(),
            })
            .collect();
        let log = generate_het(&system, &profile, 42, &faulty);
        let dues: Vec<_> = log.iter().filter(|r| r.kind.is_memory_due()).collect();
        let on_faulty = dues
            .iter()
            .filter(|r| r.slot == Some(DimmSlot::from_index(0).unwrap()) && r.node.0 < 10)
            .count();
        let share = on_faulty as f64 / dues.len() as f64;
        // 55% configured share plus the tiny uniform chance.
        assert!(
            (0.45..0.65).contains(&share),
            "share on faulty DIMMs {share} (n = {})",
            dues.len()
        );
    }

    #[test]
    fn fit_computation_matches_paper() {
        // §3.5: 0.00948 DUEs per DIMM per year ⇒ FIT ≈ 1081.
        // Construct counts that produce exactly that rate.
        let dimms = 41_472u64;
        let years = 1.0;
        let dues = (0.009_48 * dimms as f64 * years).round() as u64;
        let fit = fit_per_dimm(dues, dimms, years);
        assert!((fit - 1081.0).abs() < 15.0, "FIT {fit} should be near 1081");
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert_eq!(fit_per_dimm(10, 0, 1.0), 0.0);
        assert_eq!(fit_per_dimm(10, 100, 0.0), 0.0);
    }
}

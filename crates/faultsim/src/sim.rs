//! The node-parallel simulation driver.
//!
//! [`simulate`] produces the machine's complete log output for the study
//! interval: syslog CE records (after passing through the bounded kernel
//! log buffer), the HET log, and the ground-truth fault population that the
//! analyzer's inferences can be validated against.
//!
//! Each node is simulated on its own deterministic RNG stream
//! (`splitmix`-derived from `(seed, node)`), so the output is bit-identical
//! regardless of worker count or scheduling. Pathological DIMM placement —
//! the handful of rank-pin-faulted DIMMs that carry most of the machine's
//! CEs — is decided up front on a global stream, then handed to the
//! per-node workers.

use astra_logs::{CeLogBuffer, CeRecord, HetRecord};
use astra_topology::{DimmId, DimmSlot, NodeId, RankId, SystemConfig};
use astra_util::dist::{lognormal, poisson, power_law_truncated};
use astra_util::par::par_map_indexed;
use astra_util::rng::splitmix64;
use astra_util::time::MINUTES_PER_DAY;
use astra_util::{DetRng, Minute, StreamKey};

use crate::due::generate_het;
use crate::fault::{Fault, FaultMode};
use crate::profile::{BudgetDist, SimProfile};
use crate::scramble::scramble;

/// A ground-truth fault plus how many errors it actually offered to the
/// logging path (≤ its budget only if the span truncated its window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruthFault {
    /// The injected fault.
    pub fault: Fault,
    /// Errors generated (offered to the kernel buffer; some may have been
    /// dropped before reaching the syslog).
    pub offered_errors: u64,
}

/// Complete simulation output.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Syslog CE records, time-sorted. These are what the analyzer sees.
    pub ce_log: Vec<CeRecord>,
    /// HET records (uncorrectable and background events), time-sorted.
    pub het_log: Vec<HetRecord>,
    /// Ground truth for validation, ordered by (node, onset).
    pub ground_truth: Vec<GroundTruthFault>,
    /// CEs lost to kernel log-buffer overflow.
    pub dropped_ces: u64,
}

impl SimOutput {
    /// Total errors offered by all faults (logged + dropped).
    pub fn offered_errors(&self) -> u64 {
        self.ground_truth.iter().map(|g| g.offered_errors).sum()
    }
}

/// Run the fault/error simulation for `system` under `profile`.
pub fn simulate(system: &SystemConfig, profile: &SimProfile, seed: u64) -> SimOutput {
    let _span = astra_obs::span("faultsim.simulate");
    let pathological = place_pathological_dimms(system, profile, seed);
    let mut path_by_node: std::collections::HashMap<u32, Vec<DimmSlot>> =
        std::collections::HashMap::new();
    for d in &pathological {
        path_by_node.entry(d.node.0).or_default().push(d.slot);
    }

    let node_count = system.node_count() as usize;
    let per_node: Vec<NodeOutput> = par_map_indexed(node_count, |idx| {
        let node = NodeId(idx as u32);
        let path_slots = path_by_node.get(&node.0).map(Vec::as_slice).unwrap_or(&[]);
        simulate_node(system, profile, seed, node, path_slots)
    });

    let obs = astra_obs::global();
    let node_drop_hist = obs.histogram("faultsim.node_drops", &astra_obs::size_bounds());
    let mut ce_runs = Vec::with_capacity(per_node.len());
    let mut ground_truth = Vec::new();
    let mut dropped_ces = 0;
    for out in per_node {
        // §2.3's lossy kernel buffer, made queryable: the per-node drop
        // distribution shows whether loss is broad or concentrated on
        // the pathological nodes.
        node_drop_hist.record(out.dropped);
        ce_runs.push(out.ces);
        ground_truth.extend(out.faults);
        dropped_ces += out.dropped;
    }
    // Each per-node run is already sorted by the global log order (the
    // node workers sort their own output), so the global time-sorted log
    // is a k-way merge rather than a fresh O(n log n) sort. The logged
    // address is a bijection of the failing cache line, so equal merge
    // keys imply identical records and the merge is bit-identical to the
    // stable sort of the concatenated runs at any worker count.
    let merge_span = astra_obs::span("pipeline.merge");
    let mut ce_log = astra_util::par::merge_sorted(ce_runs, |r: &CeRecord| {
        (r.time, r.node.0, r.addr.0, r.bit_pos)
    });
    drop(merge_span);
    // Firmware CE-gating: platforms whose firmware only began reporting
    // CEs mid-span simply never logged the earlier events. The faults
    // themselves (ground truth) are unaffected — only visibility is.
    if let Some(gate) = profile.ce_log_start {
        let midnight = gate.midnight();
        let kept_from = ce_log.partition_point(|r| r.time < midnight);
        obs.counter("faultsim.ces_gated").add(kept_from as u64);
        ce_log.drain(..kept_from);
    }

    let mut faulty_dimms: Vec<DimmId> = ground_truth.iter().map(|g| g.fault.dimm).collect();
    faulty_dimms.sort_by_key(|d| d.dense_index());
    faulty_dimms.dedup();
    let het_log = generate_het(system, profile, seed, &faulty_dimms);

    let offered: u64 = ground_truth.iter().map(|g| g.offered_errors).sum();
    obs.counter("faultsim.faults_injected")
        .add(ground_truth.len() as u64);
    obs.counter("faultsim.pathological_dimms")
        .add(pathological.len() as u64);
    obs.counter("faultsim.events_offered").add(offered);
    obs.counter("faultsim.ces_logged").add(ce_log.len() as u64);
    obs.counter("faultsim.ces_dropped").add(dropped_ces);
    obs.counter("faultsim.het_records")
        .add(het_log.len() as u64);
    // ECC verdicts: every CE event was corrected by SEC-DED (that is
    // what makes it a CE); the HET log carries the uncorrectable
    // verdicts and non-memory background events.
    let dues = het_log.iter().filter(|r| r.kind.is_memory_due()).count() as u64;
    obs.counter("faultsim.ecc.corrected").add(offered);
    obs.counter("faultsim.ecc.due").add(dues);
    obs.counter("faultsim.ecc.background")
        .add(het_log.len() as u64 - dues);

    SimOutput {
        ce_log,
        het_log,
        ground_truth,
        dropped_ces,
    }
}

struct NodeOutput {
    ces: Vec<CeRecord>,
    faults: Vec<GroundTruthFault>,
    dropped: u64,
}

/// Choose which DIMMs are pathological (rank-pin afflicted).
fn place_pathological_dimms(system: &SystemConfig, profile: &SimProfile, seed: u64) -> Vec<DimmId> {
    let mut rng = DetRng::for_stream(seed, StreamKey::root("pathological"));
    let n = ((f64::from(system.node_count()) / 1000.0) * profile.pathological_per_1000_nodes)
        .round()
        .max(1.0) as usize;
    let spike_rack = profile.spike_rack.min(system.racks - 1);
    let mut chosen: Vec<DimmId> = Vec::with_capacity(n);
    let mut used_nodes = std::collections::HashSet::new();
    for i in 0..n {
        // A share of pathological DIMMs is pinned to the spike rack
        // (Fig 12a's rack-31 error spike); the rest land anywhere, biased
        // toward the configured region (Fig 10a).
        let in_spike_rack = (i as f64) < profile.spike_rack_share * n as f64;
        let node = loop {
            let candidate = if in_spike_rack {
                let base = spike_rack * system.nodes_per_rack();
                NodeId(base + rng.below(u64::from(system.nodes_per_rack())) as u32)
            } else {
                NodeId(rng.below(u64::from(system.node_count())) as u32)
            };
            // Region bias: accept non-preferred regions with reduced
            // probability.
            let region = system.region_of(candidate);
            let accept = if region == profile.pathological_region {
                true
            } else {
                rng.chance(0.25)
            };
            if accept && !used_nodes.contains(&candidate.0) {
                break candidate;
            }
            // Allow reuse if the machine is tiny and all nodes are taken.
            if used_nodes.len() >= system.node_count() as usize {
                break candidate;
            }
        };
        used_nodes.insert(node.0);
        let slot = DimmSlot::from_index(rng.below(16) as u8).expect("slot < 16");
        chosen.push(DimmId { node, slot });
    }
    chosen
}

/// Simulate one node: inject faults, emit errors, run the logging path.
fn simulate_node(
    system: &SystemConfig,
    profile: &SimProfile,
    seed: u64,
    node: NodeId,
    pathological_slots: &[DimmSlot],
) -> NodeOutput {
    let mut rng = DetRng::for_stream(seed, StreamKey::root("node").with(u64::from(node.0)));
    let geom = &system.geometry;
    let span = profile.span;
    let span_minutes = span.minutes();

    let mut faults: Vec<Fault> = Vec::new();

    // Regular fault population.
    let region = system.region_of(node);
    let region_mult = profile.region_fault_mult[region.index()];
    let max_mult = profile
        .region_fault_mult
        .iter()
        .cloned()
        .fold(f64::MIN, f64::max);
    if rng.chance(profile.susceptible_fraction * region_mult / max_mult) {
        let n_faults = power_law_truncated(
            &mut rng,
            1,
            profile.node_fault_cap,
            profile.node_fault_alpha,
        );
        for _ in 0..n_faults {
            let slot_idx = rng.pick_weighted(&profile.slot_weights);
            let slot = DimmSlot::from_index(slot_idx as u8).expect("slot < 16");
            let rank = if rng.chance(profile.rank0_weight) {
                RankId(0)
            } else {
                RankId(1)
            };
            let mode_idx = rng.pick_weighted(&profile.mode_weights);
            let mode = FaultMode::ALL[mode_idx];
            let onset = sample_onset(&mut rng, span.start, span_minutes, profile.onset_decline);
            let budget = sample_budget(&mut rng, profile.budget_for(mode));
            let dimm = DimmId { node, slot };
            let mut fault = Fault::random_anchor(dimm, rank, mode, geom, onset, budget, &mut rng);
            fault.error_budget = budget;
            maybe_snap_to_weak_location(&mut fault, system, profile, seed, &mut rng);
            faults.push(fault);
        }
    }

    // Pathological rank-pin faults.
    for &slot in pathological_slots {
        let (lo, hi) = profile.pathological_faults;
        let n = rng.range_inclusive(u64::from(lo), u64::from(hi));
        let rank = if rng.chance(0.5) {
            RankId(0)
        } else {
            RankId(1)
        };
        for _ in 0..n {
            // Pathological DIMMs fail early (they dominate from the start
            // of the interval) and stay active to the end.
            let onset_window = span_minutes / 4;
            let onset = span.start.plus(rng.below(onset_window.max(1)) as i64);
            let (blo, bhi) = profile.pathological_budget;
            let budget = rng.range_inclusive(blo, bhi);
            let dimm = DimmId { node, slot };
            let fault = Fault::random_anchor(
                dimm,
                rank,
                FaultMode::RankPin,
                geom,
                onset,
                budget,
                &mut rng,
            );
            faults.push(fault);
        }
    }

    // Emit error events for every fault.
    // Each event carries a poll-slot tag so the log buffer sees realistic
    // same-burst contention.
    let mut events: Vec<(Minute, u32, CeRecord)> = Vec::new();
    let mut ground_truth = Vec::with_capacity(faults.len());
    for fault in faults {
        let offered = emit_fault_errors(&fault, system, profile, &mut rng, &mut events);
        ground_truth.push(GroundTruthFault {
            fault,
            offered_errors: offered,
        });
    }

    events.sort_by_key(|(t, slot, rec)| (*t, *slot, rec.addr.0, rec.bit_pos));

    // Run the kernel logging path.
    let mut buffer = CeLogBuffer::new(profile.buffer_capacity, profile.polls_per_minute);
    for (_, slot, rec) in &events {
        buffer.offer(*rec, *slot);
    }
    let (mut ces, dropped) = buffer.finish();
    // Sort this node's surviving records into the global log order here,
    // on the parallel per-node worker, so assembling the machine-wide log
    // is a merge of sorted runs instead of a global sort.
    ces.sort_by_key(|r| (r.time, r.addr.0, r.bit_pos));

    ground_truth.sort_by_key(|g| (g.fault.onset, g.fault.dimm.slot.index() as u8));
    NodeOutput {
        ces,
        faults: ground_truth,
        dropped,
    }
}

/// Emit all error events for one fault. Returns the number offered.
fn emit_fault_errors(
    fault: &Fault,
    system: &SystemConfig,
    profile: &SimProfile,
    rng: &mut DetRng,
    events: &mut Vec<(Minute, u32, CeRecord)>,
) -> u64 {
    let geom = &system.geometry;
    let span_end = profile.span.end;
    // Active window: pathological rank-pin faults persist to the end of
    // the interval; regular faults burn out on a lognormal timescale.
    let window_minutes = if fault.mode == FaultMode::RankPin {
        (span_end.value() - fault.onset.value()).max(1) as u64
    } else {
        let days = lognormal(rng, profile.window_days_mu, profile.window_days_sigma).max(0.01);
        let m = (days * MINUTES_PER_DAY as f64) as i64;
        m.min(span_end.value() - fault.onset.value()).max(1) as u64
    };

    let mut remaining = fault.error_budget;
    let mut offered = 0;
    while remaining > 0 {
        // Errors arrive in same-minute bursts.
        let burst = (1 + poisson(rng, (profile.burst_mean - 1.0).max(0.0))).min(remaining);
        let minute = fault.onset.plus(rng.below(window_minutes) as i64);
        let poll_slot = rng.below(u64::from(profile.polls_per_minute)) as u32;
        for _ in 0..burst {
            let (coord, bit) = fault.sample_error(geom, rng);
            events.push((
                minute,
                poll_slot,
                make_record(minute, fault, coord, bit, geom),
            ));
        }
        offered += burst;
        remaining -= burst;
    }
    offered
}

/// Build the syslog-visible CE record for one error event.
fn make_record(
    time: Minute,
    fault: &Fault,
    coord: astra_topology::DramCoord,
    bit: u16,
    geom: &astra_topology::DramGeometry,
) -> CeRecord {
    let true_addr = coord.encode(geom);
    let logged_addr = scramble(true_addr);
    // Vendor syndrome: a consistent function of the failing location, as
    // footnote 1 of the paper observes ("the encoding was consistent").
    let mut h = logged_addr.0 ^ (u64::from(bit) << 48) ^ 0xA5A5;
    let syndrome = (splitmix64(&mut h) & 0xFFFF) as u32;
    let class = ((syndrome >> 13) & 0x7) as u16;
    let bit_pos = bit | (class << 9);
    CeRecord {
        time,
        node: fault.dimm.node,
        socket: coord.slot.socket(),
        slot: coord.slot,
        rank: coord.rank,
        bank: coord.bank,
        row: None, // Astra's records never carry the row (§3.2).
        col: coord.col,
        bit_pos,
        addr: logged_addr,
        syndrome,
    }
}

/// Re-anchor a fault onto a system-wide weak location with the profile's
/// probability.
///
/// Weak locations model two real phenomena the per-address analysis
/// (Fig 8b) depends on: physically weak rows/columns that recur at the
/// same device coordinates across the DIMM population (manufacturing
/// correlation), and OS-hot physical pages that sit at identical
/// node-local addresses on every node. The table is derived from the
/// master seed only — not the node — so the same *full* node-local
/// coordinate (slot, rank, bank, row, column, bit) repeats machine-wide
/// and per-address fault counts develop the heavy tail the paper
/// observes. The table's own slot/rank distribution follows the same
/// positional skew as ordinary faults, so Fig 7's slot ordering is
/// preserved.
fn maybe_snap_to_weak_location(
    fault: &mut Fault,
    system: &SystemConfig,
    profile: &SimProfile,
    seed: u64,
    rng: &mut DetRng,
) {
    if profile.weak_pool == 0 || !rng.chance(profile.hot_anchor_prob) {
        return;
    }
    let geom = &system.geometry;
    // Two tiers: a broad pool of mildly weak locations and a small pool
    // of very weak ones. Uniform draws within each tier keep any single
    // location's mass bounded, which is what preserves per-bank
    // uniformity while still producing the Fig 8 concentration.
    let idx = if rng.chance(profile.very_weak_share) && profile.very_weak_pool > 0 {
        (1u64 << 32) | rng.below(profile.very_weak_pool)
    } else {
        rng.below(profile.weak_pool)
    };
    // The weak location is a pure function of (seed, idx) — identical on
    // every node.
    let mut loc_rng = DetRng::for_stream(seed, StreamKey::root("weak-loc").with(idx));
    let slot = DimmSlot::from_index(loc_rng.pick_weighted(&profile.slot_weights) as u8)
        .expect("slot < 16");
    let rank = if loc_rng.chance(profile.rank0_weight) {
        RankId(0)
    } else {
        RankId(1)
    };
    fault.dimm.slot = slot;
    fault.rank = rank;
    fault.anchor.slot = slot;
    fault.anchor.rank = rank;
    fault.anchor.bank = loc_rng.below(u64::from(geom.banks)) as u16;
    fault.anchor.row = loc_rng.below(u64::from(geom.rows)) as u32;
    fault.anchor.col = loc_rng.below(u64::from(geom.cols)) as u16;
    fault.bit = loc_rng.below(u64::from(geom.cacheline_bits)) as u16;
}

/// Sample a fault onset with linearly declining density across the span.
fn sample_onset(rng: &mut DetRng, start: Minute, span_minutes: u64, decline: f64) -> Minute {
    let u = rng.f64();
    let x = if decline <= 1e-9 {
        u
    } else {
        let d = decline.min(0.99);
        let c = u * (1.0 - d / 2.0);
        (1.0 - (1.0 - 2.0 * d * c).max(0.0).sqrt()) / d
    };
    start.plus((x * span_minutes as f64) as i64)
}

/// Sample an errors-per-fault budget from the mode's mixture distribution.
fn sample_budget(rng: &mut DetRng, dist: BudgetDist) -> u64 {
    if rng.chance(dist.p_single) {
        1
    } else {
        power_law_truncated(rng, 2, dist.tail_cap.max(2), dist.tail_alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim() -> SimOutput {
        let system = SystemConfig::scaled(2);
        let profile = SimProfile::astra();
        simulate(&system, &profile, 42)
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small_sim();
        let b = small_sim();
        assert_eq!(a.ce_log, b.ce_log);
        assert_eq!(a.het_log, b.het_log);
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.dropped_ces, b.dropped_ces);
    }

    #[test]
    fn ce_log_is_time_sorted_and_in_span() {
        let out = small_sim();
        let profile = SimProfile::astra();
        assert!(!out.ce_log.is_empty());
        assert!(out.ce_log.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(out.ce_log.iter().all(|r| profile.span.contains(r.time)));
    }

    #[test]
    fn records_are_internally_consistent() {
        let out = small_sim();
        let system = SystemConfig::scaled(2);
        for rec in out.ce_log.iter().take(10_000) {
            assert_eq!(rec.socket, rec.slot.socket());
            assert!(rec.node.0 < system.node_count());
            assert!(u32::from(rec.bank) < system.geometry.banks);
            assert!(u32::from(rec.col) < system.geometry.cols);
            assert!(rec.row.is_none(), "Astra records never carry rows");
            assert!(rec.rank.0 < 2);
        }
    }

    #[test]
    fn logged_plus_dropped_equals_offered() {
        let out = small_sim();
        assert_eq!(
            out.ce_log.len() as u64 + out.dropped_ces,
            out.offered_errors()
        );
    }

    #[test]
    fn most_faults_produce_one_error() {
        let out = small_sim();
        let ones = out
            .ground_truth
            .iter()
            .filter(|g| g.offered_errors == 1)
            .count();
        let total = out.ground_truth.len();
        assert!(
            total > 50,
            "need a meaningful fault population, got {total}"
        );
        assert!(
            ones * 2 > total,
            "majority of faults should offer exactly one error: {ones}/{total}"
        );
    }

    #[test]
    fn error_budgets_respect_caps() {
        let out = small_sim();
        let profile = SimProfile::astra();
        let max_cap = profile
            .budgets
            .iter()
            .map(|b| b.tail_cap)
            .max()
            .unwrap()
            .max(profile.pathological_budget.1);
        for g in &out.ground_truth {
            assert!(g.offered_errors <= max_cap);
            assert_eq!(g.offered_errors, g.fault.error_budget);
        }
    }

    #[test]
    fn pathological_dimms_dominate_errors() {
        let out = small_sim();
        // Count errors per node; the top node should carry a large share
        // (the Fig 5b concentration).
        let mut per_node = std::collections::HashMap::new();
        for rec in &out.ce_log {
            *per_node.entry(rec.node.0).or_insert(0u64) += 1;
        }
        let total: u64 = per_node.values().sum();
        let max = per_node.values().copied().max().unwrap_or(0);
        assert!(
            max as f64 > total as f64 * 0.10,
            "top node {max} of {total} should be a sizable share"
        );
    }

    #[test]
    fn ground_truth_covers_multiple_modes() {
        let out = small_sim();
        let mut seen = std::collections::BTreeSet::new();
        for g in &out.ground_truth {
            seen.insert(g.fault.mode);
        }
        assert!(seen.contains(&FaultMode::SingleBit));
        assert!(seen.contains(&FaultMode::RankPin));
        assert!(seen.len() >= 4, "modes seen: {seen:?}");
    }

    #[test]
    fn onset_density_declines() {
        let mut rng = DetRng::new(5);
        let start = Minute::from_i64(0);
        let n = 50_000;
        let span = 1000u64;
        let first_half = (0..n)
            .filter(|_| sample_onset(&mut rng, start, span, 0.3).value() < 500)
            .count();
        // With decline 0.3 the first half holds ~54% of onsets.
        let frac = first_half as f64 / n as f64;
        assert!((0.52..0.57).contains(&frac), "first-half fraction {frac}");
    }

    #[test]
    fn onset_zero_decline_is_uniform() {
        let mut rng = DetRng::new(6);
        let start = Minute::from_i64(0);
        let n = 50_000;
        let first_half = (0..n)
            .filter(|_| sample_onset(&mut rng, start, 1000, 0.0).value() < 500)
            .count();
        let frac = first_half as f64 / n as f64;
        assert!((0.48..0.52).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn budget_sampler_mixture() {
        let mut rng = DetRng::new(7);
        let dist = BudgetDist {
            p_single: 0.7,
            tail_alpha: 1.5,
            tail_cap: 100,
        };
        let samples: Vec<u64> = (0..20_000).map(|_| sample_budget(&mut rng, dist)).collect();
        let ones = samples.iter().filter(|&&b| b == 1).count() as f64 / 20_000.0;
        assert!((0.68..0.72).contains(&ones), "P(1) {ones}");
        assert!(samples.iter().all(|&b| (1..=100).contains(&b)));
        assert!(samples.iter().any(|&b| b > 10), "tail must be exercised");
    }

    #[test]
    fn pathological_placement_is_deterministic_and_scaled() {
        let system = SystemConfig::scaled(4);
        let profile = SimProfile::astra();
        let a = place_pathological_dimms(&system, &profile, 42);
        let b = place_pathological_dimms(&system, &profile, 42);
        assert_eq!(a, b);
        // 288 nodes * 4.6 / 1000 ≈ 1.3 → at least one.
        assert!(!a.is_empty());
        for d in &a {
            assert!(system.contains(d.node));
        }
    }
}

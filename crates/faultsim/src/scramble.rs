//! Physical-address scrambling.
//!
//! §3.2 of the paper: "the system does not provide proper row information
//! in the correctable error record passed to the syslog, so this analysis
//! was not possible." On the real machine the physical address exists but
//! the vendor's channel/rank/bank/row interleaving is undocumented, so row
//! structure cannot be recovered from it.
//!
//! The simulator reproduces that epistemic situation: the address written
//! into a CE record is a fixed **bijective scrambling** of the true codec
//! address. Same cache line → same logged address (so per-address counts,
//! Fig 8b, are meaningful), different cache lines → different addresses,
//! but no bit field of the logged address aligns with row, bank, or column
//! — an analyzer cannot cheat by decoding it. Bank/column/rank remain
//! available because the CE record carries them as explicit fields, exactly
//! like Astra's records.

use astra_topology::PhysAddr;

/// Width of the true address space (matches the codec in
/// `astra_topology::geometry`).
const ADDR_BITS: u32 = 37;
const MASK: u64 = (1 << ADDR_BITS) - 1;

/// Odd multiplier: invertible modulo 2^37, so the map is a bijection.
const MULT: u64 = 0x09E3_779B_97F5 & MASK | 1;
/// Whitening constant.
const XOR: u64 = 0x15_5599_AA33 & MASK;

/// Scramble a true codec address into the logged form.
pub fn scramble(addr: PhysAddr) -> PhysAddr {
    let a = addr.0 & MASK;
    let mixed = (a.wrapping_mul(MULT)) & MASK;
    let mixed = mixed ^ (mixed >> 19);
    let mixed = (mixed.wrapping_mul(MULT)) & MASK;
    PhysAddr((mixed ^ XOR) & MASK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::{DimmSlot, DramCoord, DramGeometry, RankId};

    #[test]
    fn deterministic() {
        let a = PhysAddr(0x1234_5678);
        assert_eq!(scramble(a), scramble(a));
    }

    #[test]
    fn injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut x = 1u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = PhysAddr(x & ((1 << 37) - 1));
            assert!(seen.insert(scramble(addr).0), "collision for {:#x}", addr.0);
        }
    }

    #[test]
    fn stays_in_address_space() {
        for a in [0u64, 1, (1 << 37) - 1, 0xABCDEF] {
            assert!(scramble(PhysAddr(a)).0 < (1 << 37));
        }
    }

    #[test]
    fn destroys_row_locality() {
        // Two addresses in the same row (adjacent columns) must not map to
        // nearby scrambled addresses — the analyzer cannot group by any
        // contiguous field.
        let geom = DramGeometry::ASTRA;
        let base = DramCoord {
            slot: DimmSlot::from_letter('B').unwrap(),
            rank: RankId(0),
            bank: 3,
            row: 1000,
            col: 10,
        };
        let a = scramble(base.encode(&geom)).0;
        let b = scramble(base.with_col(11, &geom).encode(&geom)).0;
        // The row field of the true codec occupies bits 17..32; after
        // scrambling, same-row addresses should differ in those bits too.
        let row_field = |x: u64| (x >> 17) & 0x7FFF;
        assert_ne!(row_field(a), row_field(b));
    }
}

//! Calibration constants for the fault simulator, in one documented place.
//!
//! [`SimProfile::astra`] is tuned so that a full-scale run (36 racks,
//! Jan 20 – Sep 14, 2019, seed 42) lands near the paper's population
//! statistics; EXPERIMENTS.md records paper-vs-measured for each. All
//! rates are per-node or per-DIMM, so scaling the machine down (fewer
//! racks) preserves distribution shapes automatically.

use astra_topology::{DimmSlot, RackRegion};
use astra_util::time::{study_span, TimeSpan};

use crate::fault::FaultMode;

/// Errors-per-fault distribution for one fault mode: a point mass at one
/// error plus a truncated power-law tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetDist {
    /// Probability the fault produces exactly one error (page retirement
    /// and transient activation make this the common case).
    pub p_single: f64,
    /// Power-law exponent of the tail (≥ 2 errors).
    pub tail_alpha: f64,
    /// Hard cap on errors per fault. For small-footprint modes the cap is
    /// the page-retirement model: once the OS maps the page out, the fault
    /// stops producing errors.
    pub tail_cap: u64,
}

/// Every knob of the fault/error generator.
#[derive(Debug, Clone)]
pub struct SimProfile {
    /// Simulation interval.
    pub span: TimeSpan,
    /// Fraction of nodes that are susceptible to DRAM faults at all
    /// (the paper: > 60 % of nodes saw no CEs).
    pub susceptible_fraction: f64,
    /// Power-law exponent for faults-per-susceptible-node.
    pub node_fault_alpha: f64,
    /// Cap on faults per node (Fig 5a's x-axis tops out near 60).
    pub node_fault_cap: u64,
    /// Relative probability that a regular fault lands on each mode, in
    /// [`FaultMode::ALL`] order (rank-pin weight applies only to
    /// pathological DIMMs and is zero here).
    pub mode_weights: [f64; 6],
    /// Errors-per-fault distribution per mode (same order).
    pub budgets: [BudgetDist; 6],
    /// Probability a fault lands on rank 0 (Fig 7b: rank 0 experiences
    /// more faults, plausibly the hotter DIMM side).
    pub rank0_weight: f64,
    /// Per-slot relative fault weights, indexed by `DimmSlot::index()`.
    /// Fig 7d: J, E, I, P high; A, K, L, M, N low.
    pub slot_weights: [f64; 16],
    /// Per-region fault multipliers (bottom, middle, top). Fig 10b: top
    /// slightly ahead; differences small.
    pub region_fault_mult: [f64; 3],
    /// Linear decline of fault-onset density across the span (0.25 means
    /// the onset rate at the end is 25 % lower than at the start) —
    /// produces Fig 4a's slight downward error trend.
    pub onset_decline: f64,
    /// Lognormal(mu, sigma) of a regular fault's active window in days:
    /// errors are emitted within this window after onset.
    pub window_days_mu: f64,
    /// Sigma of the active-window lognormal.
    pub window_days_sigma: f64,
    /// Expected burst size: errors from one fault cluster into same-minute
    /// bursts of roughly this size (exercises the kernel CE buffer).
    pub burst_mean: f64,
    /// Probability a regular fault anchors at one of the system-wide weak
    /// locations (shared weak physical rows/columns and OS-hot pages that
    /// recur identically across nodes). This produces the cross-node
    /// per-address and per-bit-position fault concentration of Fig 8
    /// while staying small enough that per-bank fault counts remain
    /// statistically uniform (Fig 6).
    pub hot_anchor_prob: f64,
    /// Size of the ordinary weak-location pool.
    pub weak_pool: u64,
    /// Size of the small "very weak" pool that forms the heavy tail of
    /// the per-address fault counts.
    pub very_weak_pool: u64,
    /// Fraction of weak-location draws that hit the very-weak pool.
    pub very_weak_share: f64,
    /// Pathological DIMMs per thousand nodes. These carry the rank-pin
    /// faults that concentrate most CEs onto a few nodes (Fig 5b's top-8
    /// effect and Fig 12a's rack spikes).
    pub pathological_per_1000_nodes: f64,
    /// Rank-pin faults per pathological DIMM (inclusive range).
    pub pathological_faults: (u32, u32),
    /// Errors per pathological rank-pin fault (inclusive range; the top of
    /// this range is the paper's ≈ 91,000-error fault).
    pub pathological_budget: (u64, u64),
    /// Fraction of pathological DIMMs pinned to the spike rack.
    pub spike_rack_share: f64,
    /// Rack that receives the pinned share (clamped to the machine's rack
    /// count; rack 31 on Astra, Fig 12a).
    pub spike_rack: u32,
    /// Region where pathological DIMMs concentrate (Fig 10a: errors are
    /// highest at the *bottom* of racks even though faults tilt top).
    pub pathological_region: RackRegion,
    /// DUE rate per DIMM per year (§3.5: 0.00948 → FIT ≈ 1081).
    pub due_rate_per_dimm_year: f64,
    /// Fraction of memory DUEs that strike DIMMs already carrying a
    /// correctable fault. Field studies consistently find prior CEs to be
    /// the strongest DUE predictor; the escalation path is a fault
    /// corrupting a second bit of an ECC word.
    pub due_on_faulty_share: f64,
    /// Day HET recording begins (events before this are not logged).
    pub het_start: astra_util::CalDate,
    /// Firmware CE-gating: day the platform firmware began logging
    /// correctable errors, or `None` when CE logging covers the whole
    /// span (Astra's CE path predates the study interval; some platforms
    /// only gained CE reporting mid-life, mirroring the HET gate).
    pub ce_log_start: Option<astra_util::CalDate>,
    /// System-wide daily rates for the non-memory HET kinds, in
    /// [`crate::due::BACKGROUND_KINDS`] order.
    pub het_background_daily: [f64; 6],
    /// Node count the [`SimProfile::het_background_daily`] rates are
    /// quoted for; smaller or larger machines scale linearly (Astra:
    /// the full 2,592-node fleet).
    pub het_reference_nodes: f64,
    /// Kernel CE buffer capacity (records).
    pub buffer_capacity: usize,
    /// Kernel CE polls per minute.
    pub polls_per_minute: u32,
}

impl SimProfile {
    /// The calibrated Astra profile (see module docs).
    pub fn astra() -> Self {
        SimProfile {
            span: study_span(),
            susceptible_fraction: 0.405,
            node_fault_alpha: 1.50,
            node_fault_cap: 65,
            // bit, word, column, row, bank, rank-pin
            mode_weights: [0.79, 0.08, 0.09, 0.02, 0.02, 0.0],
            budgets: [
                // Single-bit: heavy tail up to the retirement-escape cap.
                BudgetDist {
                    p_single: 0.68,
                    tail_alpha: 1.315,
                    tail_cap: 60_000,
                },
                // Single-word.
                BudgetDist {
                    p_single: 0.60,
                    tail_alpha: 1.33,
                    tail_cap: 5_000,
                },
                // Single-column.
                BudgetDist {
                    p_single: 0.55,
                    tail_alpha: 1.47,
                    tail_cap: 14_000,
                },
                // Single-row (classified as bank-footprint by the analyzer).
                BudgetDist {
                    p_single: 0.55,
                    tail_alpha: 1.55,
                    tail_cap: 2_000,
                },
                // Single-bank.
                BudgetDist {
                    p_single: 0.55,
                    tail_alpha: 1.47,
                    tail_cap: 4_000,
                },
                // Rank-pin (regular population; pathological DIMMs override).
                BudgetDist {
                    p_single: 0.40,
                    tail_alpha: 1.40,
                    tail_cap: 20_000,
                },
            ],
            rank0_weight: 0.58,
            slot_weights: slot_weights_astra(),
            region_fault_mult: [0.96, 1.0, 1.04],
            onset_decline: 0.25,
            window_days_mu: 2.3, // median ~10 days
            window_days_sigma: 1.1,
            burst_mean: 3.0,
            hot_anchor_prob: 0.25,
            weak_pool: 768,
            very_weak_pool: 24,
            very_weak_share: 0.10,
            pathological_per_1000_nodes: 4.6,
            pathological_faults: (3, 5),
            pathological_budget: (33_000, 91_000),
            spike_rack_share: 0.3,
            spike_rack: 31,
            pathological_region: RackRegion::Bottom,
            due_rate_per_dimm_year: 0.009_48,
            due_on_faulty_share: 0.55,
            het_start: astra_util::time::het_firmware_date(),
            ce_log_start: None,
            het_background_daily: [0.5, 0.35, 0.1, 0.15, 0.1, 0.05],
            het_reference_nodes: 2592.0,
            buffer_capacity: 64,
            polls_per_minute: 12,
        }
    }

    /// Budget distribution for a mode.
    pub fn budget_for(&self, mode: FaultMode) -> BudgetDist {
        let idx = FaultMode::ALL
            .iter()
            .position(|&m| m == mode)
            .expect("mode in ALL");
        self.budgets[idx]
    }
}

/// Fig 7d slot skew: J, E, I, P experience the most faults; A, K, L, M, N
/// the fewest.
fn slot_weights_astra() -> [f64; 16] {
    let mut w = [1.0f64; 16];
    for hot in ['J', 'E', 'I', 'P'] {
        w[DimmSlot::from_letter(hot).unwrap().index()] = 1.8;
    }
    for cold in ['A', 'K', 'L', 'M', 'N'] {
        w[DimmSlot::from_letter(cold).unwrap().index()] = 0.45;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astra_profile_is_sane() {
        let p = SimProfile::astra();
        assert!((0.0..=1.0).contains(&p.susceptible_fraction));
        assert!(p.node_fault_alpha > 1.0);
        let total: f64 = p.mode_weights.iter().sum();
        assert!(total > 0.0);
        for b in p.budgets {
            assert!((0.0..=1.0).contains(&b.p_single));
            assert!(b.tail_alpha > 1.0);
            assert!(b.tail_cap >= 2);
        }
        assert!(p.pathological_budget.0 <= p.pathological_budget.1);
        assert!(p.pathological_faults.0 <= p.pathological_faults.1);
        assert_eq!(p.span.days(), 237);
    }

    #[test]
    fn slot_weights_match_paper_ordering() {
        let w = slot_weights_astra();
        let at = |c: char| w[DimmSlot::from_letter(c).unwrap().index()];
        for hot in ['J', 'E', 'I', 'P'] {
            for cold in ['A', 'K', 'L', 'M', 'N'] {
                assert!(at(hot) > at(cold), "{hot} should out-fault {cold}");
            }
        }
        assert!(at('B') > at('A') && at('B') < at('J'));
    }

    #[test]
    fn budget_lookup_by_mode() {
        let p = SimProfile::astra();
        assert_eq!(p.budget_for(FaultMode::SingleBit), p.budgets[0]);
        assert_eq!(p.budget_for(FaultMode::RankPin), p.budgets[5]);
    }
}

//! Calibration check: run the full-scale simulation and print the headline
//! population statistics next to the paper's targets. Used when tuning
//! `SimProfile::astra`.

use astra_faultsim::{simulate, FaultMode, SimProfile};
use astra_topology::SystemConfig;

fn main() {
    let racks: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);
    let system = SystemConfig::scaled(racks);
    let profile = SimProfile::astra();
    let t0 = std::time::Instant::now();
    let out = simulate(&system, &profile, 42);
    let dt = t0.elapsed();
    let scale = 2592.0 / f64::from(system.node_count());

    println!(
        "racks={racks} nodes={} sim took {dt:?}",
        system.node_count()
    );
    println!(
        "logged CEs {:>10}  (x{scale:.1} => {:>10.0}; paper 4,369,731)",
        out.ce_log.len(),
        out.ce_log.len() as f64 * scale
    );
    println!(
        "dropped CEs {:>9}  ({:.2}% of offered)",
        out.dropped_ces,
        100.0 * out.dropped_ces as f64 / out.offered_errors() as f64
    );
    println!(
        "faults      {:>9}  (x{scale:.1} => {:>9.0})",
        out.ground_truth.len(),
        out.ground_truth.len() as f64 * scale
    );

    // Errors offered per ground-truth mode.
    for mode in FaultMode::ALL {
        let faults = out.ground_truth.iter().filter(|g| g.fault.mode == mode);
        let (n, errs) = faults.fold((0u64, 0u64), |(n, e), g| (n + 1, e + g.offered_errors));
        println!(
            "  {:<14} faults {:>7} ({:>9.0} scaled)  errors {:>9} ({:>11.0} scaled)",
            mode.name(),
            n,
            n as f64 * scale,
            errs,
            errs as f64 * scale
        );
    }

    // Node concentration.
    let mut per_node = std::collections::HashMap::new();
    for rec in &out.ce_log {
        *per_node.entry(rec.node.0).or_insert(0u64) += 1;
    }
    let nodes_with_ce = per_node.len();
    let mut counts: Vec<u64> = per_node.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let scaled_top = ((8.0 / scale).round() as usize).max(1);
    let top_share: u64 = counts.iter().take(scaled_top).sum();
    println!(
        "nodes with >=1 CE: {} / {} ({:.1}%; paper 1013/2592 = 39.1%)",
        nodes_with_ce,
        system.node_count(),
        100.0 * nodes_with_ce as f64 / f64::from(system.node_count())
    );
    println!(
        "top {} nodes carry {:.1}% of CEs (paper: top 8 of 2592 carry >50%)",
        scaled_top,
        100.0 * top_share as f64 / total as f64
    );
    let max_epf = out
        .ground_truth
        .iter()
        .map(|g| g.offered_errors)
        .max()
        .unwrap_or(0);
    println!("max errors/fault: {max_epf} (paper ~91,000)");
    let ones = out
        .ground_truth
        .iter()
        .filter(|g| g.offered_errors == 1)
        .count();
    println!(
        "faults with exactly 1 error: {:.1}% (paper: vast majority, median 1)",
        100.0 * ones as f64 / out.ground_truth.len() as f64
    );
    println!(
        "HET records: {} (paper Fig 15 scale: tens)",
        out.het_log.len()
    );
    let dues = out
        .het_log
        .iter()
        .filter(|r| r.kind.is_memory_due())
        .count();
    println!(
        "memory DUEs: {dues} (paper-rate expectation at this scale: {:.1})",
        system.dimm_count() as f64 * 0.00948 * 22.0 / 365.0
    );
}

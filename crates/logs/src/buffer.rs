//! The bounded kernel CE log buffer (§2.3).
//!
//! "Correctable errors are logged internally, with space for a limited
//! number of errors. Once logging space is full, further CEs may be
//! dropped. This logging space is read periodically by the operating
//! system via a polling mechanism that runs every few seconds."
//!
//! The buffer model: hardware appends CE events; the OS drains the buffer
//! at a fixed polling cadence; events arriving while the buffer is full are
//! lost and counted. Because the polling period is seconds and global
//! timestamps are minutes, the model exposes sub-minute behaviour through
//! an explicit `polls_per_minute` knob — a burst of errors landing within
//! one polling period beyond the capacity is clipped.
//!
//! Uncorrectable errors bypass this path entirely (machine check → syslog),
//! which is why the paper notes DUEs "are seldom lost, unlike correctable
//! errors". The asymmetry matters: raw CE counts under-report bursty
//! faults, one more reason the analysis must coalesce errors into faults.

use crate::ce::CeRecord;

/// Bounded CE log buffer with periodic OS polling.
#[derive(Debug, Clone)]
pub struct CeLogBuffer {
    capacity: usize,
    polls_per_minute: u32,
    pending: Vec<CeRecord>,
    drained: Vec<CeRecord>,
    dropped: u64,
    /// Index of the current polling period (minute * polls_per_minute +
    /// sub-slot); events in the same period share one buffer window.
    current_period: Option<i64>,
}

impl CeLogBuffer {
    /// Create a buffer holding `capacity` records, polled `polls_per_minute`
    /// times per minute.
    pub fn new(capacity: usize, polls_per_minute: u32) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        assert!(polls_per_minute > 0, "must poll at least once a minute");
        CeLogBuffer {
            capacity,
            polls_per_minute,
            pending: Vec::with_capacity(capacity),
            drained: Vec::new(),
            dropped: 0,
            current_period: None,
        }
    }

    /// The configuration Astra's behaviour suggests: a small hardware
    /// buffer polled every few seconds (12 polls per minute ≈ every 5 s).
    pub fn astra_default() -> Self {
        Self::new(32, 12)
    }

    /// Offer one hardware CE event. `burst_index` disambiguates ordering of
    /// events within the same minute (the generator produces bursts); events
    /// with the same `(minute, burst_index / events_per_poll)` compete for
    /// the same buffer window.
    pub fn offer(&mut self, record: CeRecord, burst_index: u32) {
        // Map (minute, burst position) onto a polling period. Bursts are
        // spread uniformly across the minute's polling slots.
        let slot = burst_index % self.polls_per_minute;
        let period = record.time.value() * i64::from(self.polls_per_minute) + i64::from(slot);
        if self.current_period != Some(period) {
            self.poll();
            self.current_period = Some(period);
        }
        if self.pending.len() < self.capacity {
            self.pending.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// OS poll: drain the hardware buffer into the syslog.
    pub fn poll(&mut self) {
        self.drained.append(&mut self.pending);
    }

    /// Finish the simulation: drain any remaining events and return the
    /// syslog contents plus the number of dropped CEs.
    pub fn finish(mut self) -> (Vec<CeRecord>, u64) {
        self.poll();
        (self.drained, self.dropped)
    }

    /// Number of events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events logged (drained) so far.
    pub fn logged(&self) -> usize {
        self.drained.len()
    }
}

/// Convenience: push a whole burst of same-minute events through a buffer,
/// spreading them across polling slots the way the hardware would see them
/// (sequential arrival).
pub fn offer_burst(buffer: &mut CeLogBuffer, records: &[CeRecord]) {
    for (i, rec) in records.iter().enumerate() {
        buffer.offer(*rec, i as u32);
    }
}

/// Outcome summary of pushing events through the logging path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggingStats {
    /// Events that reached the syslog.
    pub logged: u64,
    /// Events dropped due to buffer overflow.
    pub dropped: u64,
}

impl LoggingStats {
    /// Fraction of events lost (0 when none were offered).
    pub fn loss_rate(&self) -> f64 {
        let total = self.logged + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId};
    use astra_util::CalDate;

    fn rec(minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('A').unwrap();
        CeRecord {
            time: CalDate::new(2019, 3, 1).midnight().plus(minute),
            node: NodeId(1),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 0,
            row: None,
            col: 0,
            bit_pos: 0,
            addr: PhysAddr(0),
            syndrome: 0,
        }
    }

    #[test]
    fn small_bursts_pass_through() {
        let mut buf = CeLogBuffer::new(8, 12);
        for i in 0..5 {
            buf.offer(rec(0), i);
        }
        let (logged, dropped) = buf.finish();
        assert_eq!(logged.len(), 5);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn overflow_within_one_poll_slot_drops() {
        // One polling slot, capacity 4: a burst of 10 in the same slot
        // keeps 4 and drops 6.
        let mut buf = CeLogBuffer::new(4, 1);
        for _ in 0..10 {
            buf.offer(rec(0), 0);
        }
        let (logged, dropped) = buf.finish();
        assert_eq!(logged.len(), 4);
        assert_eq!(dropped, 6);
    }

    #[test]
    fn burst_spread_across_slots_survives() {
        // Same 10-event burst but spread across 12 slots: nothing drops.
        let mut buf = CeLogBuffer::new(4, 12);
        let records: Vec<CeRecord> = (0..10).map(|_| rec(0)).collect();
        offer_burst(&mut buf, &records);
        let (logged, dropped) = buf.finish();
        assert_eq!(logged.len(), 10);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn new_minute_gets_fresh_buffer() {
        let mut buf = CeLogBuffer::new(2, 1);
        for _ in 0..3 {
            buf.offer(rec(0), 0);
        }
        for _ in 0..3 {
            buf.offer(rec(1), 0);
        }
        let (logged, dropped) = buf.finish();
        assert_eq!(logged.len(), 4);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn dropped_and_logged_counters() {
        let mut buf = CeLogBuffer::new(1, 1);
        buf.offer(rec(0), 0);
        buf.offer(rec(0), 0);
        assert_eq!(buf.dropped(), 1);
        buf.poll();
        assert_eq!(buf.logged(), 1);
    }

    #[test]
    fn loss_rate() {
        let stats = LoggingStats {
            logged: 75,
            dropped: 25,
        };
        assert!((stats.loss_rate() - 0.25).abs() < 1e-12);
        let empty = LoggingStats {
            logged: 0,
            dropped: 0,
        };
        assert_eq!(empty.loss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        CeLogBuffer::new(0, 1);
    }
}

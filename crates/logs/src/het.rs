//! Hardware Event Tracker (HET) records.
//!
//! On Astra, uncorrectable memory errors are "recorded via a machine check
//! and logged to the syslog or serial console depending on the severity"
//! (§2.3), surfaced through the Hardware Event Tracker. Figure 15 plots
//! HET event counts by kind; the NON-RECOVERABLE subset (Fig 15b) is the
//! two uncorrectable-memory kinds. HET recording only began after an
//! August 2019 firmware update, which the simulator models as a gate.

use astra_topology::{DimmSlot, NodeId};
use astra_util::Minute;

use crate::kv;
use crate::quarantine::{LineFormat, QuarantineReason};

/// Kinds of HET event, matching the legend of Fig 15a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HetKind {
    /// Power-supply redundancy lost.
    RedundancyLost,
    /// Upper-critical threshold crossing.
    UcGoingHigh,
    /// Power supply failure cleared.
    PowerSupplyFailureDeasserted,
    /// Upper non-recoverable threshold crossing.
    UnrGoingHigh,
    /// Uncorrectable ECC memory error (a DUE).
    UncorrectableEcc,
    /// Power supply failure detected.
    PowerSupplyFailureDetected,
    /// Uncorrectable machine-check exception (a DUE).
    UncorrectableMce,
    /// Redundancy degraded: insufficient resources.
    RedundancyInsufficient,
}

impl HetKind {
    /// All kinds, in the order of the Fig 15a legend.
    pub const ALL: [HetKind; 8] = [
        HetKind::RedundancyLost,
        HetKind::UcGoingHigh,
        HetKind::PowerSupplyFailureDeasserted,
        HetKind::UnrGoingHigh,
        HetKind::UncorrectableEcc,
        HetKind::PowerSupplyFailureDetected,
        HetKind::UncorrectableMce,
        HetKind::RedundancyInsufficient,
    ];

    /// Event-name token used in the log format (mirrors the paper's
    /// figure legend, including its spelling).
    pub fn name(self) -> &'static str {
        match self {
            HetKind::RedundancyLost => "redundacyLost",
            HetKind::UcGoingHigh => "ucGoingHigh",
            HetKind::PowerSupplyFailureDeasserted => "powerSupplyFailureDetectedDeasserted",
            HetKind::UnrGoingHigh => "unrGoingHigh",
            HetKind::UncorrectableEcc => "uncorrectableECC",
            HetKind::PowerSupplyFailureDetected => "powerSupplyFailureDetected",
            HetKind::UncorrectableMce => "uncorrectableMachineCheckException",
            HetKind::RedundancyInsufficient => "redundacyNeInsufficientResources",
        }
    }

    /// Parse the token produced by [`HetKind::name`].
    pub fn parse_name(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The severity the tracker assigns to this kind.
    pub fn severity(self) -> HetSeverity {
        match self {
            HetKind::UncorrectableEcc | HetKind::UncorrectableMce => HetSeverity::NonRecoverable,
            HetKind::UnrGoingHigh | HetKind::PowerSupplyFailureDetected => HetSeverity::Critical,
            _ => HetSeverity::Warning,
        }
    }

    /// Whether this kind is a detected uncorrectable memory error (DUE) —
    /// the events that enter the FIT-rate computation of §3.5.
    pub fn is_memory_due(self) -> bool {
        matches!(self, HetKind::UncorrectableEcc | HetKind::UncorrectableMce)
    }
}

/// Severity levels recorded by the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HetSeverity {
    /// Informational / warning events.
    Warning,
    /// Critical but recoverable.
    Critical,
    /// `NON-RECOVERABLE` — the Fig 15b subset.
    NonRecoverable,
}

impl HetSeverity {
    /// Token used in the log format.
    pub fn name(self) -> &'static str {
        match self {
            HetSeverity::Warning => "WARNING",
            HetSeverity::Critical => "CRITICAL",
            HetSeverity::NonRecoverable => "NON-RECOVERABLE",
        }
    }

    /// Parse the token produced by [`HetSeverity::name`].
    pub fn parse_name(s: &str) -> Option<Self> {
        match s {
            "WARNING" => Some(HetSeverity::Warning),
            "CRITICAL" => Some(HetSeverity::Critical),
            "NON-RECOVERABLE" => Some(HetSeverity::NonRecoverable),
            _ => None,
        }
    }
}

/// One HET record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HetRecord {
    /// Event time.
    pub time: Minute,
    /// Reporting node.
    pub node: NodeId,
    /// Event kind.
    pub kind: HetKind,
    /// Recorded severity.
    pub severity: HetSeverity,
    /// For memory DUEs, the DIMM slot involved (absent for non-memory
    /// events).
    pub slot: Option<DimmSlot>,
}

impl HetRecord {
    /// Serialize to the one-line HET format.
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(72);
        self.to_line_into(&mut line);
        line
    }

    /// Append the one-line HET form to `out` (buffer-reuse variant of
    /// [`HetRecord::to_line`]).
    pub fn to_line_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        write!(
            out,
            "{} {} HET: event={} severity={}",
            self.time.rfc3339(),
            self.node,
            self.kind.name(),
            self.severity.name(),
        )
        .expect("write to String cannot fail");
        if let Some(s) = self.slot {
            write!(out, " slot={s}").expect("write to String cannot fail");
        }
    }

    /// Parse a line produced by [`HetRecord::to_line`].
    pub fn parse_line(line: &str) -> Option<Self> {
        let (ts, node, source, tail) = kv::split_line(line)?;
        if source != "HET" {
            return None;
        }
        let time = Minute::parse_rfc3339(ts)?;
        let node = NodeId(kv::parse_node(node)?);
        let kind = HetKind::parse_name(kv::field(tail, "event")?)?;
        let severity = HetSeverity::parse_name(kv::field(tail, "severity")?)?;
        let slot = match kv::field(tail, "slot") {
            Some(s) => Some(DimmSlot::from_letter(s.chars().next()?)?),
            None => None,
        };
        Some(HetRecord {
            time,
            node,
            kind,
            severity,
            slot,
        })
    }

    /// Classify a line [`HetRecord::parse_line`] rejected (see
    /// [`crate::ce::CeRecord::classify_bad_line`] for the heuristic).
    pub fn classify_bad_line(line: &str) -> QuarantineReason {
        if !line.contains(" HET:") {
            return QuarantineReason::UnknownFormat;
        }
        if line.contains("event=") && line.contains("severity=") {
            QuarantineReason::FieldOutOfRange
        } else {
            QuarantineReason::Truncated
        }
    }
}

fn order_key(r: &HetRecord) -> i64 {
    r.time.0
}

/// Ingest descriptor for `het.log`: time-sorted, one record per line.
pub const FORMAT: LineFormat<HetRecord> = LineFormat {
    parse: HetRecord::parse_line,
    classify: HetRecord::classify_bad_line,
    order_key: Some(order_key),
};

#[cfg(test)]
mod tests {
    use super::*;
    use astra_util::CalDate;

    fn sample() -> HetRecord {
        HetRecord {
            time: CalDate::new(2019, 8, 25).midnight().plus(190),
            node: NodeId(12),
            kind: HetKind::UncorrectableEcc,
            severity: HetSeverity::NonRecoverable,
            slot: Some(DimmSlot::from_letter('D').unwrap()),
        }
    }

    #[test]
    fn roundtrip_with_slot() {
        let rec = sample();
        assert_eq!(HetRecord::parse_line(&rec.to_line()), Some(rec));
    }

    #[test]
    fn roundtrip_without_slot() {
        let rec = HetRecord {
            kind: HetKind::RedundancyLost,
            severity: HetSeverity::Warning,
            slot: None,
            ..sample()
        };
        assert_eq!(HetRecord::parse_line(&rec.to_line()), Some(rec));
    }

    #[test]
    fn line_shape() {
        assert_eq!(
            sample().to_line(),
            "2019-08-25T03:10:00 node0012 HET: event=uncorrectableECC \
             severity=NON-RECOVERABLE slot=D"
        );
    }

    #[test]
    fn all_kinds_roundtrip_names() {
        for kind in HetKind::ALL {
            assert_eq!(HetKind::parse_name(kind.name()), Some(kind));
        }
        assert_eq!(HetKind::parse_name("nonsense"), None);
    }

    #[test]
    fn due_kinds_are_non_recoverable() {
        for kind in HetKind::ALL {
            assert_eq!(
                kind.is_memory_due(),
                kind.severity() == HetSeverity::NonRecoverable,
            );
        }
    }

    #[test]
    fn classifier_taxonomy() {
        let good = sample().to_line();
        assert_eq!(
            HetRecord::classify_bad_line(&good.replace(" severity=NON-RECOVERABLE slot=D", "")),
            QuarantineReason::Truncated
        );
        assert_eq!(
            HetRecord::classify_bad_line(&good.replace("NON-RECOVERABLE", "FATAL")),
            QuarantineReason::FieldOutOfRange
        );
        assert_eq!(
            HetRecord::classify_bad_line("kernel: unrelated chatter"),
            QuarantineReason::UnknownFormat
        );
    }

    #[test]
    fn rejects_foreign_lines() {
        assert_eq!(HetRecord::parse_line("x"), None);
        assert_eq!(
            HetRecord::parse_line(
                "2019-08-25T03:10:00 node0012 kernel: EDAC MC0: CE slot=E rank=1"
            ),
            None
        );
        let bad = sample().to_line().replace("NON-RECOVERABLE", "FATAL");
        assert_eq!(HetRecord::parse_line(&bad), None);
    }
}

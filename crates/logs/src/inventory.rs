//! Inventory-scan component replacement records.
//!
//! Table 1 and Figure 3 of the paper come from "analyzing the site's daily
//! inventory scan logs": a component replacement is detected when a part's
//! serial number changes between consecutive daily scans. The record here
//! is the distilled event — date, node, and which component was swapped.

use astra_topology::{DimmSlot, NodeId, SocketId};
use astra_util::CalDate;

use crate::kv;
use crate::quarantine::{LineFormat, QuarantineReason};

/// Which component was replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A ThunderX2 processor (socket 0 or 1).
    Processor(SocketId),
    /// The node motherboard.
    Motherboard,
    /// A DIMM in the given slot.
    Dimm(DimmSlot),
}

impl Component {
    /// Category label used in Table 1.
    pub fn category(&self) -> &'static str {
        match self {
            Component::Processor(_) => "Processors",
            Component::Motherboard => "Motherboards",
            Component::Dimm(_) => "DIMMs",
        }
    }

    /// Stable index for array-based tallies (processor/motherboard/DIMM).
    pub fn category_index(&self) -> usize {
        match self {
            Component::Processor(_) => 0,
            Component::Motherboard => 1,
            Component::Dimm(_) => 2,
        }
    }
}

/// One replacement event, as distilled from consecutive inventory scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplacementRecord {
    /// Scan date on which the replacement was detected.
    pub date: CalDate,
    /// Node whose component changed.
    pub node: NodeId,
    /// The replaced component.
    pub component: Component,
}

impl ReplacementRecord {
    /// Serialize to the one-line inventory format.
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(64);
        self.to_line_into(&mut line);
        line
    }

    /// Append the one-line inventory form to `out` (buffer-reuse variant
    /// of [`ReplacementRecord::to_line`]).
    pub fn to_line_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        write!(out, "{} {} inventory: ", self.date, self.node).expect("write to String");
        match self.component {
            Component::Processor(s) => write!(out, "component=processor socket={}", s.0),
            Component::Motherboard => write!(out, "component=motherboard"),
            Component::Dimm(slot) => write!(out, "component=dimm slot={slot}"),
        }
        .expect("write to String cannot fail");
    }

    /// Parse a line produced by [`ReplacementRecord::to_line`].
    pub fn parse_line(line: &str) -> Option<Self> {
        let (date_str, node, source, tail) = kv::split_line(line)?;
        if source != "inventory" {
            return None;
        }
        let mut dit = date_str.splitn(3, '-');
        let year: i64 = dit.next()?.parse().ok()?;
        let month: u32 = dit.next()?.parse().ok()?;
        let day: u32 = dit.next()?.parse().ok()?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        let date = CalDate::new(year, month, day);
        let node = NodeId(kv::parse_node(node)?);
        let component = match kv::field(tail, "component")? {
            "processor" => {
                let s: u8 = kv::field(tail, "socket")?.parse().ok()?;
                if s > 1 {
                    return None;
                }
                Component::Processor(SocketId(s))
            }
            "motherboard" => Component::Motherboard,
            "dimm" => {
                let slot = DimmSlot::from_letter(kv::field(tail, "slot")?.chars().next()?)?;
                Component::Dimm(slot)
            }
            _ => return None,
        };
        Some(ReplacementRecord {
            date,
            node,
            component,
        })
    }

    /// Classify a line [`ReplacementRecord::parse_line`] rejected (see
    /// [`crate::ce::CeRecord::classify_bad_line`] for the heuristic).
    pub fn classify_bad_line(line: &str) -> QuarantineReason {
        if !line.contains(" inventory:") {
            return QuarantineReason::UnknownFormat;
        }
        // Which extra token the named component requires.
        let complete = if line.contains("component=processor") {
            line.contains("socket=")
        } else if line.contains("component=dimm") {
            line.contains("slot=")
        } else {
            line.contains("component=")
        };
        if complete {
            QuarantineReason::FieldOutOfRange
        } else {
            QuarantineReason::Truncated
        }
    }
}

fn order_key(r: &ReplacementRecord) -> i64 {
    r.date.midnight().0
}

/// Ingest descriptor for `inventory.log`: date-sorted, one record per
/// line.
pub const FORMAT: LineFormat<ReplacementRecord> = LineFormat {
    parse: ReplacementRecord::parse_line,
    classify: ReplacementRecord::classify_bad_line,
    order_key: Some(order_key),
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_components() {
        let records = [
            ReplacementRecord {
                date: CalDate::new(2019, 2, 18),
                node: NodeId(5),
                component: Component::Processor(SocketId(1)),
            },
            ReplacementRecord {
                date: CalDate::new(2019, 6, 1),
                node: NodeId(2591),
                component: Component::Motherboard,
            },
            ReplacementRecord {
                date: CalDate::new(2019, 9, 17),
                node: NodeId(100),
                component: Component::Dimm(DimmSlot::from_letter('J').unwrap()),
            },
        ];
        for rec in records {
            assert_eq!(ReplacementRecord::parse_line(&rec.to_line()), Some(rec));
        }
    }

    #[test]
    fn line_shape() {
        let rec = ReplacementRecord {
            date: CalDate::new(2019, 2, 18),
            node: NodeId(5),
            component: Component::Dimm(DimmSlot::from_letter('J').unwrap()),
        };
        assert_eq!(
            rec.to_line(),
            "2019-02-18 node0005 inventory: component=dimm slot=J"
        );
    }

    #[test]
    fn category_labels() {
        assert_eq!(Component::Processor(SocketId(0)).category(), "Processors");
        assert_eq!(Component::Motherboard.category(), "Motherboards");
        assert_eq!(
            Component::Dimm(DimmSlot::from_letter('A').unwrap()).category(),
            "DIMMs"
        );
    }

    #[test]
    fn rejects_bad_lines() {
        assert_eq!(ReplacementRecord::parse_line(""), None);
        assert_eq!(
            ReplacementRecord::parse_line("2019-02-18 node0005 inventory: component=gpu"),
            None
        );
        assert_eq!(
            ReplacementRecord::parse_line(
                "2019-02-18 node0005 inventory: component=processor socket=3"
            ),
            None
        );
        assert_eq!(
            ReplacementRecord::parse_line("2019-13-18 node0005 inventory: component=motherboard"),
            None
        );
    }
}

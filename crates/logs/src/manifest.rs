//! The generation manifest: `manifest.txt` written beside the logs.
//!
//! A dataset directory is self-describing only if it records *which
//! machine* produced it. Before the manifest existed every consumer
//! silently assumed Astra; with pluggable platform profiles that
//! assumption becomes a correctness bug (evaluating a predictor against
//! a re-simulation under the wrong profile produces confidently wrong
//! numbers). `generate` therefore writes a small `key=value` manifest
//! recording the platform profile, seed, rack count, log format, and
//! tool version, and every load path surfaces it.
//!
//! The format is a versioned header line followed by `key=value` lines:
//!
//! ```text
//! astra-manifest v1
//! profile=astra
//! seed=42
//! racks=4
//! format=text
//! tool=astra-mem 0.1.0
//! ```
//!
//! Unknown keys are ignored (forward compatibility); missing required
//! keys and a missing/foreign header are typed errors so a consumer can
//! distinguish "legacy dataset, no manifest" (fine, assume Astra with a
//! warning) from "manifest present but damaged" (refuse: the recorded
//! provenance exists but cannot be trusted).

use std::fmt;
use std::io::{self, Read, Write as IoWrite};
use std::path::{Path, PathBuf};

/// File name of the manifest inside a dataset directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

/// Header line of manifest version 1.
const HEADER_V1: &str = "astra-manifest v1";

/// Provenance record for one generated dataset directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Platform-profile registry name the dataset was generated under.
    pub profile: String,
    /// RNG seed.
    pub seed: u64,
    /// Rack count of the simulated machine.
    pub racks: u32,
    /// Log format the directory holds (`text` or `bin`).
    pub format: String,
    /// Tool identifier and version that wrote the dataset.
    pub tool: String,
}

impl Manifest {
    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Render to the on-disk text form (header + `key=value` lines).
    pub fn render(&self) -> String {
        format!(
            "{HEADER_V1}\nprofile={}\nseed={}\nracks={}\nformat={}\ntool={}\n",
            self.profile, self.seed, self.racks, self.format, self.tool
        )
    }

    /// Parse the on-disk text form.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let mut lines = text.lines();
        match lines.next().map(str::trim) {
            Some(HEADER_V1) => {}
            Some(other) if other.starts_with("astra-manifest ") => {
                return Err(ManifestError::Malformed(format!(
                    "unsupported manifest version {:?} (this tool reads v1)",
                    other.trim_start_matches("astra-manifest ")
                )));
            }
            _ => {
                return Err(ManifestError::Malformed(
                    "missing 'astra-manifest v1' header line".into(),
                ));
            }
        }

        let mut profile = None;
        let mut seed = None;
        let mut racks = None;
        let mut format = None;
        let mut tool = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ManifestError::Malformed(format!(
                    "line {line:?} is not key=value"
                )));
            };
            match key {
                "profile" => profile = Some(value.to_string()),
                "seed" => {
                    seed = Some(value.parse::<u64>().map_err(|_| {
                        ManifestError::Malformed(format!("seed {value:?} is not a u64"))
                    })?)
                }
                "racks" => {
                    racks = Some(value.parse::<u32>().map_err(|_| {
                        ManifestError::Malformed(format!("racks {value:?} is not a u32"))
                    })?)
                }
                "format" => format = Some(value.to_string()),
                "tool" => tool = Some(value.to_string()),
                // Unknown keys: future versions may add fields.
                _ => {}
            }
        }

        let require = |name: &str, v: Option<String>| {
            v.ok_or_else(|| ManifestError::Malformed(format!("missing required key {name:?}")))
        };
        Ok(Manifest {
            profile: require("profile", profile)?,
            seed: seed
                .ok_or_else(|| ManifestError::Malformed("missing required key \"seed\"".into()))?,
            racks: racks
                .ok_or_else(|| ManifestError::Malformed("missing required key \"racks\"".into()))?,
            format: require("format", format)?,
            tool: require("tool", tool)?,
        })
    }

    /// Write the manifest into `dir` (atomically via a temp file + rename,
    /// matching the log writers' torn-write posture).
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        let final_path = Self::path_in(dir);
        let tmp_path = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Load the manifest from `dir`.
    ///
    /// `Ok(None)` means *no manifest file* — a legacy or hand-assembled
    /// dataset; callers typically fall back to the Astra assumption with
    /// a warning. `Err` means the file exists but cannot be read or
    /// parsed: the provenance record is damaged and silently guessing
    /// would defeat its purpose.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, ManifestError> {
        let path = Self::path_in(dir);
        let mut text = String::new();
        match std::fs::File::open(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ManifestError::Io(e)),
            Ok(mut f) => f.read_to_string(&mut text).map_err(ManifestError::Io)?,
        };
        Self::parse(&text).map(Some)
    }
}

/// Why a present manifest could not be used.
#[derive(Debug)]
pub enum ManifestError {
    /// The file exists but could not be read.
    Io(io::Error),
    /// The file was read but its contents are not a valid v1 manifest.
    Malformed(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest unreadable: {e}"),
            ManifestError::Malformed(detail) => write!(f, "manifest malformed: {detail}"),
        }
    }
}

impl std::error::Error for ManifestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManifestError::Io(e) => Some(e),
            ManifestError::Malformed(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            profile: "x86-ddr4".into(),
            seed: 42,
            racks: 4,
            format: "text".into(),
            tool: "astra-mem 0.1.0".into(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
    }

    #[test]
    fn parse_ignores_unknown_keys_and_blank_lines() {
        let text = "astra-manifest v1\nprofile=astra\n\nseed=7\nracks=2\nformat=bin\nfuture=thing\ntool=t 1\n";
        let m = Manifest::parse(text).unwrap();
        assert_eq!(m.profile, "astra");
        assert_eq!(m.seed, 7);
        assert_eq!(m.format, "bin");
    }

    #[test]
    fn parse_rejects_bad_header_and_versions() {
        let err = Manifest::parse("profile=astra\n").unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        let err = Manifest::parse("astra-manifest v9\nprofile=astra\n").unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
    }

    #[test]
    fn parse_rejects_missing_keys_and_bad_values() {
        let err = Manifest::parse("astra-manifest v1\nprofile=astra\n").unwrap_err();
        assert!(err.to_string().contains("missing required"), "{err}");
        let err = Manifest::parse(
            "astra-manifest v1\nprofile=a\nseed=many\nracks=2\nformat=text\ntool=t\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn file_round_trip_and_missing_dir_is_none() {
        let dir = std::env::temp_dir().join(format!("astra-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Manifest::load(&dir).unwrap().is_none(), "empty dir → None");
        let m = sample();
        m.write(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));
        // Corrupt it: present-but-damaged must be an error, not None.
        std::fs::write(Manifest::path_in(&dir), "garbage\n").unwrap();
        assert!(Manifest::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Log substrate: the textual record formats the paper publishes, plus the
//! kernel-side logging behaviour that shapes what reaches the syslog.
//!
//! §2.4 of the paper describes the released dataset as *text files*: memory
//! failure telemetry extracted from system logs and environmental sensor
//! data from the BMC logs. This crate defines those formats and their
//! parsers:
//!
//! * [`ce`] — correctable-error (CE) syslog records: timestamp, node,
//!   socket, DIMM slot, rank, bank, row (absent on Astra, see §3.2), column,
//!   bit position, physical address, and vendor syndrome.
//! * [`het`] — Hardware Event Tracker records for uncorrectable errors and
//!   other machine events, with the severity classes of Fig 15.
//! * [`sensor`] — BMC environmental records: six temperature sensors and DC
//!   power per node, sampled once per minute.
//! * [`inventory`] — daily inventory-scan component replacement records
//!   (Table 1 / Fig 3).
//! * [`buffer`] — the bounded kernel CE log buffer with periodic polling
//!   (§2.3): correctable errors can be *dropped* when the buffer fills
//!   between polls; uncorrectable errors are never lost. This asymmetry is
//!   one reason the paper insists on analyzing faults rather than raw error
//!   counts.
//! * [`io`] — line-oriented writers and fault-tolerant readers for the
//!   above, so the analyzer consumes exactly what a site would have on
//!   disk.
//! * [`manifest`] — the `manifest.txt` provenance record (platform
//!   profile, seed, rack count, log format, tool version) that makes a
//!   dataset directory self-describing; consumers use it instead of
//!   assuming the Astra profile.
//! * [`binfmt`] — the `astra-binlog` binary columnar format, a compact
//!   peer of the four text formats with per-block CRC framing, plus the
//!   magic-byte auto-detection used on every read path.
//! * [`quarantine`] — the typed bad-line taxonomy and strict/lenient
//!   ingest policy the readers apply to dirty production logs.
//! * [`chaos`] — deterministic fault injection (truncation, bit flips,
//!   non-UTF-8 garbage, reordering, foreign lines, torn writes, flaky
//!   readers) used to prove the readers degrade gracefully.
//!
//! The analyzer crate (`astra-core`) is deliberately restricted to these
//! textual interfaces: it never peeks at simulator internals, which keeps
//! the pipeline runnable against the real published dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod buffer;
pub mod ce;
pub mod chaos;
pub mod het;
pub mod inventory;
pub mod io;
mod kv;
pub mod manifest;
pub mod quarantine;
pub mod sensor;

pub use binfmt::BinFormat;
pub use buffer::CeLogBuffer;
pub use ce::CeRecord;
pub use het::{HetKind, HetRecord, HetSeverity};
pub use inventory::{Component, ReplacementRecord};
pub use manifest::{Manifest, ManifestError, MANIFEST_FILE};
pub use quarantine::{
    IngestMode, IngestOptions, LineFormat, Quarantine, QuarantineReason, RetryPolicy,
};
pub use sensor::SensorRecord;

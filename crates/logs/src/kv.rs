//! Tiny `key=value` tokenizer shared by the record parsers.
//!
//! Log lines in this workspace look like
//! `<timestamp> <node> <source>: k1=v1 k2=v2 …`. The tokenizer splits on
//! single spaces and returns the value for a requested key; parsers then
//! interpret each value. Unknown keys are ignored so formats can gain
//! fields without breaking old parsers.

/// Find `key=` in a space-separated tail and return the raw value.
pub(crate) fn field<'a>(tail: &'a str, key: &str) -> Option<&'a str> {
    tail.split(' ').find_map(|tok| {
        let (k, v) = tok.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Split a log line into `(timestamp, node, source, tail)`.
///
/// The source token carries a trailing colon, e.g. `kernel:`; it is
/// returned without it.
pub(crate) fn split_line(line: &str) -> Option<(&str, &str, &str, &str)> {
    let mut parts = line.splitn(4, ' ');
    let ts = parts.next()?;
    let node = parts.next()?;
    let source = parts.next()?.strip_suffix(':')?;
    let tail = parts.next().unwrap_or("");
    Some((ts, node, source, tail))
}

/// Parse the `node####` form produced by `NodeId`'s `Display`.
pub(crate) fn parse_node(s: &str) -> Option<u32> {
    s.strip_prefix("node")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup() {
        let tail = "a=1 b=two c=0x3";
        assert_eq!(field(tail, "a"), Some("1"));
        assert_eq!(field(tail, "b"), Some("two"));
        assert_eq!(field(tail, "c"), Some("0x3"));
        assert_eq!(field(tail, "d"), None);
    }

    #[test]
    fn split_line_shape() {
        let (ts, node, src, tail) = split_line("2019-01-20T00:00:00 node0001 kernel: x=1").unwrap();
        assert_eq!(ts, "2019-01-20T00:00:00");
        assert_eq!(node, "node0001");
        assert_eq!(src, "kernel");
        assert_eq!(tail, "x=1");
    }

    #[test]
    fn split_line_rejects_missing_colon() {
        assert!(split_line("2019-01-20T00:00:00 node0001 kernel x=1").is_none());
        assert!(split_line("too short").is_none());
    }

    #[test]
    fn node_parse() {
        assert_eq!(parse_node("node0042"), Some(42));
        assert_eq!(parse_node("n42"), None);
        assert_eq!(parse_node("nodeXX"), None);
    }
}

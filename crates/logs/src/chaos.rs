//! Deterministic fault injection for the ingest and checkpoint paths.
//!
//! §2.3 of the paper describes exactly how production telemetry gets
//! dirty: a lossy bounded kernel buffer, mixed producers on one
//! transport, records dropped and truncated mid-write. This module
//! manufactures that dirt on demand — reproducibly, from a seed — so the
//! readers' graceful-degradation claims are *tested*, not asserted:
//!
//! * [`corrupt_dir`] / [`corrupt_file`] damage a clean dataset in place
//!   (truncated final lines, bit flips, non-UTF-8 garbage, duplicated
//!   and displaced records, interleaved foreign syslog lines) and return
//!   a [`ChaosManifest`] of exactly what was injected;
//! * [`corrupt_binary_file`] is the `astra-binlog` peer: payload bit
//!   flips (caught by the per-block CRC) and torn tails, dispatched to
//!   automatically by [`corrupt_dir`] when a log is binary;
//! * [`FailingReader`] wraps any reader with deterministic transient
//!   errors and short reads, exercising the retry path;
//! * [`truncate_file`] / [`tear_checkpoint`] simulate torn checkpoint
//!   writes (partial file, partial `.tmp` with the rename never
//!   happening).
//!
//! The manifest's expected quarantine counts are not book-kept by hand:
//! after corrupting, the file is re-ingested through the very same
//! engine (`io::parse_stream_chunked`) the pipeline uses, and the
//! manifest records what *it* quarantined — plus a self-check that the
//! surviving records equal the clean records minus the damaged ones.
//! `fsck` therefore matches the manifest by construction, and any drift
//! between injector and reader is a hard error here, not a silent test
//! gap.

use std::collections::BTreeSet;
use std::io::{self, Read};
use std::path::Path;

use astra_util::{DetRng, StreamKey};

use crate::binfmt::{self, BinFormat, HEADER_LEN};
use crate::io::{parse_stream_chunked, STREAM_CHUNK_BYTES};
use crate::quarantine::{IngestMode, IngestOptions, LineFormat, Quarantine, RetryPolicy};

/// How much of each kind of corruption to inject, per file.
///
/// Counts are upper bounds: each is capped at `lines/16` of the target
/// file so small logs (a three-line `het.log`) are not drowned — the
/// [`ChaosManifest`] records what was actually injected. Duplicate and
/// reorder injection applies only to time-sorted formats, where the
/// reader can detect it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the deterministic corruption stream.
    pub seed: u64,
    /// Single-bit flips in record bytes (each verified to break parsing).
    pub bit_flips: u32,
    /// Inserted lines of non-UTF-8 garbage.
    pub garbage_lines: u32,
    /// Inserted foreign syslog lines (sshd, ntpd, cron, …).
    pub foreign_lines: u32,
    /// Records copied to a later, order-violating position.
    pub duplicates: u32,
    /// Records moved to a later, order-violating position.
    pub reorders: u32,
    /// Cut the file's final line mid-record (a torn append).
    pub truncate_tail: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            bit_flips: 2,
            garbage_lines: 2,
            foreign_lines: 3,
            duplicates: 1,
            reorders: 1,
            truncate_tail: true,
        }
    }
}

impl ChaosConfig {
    /// Default corruption mix with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }
}

/// What [`corrupt_file`] did to one file.
#[derive(Debug, Clone)]
pub struct FileChaos {
    /// File name within the dataset directory.
    pub name: String,
    /// Quarantine the hardened reader produces on this file — measured,
    /// not predicted (see module docs).
    pub expected: Quarantine,
    /// 0-based clean-file line indices whose records no longer reach the
    /// output (bit-flipped, truncated, or displaced lines). The
    /// equivalence test rebuilds the expected clean dataset from these.
    pub damaged_clean_lines: Vec<usize>,
}

/// Everything [`corrupt_dir`] injected, per file.
#[derive(Debug, Clone, Default)]
pub struct ChaosManifest {
    /// Per-file outcomes, in dataset order (ce, het, inventory, sensors).
    pub files: Vec<FileChaos>,
}

impl ChaosManifest {
    /// All expected quarantines merged.
    pub fn total(&self) -> Quarantine {
        let mut q = Quarantine::default();
        for f in &self.files {
            q.merge(&f.expected);
        }
        q
    }

    /// Per-file report in the same line format `fsck` emits, so the two
    /// can be diffed verbatim.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            out.push_str(&f.expected.report_line(&f.name));
            out.push('\n');
        }
        out.push_str(&self.total().report_line("total"));
        out.push('\n');
        out
    }
}

/// Foreign syslog lines as other producers would interleave them. None
/// carries any of our record markers, so every parser classifies them
/// `UnknownFormat`.
const FOREIGN_LINES: [&str; 5] = [
    "Mar  4 12:07:33 login1 sshd[4721]: Accepted publickey for admin from 10.1.0.5 port 50522",
    "Mar  4 12:09:02 login1 ntpd[812]: kernel reports TIME_ERROR: 0x41: Clock Unsynchronized",
    "Mar  4 13:00:00 mgmt01 systemd[1]: Starting Daily apt download activities...",
    "Mar  4 13:12:45 gw0 dhcpd: DHCPACK on 10.4.2.17 to b8:59:9f:aa:12:34 via eth1",
    "Mar  4 14:02:11 login2 CRON[9981]: (root) CMD (/usr/lib/sysstat/sa1 1 1)",
];

/// One line of the working copy: either a (possibly mutated) clean line
/// or an injected one.
struct Entry {
    clean: Option<usize>,
    bytes: Vec<u8>,
}

fn name_stream(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64))
}

/// Ingest policy used for measuring what a corrupted file yields:
/// unlimited budget, no retry delays.
fn measuring_opts() -> IngestOptions {
    IngestOptions {
        mode: IngestMode::Lenient { max_bad_frac: 1.0 },
        retry: RetryPolicy {
            max_retries: 0,
            backoff_base_ms: 0,
        },
    }
}

/// Corrupt every log of a generated dataset in place.
///
/// Missing files are skipped (e.g. a dataset without `sensors.log`).
/// Each log's format is sniffed by magic bytes: text files take the
/// line-level corruption mix, `astra-binlog` files the block-level one.
pub fn corrupt_dir(dir: &Path, cfg: &ChaosConfig) -> io::Result<ChaosManifest> {
    fn one<T>(
        manifest: &mut ChaosManifest,
        dir: &Path,
        name: &str,
        format: LineFormat<T>,
        bin: BinFormat<T>,
        cfg: &ChaosConfig,
    ) -> io::Result<()>
    where
        T: Clone + PartialEq + Send,
    {
        let path = dir.join(name);
        if !path.exists() {
            return Ok(());
        }
        let chaos = if binfmt::file_is_binlog(&path)? {
            corrupt_binary_file(&path, bin, cfg)?
        } else {
            corrupt_file(&path, format, cfg)?
        };
        manifest.files.push(chaos);
        Ok(())
    }
    let mut manifest = ChaosManifest::default();
    one(
        &mut manifest,
        dir,
        "ce.log",
        crate::ce::FORMAT,
        binfmt::CE,
        cfg,
    )?;
    one(
        &mut manifest,
        dir,
        "het.log",
        crate::het::FORMAT,
        binfmt::HET,
        cfg,
    )?;
    one(
        &mut manifest,
        dir,
        "inventory.log",
        crate::inventory::FORMAT,
        binfmt::INVENTORY,
        cfg,
    )?;
    one(
        &mut manifest,
        dir,
        "sensors.log",
        crate::sensor::FORMAT,
        binfmt::SENSOR,
        cfg,
    )?;
    Ok(manifest)
}

/// Corrupt one clean log file in place and report what was injected.
///
/// The input must be clean (every line parses, time-sorted formats in
/// order, no blank lines) — corruption is injected relative to that
/// baseline, and the post-corruption self-check verifies the hardened
/// reader recovers exactly the undamaged records.
pub fn corrupt_file<T>(
    path: &Path,
    format: LineFormat<T>,
    cfg: &ChaosConfig,
) -> io::Result<FileChaos>
where
    T: Clone + PartialEq + Send,
{
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text = std::fs::read_to_string(path)?;
    let not_clean =
        |what: &str| io::Error::other(format!("chaos needs a clean dataset: {name}: {what}"));

    // Baseline: every clean line must parse, in order.
    let clean_lines: Vec<&str> = text.lines().collect();
    let n = clean_lines.len();
    let mut records: Vec<T> = Vec::with_capacity(n);
    let mut keys: Vec<Option<i64>> = Vec::with_capacity(n);
    let mut prev_key = None;
    for (i, line) in clean_lines.iter().enumerate() {
        if line.trim().is_empty() {
            return Err(not_clean(&format!("blank line {}", i + 1)));
        }
        let rec = (format.parse)(line)
            .ok_or_else(|| not_clean(&format!("unparseable line {}", i + 1)))?;
        let key = format.order_key.map(|k| k(&rec));
        if let (Some(k), Some(p)) = (key, prev_key) {
            if k < p {
                return Err(not_clean(&format!("out-of-order line {}", i + 1)));
            }
        }
        prev_key = key.or(prev_key);
        records.push(rec);
        keys.push(key);
    }

    let mut entries: Vec<Entry> = clean_lines
        .iter()
        .enumerate()
        .map(|(i, line)| Entry {
            clean: Some(i),
            bytes: line.as_bytes().to_vec(),
        })
        .collect();
    let mut damaged: BTreeSet<usize> = BTreeSet::new();
    let mut rng = DetRng::for_stream(cfg.seed, StreamKey::root("chaos").with(name_stream(&name)));
    // Small files get proportionally less of each corruption kind so the
    // quarantined fraction stays well under any sane lenient budget.
    let cap = |count: u32| (count as usize).min(n / 16);

    // Bit flips: each verified to actually break parsing (a flip that
    // yields another valid record, a blank line, or a newline would
    // corrupt silently — exactly what must not happen here).
    for _ in 0..cap(cfg.bit_flips) {
        for _attempt in 0..64 {
            let pos = rng.below(entries.len() as u64) as usize;
            let Some(idx) = entries[pos].clean else {
                continue;
            };
            if damaged.contains(&idx) || entries[pos].bytes.is_empty() {
                continue;
            }
            let byte = rng.below(entries[pos].bytes.len() as u64) as usize;
            let flipped = entries[pos].bytes[byte] ^ (1 << rng.below(8));
            if flipped == b'\n' {
                continue;
            }
            let mut cand = entries[pos].bytes.clone();
            cand[byte] = flipped;
            let breaks = match std::str::from_utf8(&cand) {
                Err(_) => true,
                Ok(s) => !s.trim().is_empty() && (format.parse)(s).is_none(),
            };
            if !breaks {
                continue;
            }
            entries[pos].bytes = cand;
            damaged.insert(idx);
            break;
        }
    }

    // Non-UTF-8 garbage lines (0xFE is never valid UTF-8).
    for _ in 0..cap(cfg.garbage_lines) {
        let len = rng.range_inclusive(8, 40) as usize;
        let mut bytes = vec![0u8; len];
        rng.fill_bytes(&mut bytes);
        for b in &mut bytes {
            if *b == b'\n' {
                *b = 0x00;
            }
        }
        bytes[0] = 0xFE;
        let at = rng.below(entries.len() as u64 + 1) as usize;
        entries.insert(at, Entry { clean: None, bytes });
    }

    // Interleaved foreign producers.
    for _ in 0..cap(cfg.foreign_lines) {
        let line = *rng.pick(&FOREIGN_LINES);
        let at = rng.below(entries.len() as u64 + 1) as usize;
        entries.insert(
            at,
            Entry {
                clean: None,
                bytes: line.as_bytes().to_vec(),
            },
        );
    }

    // Duplicates and reorders need a detectable ordering violation: the
    // record must land somewhere the running maximum already exceeds its
    // key, and the record supplying that maximum must stay *before* it
    // through every later operation. Reorders therefore run first
    // (moving records to the end, where every undamaged greater-key
    // record precedes them), then duplicates (inserted just after an
    // undamaged greater-key anchor, never at the final position — the
    // tail truncation owns that). Only meaningful for time-sorted
    // formats, and only for records whose key is strictly below the
    // undamaged maximum.
    if format.order_key.is_some() {
        let candidates = |damaged: &BTreeSet<usize>| -> Vec<usize> {
            let max = (0..n)
                .filter(|i| !damaged.contains(i))
                .filter_map(|i| keys[i])
                .max();
            match max {
                None => Vec::new(),
                Some(max) => (0..n)
                    .filter(|i| !damaged.contains(i) && keys[*i].is_some_and(|k| k < max))
                    .collect(),
            }
        };
        for _ in 0..cap(cfg.reorders) {
            let c = candidates(&damaged);
            if c.is_empty() {
                break;
            }
            let i = *rng.pick(&c);
            let pos = entries
                .iter()
                .position(|e| e.clean == Some(i))
                .expect("undamaged clean line is present");
            let moved = entries.remove(pos);
            entries.push(moved);
            damaged.insert(i);
        }
        for _ in 0..cap(cfg.duplicates) {
            let c = candidates(&damaged);
            if c.is_empty() {
                break;
            }
            let i = *rng.pick(&c);
            let key_i = keys[i].expect("candidate has a key");
            // First undamaged clean record whose key exceeds the copy's —
            // an anchor nothing after this point can move or damage.
            let vpos = entries.iter().position(|e| match e.clean {
                Some(j) if !damaged.contains(&j) => keys[j].is_some_and(|k| k > key_i),
                _ => false,
            });
            let Some(vpos) = vpos else { continue };
            if vpos + 1 > entries.len() - 1 {
                continue;
            }
            let at = rng.range_inclusive(vpos as u64 + 1, entries.len() as u64 - 1) as usize;
            entries.insert(
                at,
                Entry {
                    clean: None,
                    bytes: clean_lines[i].as_bytes().to_vec(),
                },
            );
        }
    }

    // Torn final append: cut the last line mid-record, keeping a
    // non-blank prefix that no longer parses.
    let mut truncated = false;
    if cfg.truncate_tail && n >= 2 {
        let last_bytes = entries.last().map(|e| e.bytes.clone()).unwrap_or_default();
        if last_bytes.len() >= 2 {
            for _attempt in 0..64 {
                let keep = rng.range_inclusive(1, last_bytes.len() as u64 - 1) as usize;
                let breaks = match std::str::from_utf8(&last_bytes[..keep]) {
                    Err(_) => true,
                    Ok(s) => !s.trim().is_empty() && (format.parse)(s).is_none(),
                };
                if !breaks {
                    continue;
                }
                let last = entries.last_mut().expect("entries is non-empty");
                last.bytes.truncate(keep);
                if let Some(idx) = last.clean {
                    damaged.insert(idx);
                }
                truncated = true;
                break;
            }
        }
    }

    // Assemble; a torn tail has no trailing newline.
    let mut out = Vec::with_capacity(text.len() + 256);
    for (i, e) in entries.iter().enumerate() {
        out.extend_from_slice(&e.bytes);
        if i + 1 < entries.len() || !truncated {
            out.push(b'\n');
        }
    }

    // Measure the expected quarantine with the real reader, and
    // self-check that it recovers exactly the undamaged records.
    let (parsed, expected, ..) = parse_stream_chunked(
        out.as_slice(),
        format,
        &measuring_opts(),
        STREAM_CHUNK_BYTES,
    )
    .map_err(|e| io::Error::other(format!("chaos self-check ingest failed: {e}")))?;
    let surviving: Vec<T> = (0..n)
        .filter(|i| !damaged.contains(i))
        .map(|i| records[i].clone())
        .collect();
    if parsed.records != surviving {
        return Err(io::Error::other(format!(
            "chaos self-check failed for {name}: reader recovered {} records, \
             expected {} (clean {} minus {} damaged)",
            parsed.records.len(),
            surviving.len(),
            n,
            damaged.len(),
        )));
    }

    std::fs::write(path, &out)?;
    Ok(FileChaos {
        name,
        expected,
        damaged_clean_lines: damaged.into_iter().collect(),
    })
}

/// Corrupt one clean `astra-binlog` file in place and report what was
/// injected.
///
/// Binary corruption is block-granular: a payload bit flip is caught by
/// that block's CRC trailer (`BlockCrc`, the reader skips the block and
/// continues), and a torn final append cuts into the last block's
/// trailer (`TruncatedBlock`). The line-level kinds — garbage, foreign
/// producers, duplicates, reorders — have no binary equivalent: nothing
/// else writes into a binlog, and record order is internal to a block.
/// At most half the blocks take a flip, mirroring the text path's
/// scale-down, so the quarantined fraction stays under any sane lenient
/// budget. In the manifest, `damaged_clean_lines` holds the 0-based
/// *record* indices lost with their damaged blocks.
pub fn corrupt_binary_file<T>(
    path: &Path,
    bin: BinFormat<T>,
    cfg: &ChaosConfig,
) -> io::Result<FileChaos>
where
    T: Clone + PartialEq + Send,
{
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let mut data = std::fs::read(path)?;

    // Baseline: the whole container must verify and decode cleanly.
    let (clean, q, ..) = binfmt::parse_binary_stream(data.as_slice(), bin, &measuring_opts())
        .map_err(|e| io::Error::other(format!("chaos needs a clean dataset: {name}: {e}")))?;
    if !q.is_empty() {
        return Err(io::Error::other(format!(
            "chaos needs a clean dataset: {name}: pre-damaged blocks {}",
            q.summary()
        )));
    }

    // Map the block layout: each block's payload byte range and the
    // clean-record index range it carries (payloads are self-contained,
    // so a per-block decode recovers the split).
    struct Block {
        payload: std::ops::Range<usize>,
        records: std::ops::Range<usize>,
    }
    let mut blocks: Vec<Block> = Vec::new();
    let mut pos = HEADER_LEN;
    let mut seen = 0usize;
    let mut scratch: Vec<T> = Vec::new();
    while pos < data.len() {
        let len =
            u32::from_le_bytes(data[pos..pos + 4].try_into().expect("clean framing")) as usize;
        let payload = pos + 4..pos + 4 + len;
        scratch.clear();
        (bin.decode)(&data[payload.clone()], &mut scratch)
            .ok_or_else(|| io::Error::other(format!("{name}: undecodable clean block")))?;
        blocks.push(Block {
            payload: payload.clone(),
            records: seen..seen + scratch.len(),
        });
        seen += scratch.len();
        pos = payload.end + 4;
    }

    let mut rng = DetRng::for_stream(
        cfg.seed,
        StreamKey::root("chaos-bin").with(name_stream(&name)),
    );
    let mut damaged_blocks: BTreeSet<usize> = BTreeSet::new();

    // Payload bit flips: any flipped bit fails the block CRC, no
    // verification pass needed.
    let flips = (cfg.bit_flips as usize).min(blocks.len() / 2);
    for _ in 0..flips {
        for _attempt in 0..64 {
            let b = rng.below(blocks.len() as u64) as usize;
            if damaged_blocks.contains(&b) {
                continue;
            }
            let r = &blocks[b].payload;
            let at = r.start + rng.below(r.len() as u64) as usize;
            data[at] ^= 1 << rng.below(8);
            damaged_blocks.insert(b);
            break;
        }
    }

    // Torn final append: cut into the last block's CRC trailer.
    if cfg.truncate_tail && !blocks.is_empty() {
        let cut = rng.range_inclusive(1, 3) as usize;
        data.truncate(data.len() - cut);
        damaged_blocks.insert(blocks.len() - 1);
    }

    // Measure the expected quarantine with the real reader, and
    // self-check that it recovers exactly the undamaged blocks' records.
    let (parsed, expected, ..) =
        binfmt::parse_binary_stream(data.as_slice(), bin, &measuring_opts())
            .map_err(|e| io::Error::other(format!("chaos self-check ingest failed: {e}")))?;
    let mut damaged_records: Vec<usize> = Vec::new();
    let mut surviving: Vec<T> = Vec::new();
    for (b, block) in blocks.iter().enumerate() {
        if damaged_blocks.contains(&b) {
            damaged_records.extend(block.records.clone());
        } else {
            surviving.extend_from_slice(&clean.records[block.records.clone()]);
        }
    }
    if parsed.records != surviving {
        return Err(io::Error::other(format!(
            "chaos self-check failed for {name}: reader recovered {} records, \
             expected {} (clean {} minus {} in damaged blocks)",
            parsed.records.len(),
            surviving.len(),
            clean.records.len(),
            damaged_records.len(),
        )));
    }

    std::fs::write(path, &data)?;
    Ok(FileChaos {
        name,
        expected,
        damaged_clean_lines: damaged_records,
    })
}

/// Truncate a file to its first `keep_bytes` bytes — a write torn
/// mid-file (or a partial `.tmp` if pointed at one).
pub fn truncate_file(path: &Path, keep_bytes: u64) -> io::Result<()> {
    let data = std::fs::read(path)?;
    let keep = (keep_bytes as usize).min(data.len());
    std::fs::write(path, &data[..keep])
}

/// Simulate a checkpoint write torn before the atomic rename: the first
/// `keep_bytes` of `next_state` land in `<path>.tmp`, while `path`
/// itself (the previous complete checkpoint, if any) is left untouched.
pub fn tear_checkpoint(path: &Path, next_state: &[u8], keep_bytes: u64) -> io::Result<()> {
    let keep = (keep_bytes as usize).min(next_state.len());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::fs::write(std::path::PathBuf::from(tmp), &next_state[..keep])
}

/// Deterministic flaky reader: injects transient errors and short reads
/// around an inner reader.
///
/// Failures are bounded — at most `max_consecutive` in a row — so a
/// caller with a bounded retry policy always makes progress. Reads that
/// succeed may be short (1–7 bytes) to exercise partial-read handling.
pub struct FailingReader<R> {
    inner: R,
    rng: DetRng,
    /// Probability that a read attempt fails with a transient error.
    fail_prob: f64,
    /// Upper bound on back-to-back failures.
    max_consecutive: u32,
    consecutive: u32,
    /// Also deliver short reads on success.
    short_reads: bool,
}

impl<R> FailingReader<R> {
    /// Wrap `inner` with the default mix (20 % transient failures, at
    /// most 2 consecutive, short reads on).
    pub fn new(inner: R, seed: u64) -> Self {
        FailingReader {
            inner,
            rng: DetRng::for_stream(seed, StreamKey::root("chaos").with(0xF1A)),
            fail_prob: 0.2,
            max_consecutive: 2,
            consecutive: 0,
            short_reads: true,
        }
    }

    /// Override the failure probability (clamped to `[0, 1]`).
    pub fn with_fail_prob(mut self, p: f64) -> Self {
        self.fail_prob = p.clamp(0.0, 1.0);
        self
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.consecutive < self.max_consecutive && self.rng.chance(self.fail_prob) {
            self.consecutive += 1;
            return Err(io::Error::other("injected transient I/O error"));
        }
        self.consecutive = 0;
        if self.short_reads && buf.len() > 1 {
            let n = self.rng.range_inclusive(1, buf.len().min(7) as u64) as usize;
            self.inner.read(&mut buf[..n])
        } else {
            self.inner.read(buf)
        }
    }
}

/// What an armed shard-failure injection does to the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultMode {
    /// Die hard mid-stream (`std::process::abort` — nonzero exit, no
    /// snapshot), like an OOM kill or a segfault.
    Abort,
    /// Stop making progress without exiting, like a worker wedged on a
    /// dead NFS mount — only the supervisor's deadline gets rid of it.
    Hang,
    /// Exit 0 but leave a truncated snapshot behind, like a node that
    /// lost power after the rename — the CRC-sealed container is what
    /// catches it.
    TornSnapshot,
}

impl ShardFaultMode {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(ShardFaultMode::Abort),
            "hang" => Some(ShardFaultMode::Hang),
            "torn" => Some(ShardFaultMode::TornSnapshot),
            _ => None,
        }
    }
}

/// Environment-armed shard-failure injector for the sharded supervisor's
/// worker subprocesses.
///
/// `ASTRA_SHARD_CHAOS=<abort|hang|torn>:<shard>:<records>` arms one
/// fault: the worker with index `<shard>` trips `<mode>` right after
/// consuming its `<records>`-th in-range record — a deterministic point
/// in the stream, so every supervision path (retry after crash, deadline
/// kill after hang, reject-and-retry after torn snapshot) replays
/// exactly.
///
/// Workers are child processes, so the trip budget must live outside any
/// one process: `ASTRA_SHARD_CHAOS_TRIPS=<file>` names a shared tally
/// file (one appended line per trip) and `ASTRA_SHARD_CHAOS_MAX_TRIPS=N`
/// bounds it. With `MAX_TRIPS=1` the first attempt fails and the retry
/// succeeds — the recovery test; without a tally file every attempt
/// trips — the retries-exhausted test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardChaos {
    /// What to do when the trip point is reached.
    pub mode: ShardFaultMode,
    /// Worker (shard index) the fault is armed for.
    pub shard: u32,
    /// Trip after this many in-range records have been consumed.
    pub at_records: u64,
    /// Shared trip-tally file and budget (`None` = unlimited trips).
    pub budget: Option<(std::path::PathBuf, u64)>,
}

/// Environment variable arming the injector.
pub const SHARD_CHAOS_ENV: &str = "ASTRA_SHARD_CHAOS";
/// Environment variable naming the shared trip-tally file.
pub const SHARD_CHAOS_TRIPS_ENV: &str = "ASTRA_SHARD_CHAOS_TRIPS";
/// Environment variable bounding total trips across all attempts.
pub const SHARD_CHAOS_MAX_TRIPS_ENV: &str = "ASTRA_SHARD_CHAOS_MAX_TRIPS";

impl ShardChaos {
    /// Parse the `mode:shard:records` spec (as found in
    /// [`SHARD_CHAOS_ENV`]).
    pub fn parse(spec: &str) -> Option<ShardChaos> {
        let mut parts = spec.split(':');
        let mode = ShardFaultMode::parse(parts.next()?)?;
        let shard = parts.next()?.parse().ok()?;
        let at_records = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(ShardChaos {
            mode,
            shard,
            at_records,
            budget: None,
        })
    }

    /// Read the injector armed in the environment, if any. A malformed
    /// spec is a loud error, not a silently disarmed injector — a chaos
    /// test that thinks it is injecting but isn't proves nothing.
    pub fn from_env() -> Result<Option<ShardChaos>, String> {
        let Ok(spec) = std::env::var(SHARD_CHAOS_ENV) else {
            return Ok(None);
        };
        let mut chaos = ShardChaos::parse(&spec).ok_or_else(|| {
            format!(
                "bad {SHARD_CHAOS_ENV} spec {spec:?} (want <abort|hang|torn>:<shard>:<records>)"
            )
        })?;
        if let Ok(path) = std::env::var(SHARD_CHAOS_TRIPS_ENV) {
            let max = match std::env::var(SHARD_CHAOS_MAX_TRIPS_ENV) {
                Ok(v) => v
                    .parse()
                    .map_err(|_| format!("bad {SHARD_CHAOS_MAX_TRIPS_ENV} value {v:?}"))?,
                Err(_) => 1,
            };
            chaos.budget = Some((std::path::PathBuf::from(path), max));
        }
        Ok(Some(chaos))
    }

    /// Should this worker trip now? True exactly when the armed shard
    /// has just consumed its `at_records`-th record and the shared
    /// budget (if any) is not exhausted; a `true` return is tallied
    /// against the budget.
    pub fn should_trip(&self, shard: u32, records_consumed: u64) -> bool {
        if shard != self.shard || records_consumed != self.at_records {
            return false;
        }
        match &self.budget {
            None => true,
            Some((path, max)) => {
                let spent = std::fs::read_to_string(path)
                    .map(|s| s.lines().count() as u64)
                    .unwrap_or(0);
                if spent >= *max {
                    return false;
                }
                // Workers of one supervisor run are spawned and retried
                // sequentially per shard, so append-then-count has no
                // racing writer to lose a tally to.
                use std::io::Write as _;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(f, "trip shard={shard} records={records_consumed}");
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeRecord;
    use crate::quarantine::QuarantineReason;
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId};
    use astra_util::CalDate;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp dir with panic-safe cleanup (same pattern as the
    /// pipeline tests).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "astra-chaos-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed),
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn ce(minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('C').unwrap();
        CeRecord {
            time: CalDate::new(2019, 4, 1).midnight().plus(minute),
            node: NodeId(9),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 2,
            row: None,
            col: 11,
            bit_pos: 7,
            addr: PhysAddr(0x1234C0),
            syndrome: 0xBEEF,
        }
    }

    fn write_ce_log(dir: &Path, lines: usize) -> PathBuf {
        let mut text = String::new();
        for i in 0..lines {
            text.push_str(&ce(i as i64).to_line());
            text.push('\n');
        }
        let path = dir.join("ce.log");
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn corrupt_file_is_deterministic() {
        let tmp = TempDir::new("det");
        let a = write_ce_log(&tmp.0, 100);
        let m1 = corrupt_file(&a, crate::ce::FORMAT, &ChaosConfig::with_seed(7)).unwrap();
        let bytes1 = std::fs::read(&a).unwrap();
        let b_dir = TempDir::new("det2");
        let b = write_ce_log(&b_dir.0, 100);
        let m2 = corrupt_file(&b, crate::ce::FORMAT, &ChaosConfig::with_seed(7)).unwrap();
        let bytes2 = std::fs::read(&b).unwrap();
        assert_eq!(bytes1, bytes2);
        assert_eq!(m1.expected, m2.expected);
        assert_eq!(m1.damaged_clean_lines, m2.damaged_clean_lines);
        // A different seed corrupts differently.
        let c_dir = TempDir::new("det3");
        let c = write_ce_log(&c_dir.0, 100);
        corrupt_file(&c, crate::ce::FORMAT, &ChaosConfig::with_seed(8)).unwrap();
        assert_ne!(bytes1, std::fs::read(&c).unwrap());
    }

    #[test]
    fn corrupt_file_injects_every_kind() {
        let tmp = TempDir::new("kinds");
        let path = write_ce_log(&tmp.0, 200);
        let chaos = corrupt_file(&path, crate::ce::FORMAT, &ChaosConfig::with_seed(3)).unwrap();
        // Bit flips can land under any reason (they break parsing in
        // whatever way the flipped byte dictates), and the truncated
        // tail may hit the reorder-moved final entry — so lower bounds
        // for the overlapping kinds, exact totals for the rest.
        assert!(
            chaos.expected.count(QuarantineReason::BadUtf8) >= 2,
            "garbage lines"
        );
        assert!(
            chaos.expected.count(QuarantineReason::UnknownFormat) >= 3,
            "foreign lines"
        );
        assert!(
            chaos.expected.count(QuarantineReason::OutOfOrder) >= 1,
            "duplicate and/or reorder"
        );
        // 2 flips + 2 garbage + 3 foreign + 1 dup + 1 reorder (+ tail
        // truncation, which may coincide with the reorder entry).
        assert!(chaos.expected.total() >= 9);
        assert!(!chaos.damaged_clean_lines.is_empty());
        // Self-check already ran inside corrupt_file; double-check the
        // lenient reader sees exactly the manifest's quarantine.
        let bytes = std::fs::read(&path).unwrap();
        let (_, q, ..) = parse_stream_chunked(
            bytes.as_slice(),
            crate::ce::FORMAT,
            &measuring_opts(),
            STREAM_CHUNK_BYTES,
        )
        .unwrap();
        assert_eq!(q.counts, chaos.expected.counts);
    }

    #[test]
    fn small_files_get_scaled_down_corruption() {
        let tmp = TempDir::new("small");
        let path = write_ce_log(&tmp.0, 3);
        let chaos = corrupt_file(&path, crate::ce::FORMAT, &ChaosConfig::with_seed(5)).unwrap();
        // cap = 3/16 = 0 of every line kind; only the tail truncation
        // applies.
        assert_eq!(chaos.expected.total(), 1);
        assert_eq!(chaos.damaged_clean_lines, vec![2]);
    }

    fn write_bin_ce_log(dir: &Path, blocks: usize, per_block: usize) -> PathBuf {
        let mut data = Vec::from(binfmt::header_bytes(
            binfmt::KIND_CE,
            (blocks * per_block) as u64,
        ));
        let mut minute = 0i64;
        for _ in 0..blocks {
            let recs: Vec<CeRecord> = (0..per_block)
                .map(|_| {
                    minute += 1;
                    ce(minute)
                })
                .collect();
            let mut payload = Vec::new();
            (binfmt::CE.encode)(&recs, &mut payload);
            binfmt::append_block(&mut data, &payload);
        }
        let path = dir.join("ce.log");
        std::fs::write(&path, data).unwrap();
        path
    }

    #[test]
    fn corrupt_binary_file_damages_blocks_and_tail() {
        let tmp = TempDir::new("bin");
        let path = write_bin_ce_log(&tmp.0, 6, 40);
        let chaos = corrupt_binary_file(&path, binfmt::CE, &ChaosConfig::with_seed(9)).unwrap();
        assert!(
            chaos.expected.count(QuarantineReason::BlockCrc) >= 1,
            "payload bit flips must fail the block CRC"
        );
        assert!(
            chaos.expected.count(QuarantineReason::TruncatedBlock) >= 1,
            "torn tail must quarantine as truncated"
        );
        // Whole damaged blocks' records are reported lost.
        assert!(chaos.damaged_clean_lines.len() >= 40);
        // fsck's decode-free CRC sweep reaches the same verdicts the
        // measuring full decode did, so manifest-vs-fsck diffs hold for
        // binary logs too.
        let sweep = binfmt::fsck_scan(&path, binfmt::KIND_CE).unwrap();
        assert_eq!(sweep.counts, chaos.expected.counts);
        // Deterministic: same seed, same damage.
        let tmp2 = TempDir::new("bin2");
        let path2 = write_bin_ce_log(&tmp2.0, 6, 40);
        let chaos2 = corrupt_binary_file(&path2, binfmt::CE, &ChaosConfig::with_seed(9)).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        assert_eq!(chaos.damaged_clean_lines, chaos2.damaged_clean_lines);
    }

    #[test]
    fn corrupt_dir_dispatches_on_magic_bytes() {
        let tmp = TempDir::new("bin-dir");
        write_bin_ce_log(&tmp.0, 4, 30);
        let manifest = corrupt_dir(&tmp.0, &ChaosConfig::with_seed(11)).unwrap();
        assert_eq!(manifest.files.len(), 1);
        let total = manifest.total();
        assert!(
            total.count(QuarantineReason::BlockCrc) + total.count(QuarantineReason::TruncatedBlock)
                > 0,
            "binary log must take block-level corruption"
        );
        // The report still renders in fsck's line format.
        assert!(manifest.report().starts_with("ce.log: quarantined"));
    }

    #[test]
    fn rejects_dirty_input() {
        let tmp = TempDir::new("dirty");
        let path = tmp.0.join("ce.log");
        std::fs::write(&path, "not a record\n").unwrap();
        let err = corrupt_file(&path, crate::ce::FORMAT, &ChaosConfig::default()).unwrap_err();
        assert!(err.to_string().contains("clean dataset"), "{err}");
    }

    #[test]
    fn failing_reader_with_retries_parses_everything() {
        let mut text = String::new();
        for i in 0..500 {
            text.push_str(&ce(i).to_line());
            text.push('\n');
        }
        let flaky = FailingReader::new(text.as_bytes(), 42);
        let opts = IngestOptions {
            retry: RetryPolicy {
                max_retries: 4,
                backoff_base_ms: 0,
            },
            ..IngestOptions::default()
        };
        let (parsed, q, bytes, _) =
            parse_stream_chunked(flaky, crate::ce::FORMAT, &opts, 4096).unwrap();
        assert_eq!(parsed.records.len(), 500);
        assert!(q.is_empty());
        assert_eq!(bytes, text.len());
    }

    #[test]
    fn failing_reader_without_retries_surfaces_errors() {
        let text = format!("{}\n", ce(1).to_line());
        // 100 % failure probability: the first read fails; a zero-retry
        // policy must surface it.
        let flaky = FailingReader::new(text.as_bytes(), 42).with_fail_prob(1.0);
        let opts = IngestOptions {
            retry: RetryPolicy {
                max_retries: 0,
                backoff_base_ms: 0,
            },
            ..IngestOptions::default()
        };
        let err = parse_stream_chunked(flaky, crate::ce::FORMAT, &opts, 4096).unwrap_err();
        assert!(matches!(err, crate::io::IngestError::Io(_)));
    }

    #[test]
    fn torn_write_helpers() {
        let tmp = TempDir::new("tear");
        let path = tmp.0.join("ckpt");
        std::fs::write(&path, b"old complete checkpoint\n").unwrap();
        tear_checkpoint(&path, b"new checkpoint that never finished\n", 10).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"old complete checkpoint\n",
            "original untouched"
        );
        let tmp_file = tmp.0.join("ckpt.tmp");
        assert_eq!(std::fs::read(&tmp_file).unwrap(), b"new checkp");
        truncate_file(&path, 3).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
    }

    #[test]
    fn shard_chaos_spec_parses_and_rejects() {
        let c = ShardChaos::parse("abort:2:1000").unwrap();
        assert_eq!(c.mode, ShardFaultMode::Abort);
        assert_eq!(c.shard, 2);
        assert_eq!(c.at_records, 1000);
        assert_eq!(
            ShardChaos::parse("hang:0:5").unwrap().mode,
            ShardFaultMode::Hang
        );
        assert_eq!(
            ShardChaos::parse("torn:1:3").unwrap().mode,
            ShardFaultMode::TornSnapshot
        );
        for bad in [
            "",
            "abort",
            "abort:2",
            "abort:x:1",
            "oom:0:1",
            "abort:0:1:9",
        ] {
            assert!(ShardChaos::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn shard_chaos_trips_only_at_the_armed_point() {
        let c = ShardChaos::parse("abort:1:100").unwrap();
        assert!(!c.should_trip(0, 100), "wrong shard");
        assert!(!c.should_trip(1, 99), "before the trip point");
        assert!(!c.should_trip(1, 101), "past the trip point");
        assert!(c.should_trip(1, 100));
        // No budget: every attempt trips again.
        assert!(c.should_trip(1, 100));
    }

    #[test]
    fn shard_chaos_budget_is_shared_through_the_tally_file() {
        let tmp = TempDir::new("shard-budget");
        let tally = tmp.0.join("trips");
        let mut c = ShardChaos::parse("abort:0:7").unwrap();
        c.budget = Some((tally.clone(), 2));
        // Two trips spend the budget; the third attempt sails through —
        // the crash-then-recover test in one assertion chain.
        assert!(c.should_trip(0, 7));
        assert!(c.should_trip(0, 7));
        assert!(!c.should_trip(0, 7), "budget exhausted");
        assert_eq!(std::fs::read_to_string(&tally).unwrap().lines().count(), 2);
    }
}

//! Line-oriented log writers and fault-tolerant readers.
//!
//! Real syslogs contain lines from many producers plus occasional
//! corruption; the readers here skip anything that does not parse and count
//! the skips, mirroring how a site's extraction scripts behave. Writers are
//! plain `io::Write` adapters so logs stream to files, pipes, or an
//! in-memory `Vec<u8>` in tests without buffering whole datasets.

use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::path::Path;

use crate::quarantine::{IngestOptions, LineFormat, Quarantine, QuarantineReason, RetryPolicy};

/// Write an iterator of serializable records as lines.
pub fn write_lines<W, I, T, F>(sink: W, records: I, to_line: F) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = T>,
    F: Fn(&T) -> String,
{
    write_lines_with(sink, records, |rec, buf| buf.push_str(&to_line(rec)))
}

/// Write an iterator of records as lines through one reused buffer.
///
/// `fill` appends a record's line (without the newline) to the supplied
/// `String`; the buffer is cleared and reused across records, so bulk
/// serialization performs no per-record allocation. Pair with the record
/// types' `to_line_into` methods.
pub fn write_lines_with<W, I, T, F>(mut sink: W, records: I, fill: F) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = T>,
    F: Fn(&T, &mut String),
{
    let mut buf = String::with_capacity(160);
    let mut n = 0;
    for rec in records {
        buf.clear();
        fill(&rec, &mut buf);
        buf.push('\n');
        sink.write_all(buf.as_bytes())?;
        n += 1;
    }
    Ok(n)
}

/// Result of reading a log: parsed records plus lines skipped as foreign
/// or corrupt.
#[derive(Debug, Clone)]
pub struct ParsedLog<T> {
    /// Successfully parsed records, in file order.
    pub records: Vec<T>,
    /// Count of lines that did not parse as `T`.
    pub skipped: u64,
}

/// Read all lines from `source`, parsing each with `parse`. Unparseable
/// lines (foreign producers, corruption) are skipped and counted; blank
/// lines are ignored entirely.
pub fn read_lines<R, T, F>(source: R, parse: F) -> io::Result<ParsedLog<T>>
where
    R: BufRead,
    F: Fn(&str) -> Option<T>,
{
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in source.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse(&line) {
            Some(rec) => records.push(rec),
            None => skipped += 1,
        }
    }
    Ok(ParsedLog { records, skipped })
}

impl<T> ParsedLog<T> {
    /// Publish this log's parse outcome under `parse.<stage>.*` in the
    /// global metrics registry: lines parsed, lines skipped, and bytes
    /// consumed. The skip counter is the §2.3 lesson applied to our own
    /// apparatus — corrupt/foreign lines are dropped silently by the
    /// parser, so the registry is where that loss becomes visible.
    fn publish(&self, stage: &str, bytes: usize) {
        let obs = astra_obs::global();
        obs.counter(&format!("parse.{stage}.lines_ok"))
            .add(self.records.len() as u64);
        obs.counter(&format!("parse.{stage}.lines_skipped"))
            .add(self.skipped);
        obs.counter(&format!("parse.{stage}.bytes"))
            .add(bytes as u64);
    }
}

/// [`read_lines`] plus metrics: records the outcome under
/// `parse.<stage>.*` and times the pass under `time.parse.<stage>`.
pub fn read_lines_metered<R, T, F>(source: R, parse: F, stage: &str) -> io::Result<ParsedLog<T>>
where
    R: BufRead,
    F: Fn(&str) -> Option<T>,
{
    let mut span = astra_obs::span(&format!("parse.{stage}"));
    let parsed = read_lines(source, parse)?;
    parsed.publish(stage, 0);
    span.attach("lines_ok", parsed.records.len() as i64);
    span.attach("lines_skipped", parsed.skipped as i64);
    Ok(parsed)
}

/// [`parse_lines_parallel`] plus metrics: per-stage line/skip/byte
/// counters, the shard count, the per-shard line distribution, and a
/// `time.parse.<stage>` span.
pub fn parse_lines_parallel_metered<T, F>(text: &str, parse: F, stage: &str) -> ParsedLog<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let mut span = astra_obs::span(&format!("parse.{stage}"));
    let parsed = parse_lines_parallel_inner(text, parse, Some(stage));
    parsed.publish(stage, text.len());
    span.attach("lines_ok", parsed.records.len() as i64);
    span.attach("lines_skipped", parsed.skipped as i64);
    parsed
}

/// Parse a whole in-memory log in parallel.
///
/// The text is split at line boundaries into one shard per worker;
/// shards parse independently and results are concatenated in order, so
/// the output is identical to [`read_lines`] on the same input. On a
/// full-scale CE log (hundreds of MB) this is the difference between a
/// coffee break and a blink.
pub fn parse_lines_parallel<T, F>(text: &str, parse: F) -> ParsedLog<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    parse_lines_parallel_inner(text, parse, None)
}

fn parse_lines_parallel_inner<T, F>(text: &str, parse: F, stage: Option<&str>) -> ParsedLog<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let workers = astra_util::par::worker_count(text.len() / 4096 + 1);
    if workers <= 1 || text.len() < 64 * 1024 {
        let _shard_span = astra_obs::span("parse.shard");
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse(line) {
                Some(rec) => records.push(rec),
                None => skipped += 1,
            }
        }
        if let Some(stage) = stage {
            record_shard_metrics(stage, &[records.len()]);
        }
        return ParsedLog { records, skipped };
    }

    // Cut the text into `workers` shards on line boundaries.
    let shards = split_line_shards(text, workers);

    let parsed: Vec<ParsedLog<T>> = astra_util::par::par_map(&shards, |shard| {
        // Workers inherit the caller's span root, so this nests under
        // the metered `parse.<stage>` span at any worker count.
        let _shard_span = astra_obs::span("parse.shard");
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in shard.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse(line) {
                Some(rec) => records.push(rec),
                None => skipped += 1,
            }
        }
        ParsedLog { records, skipped }
    });

    if let Some(stage) = stage {
        let shard_lines: Vec<usize> = parsed.iter().map(|p| p.records.len()).collect();
        record_shard_metrics(stage, &shard_lines);
    }

    let mut records = Vec::with_capacity(parsed.iter().map(|p| p.records.len()).sum());
    let mut skipped = 0;
    for shard in parsed {
        records.extend(shard.records);
        skipped += shard.skipped;
    }
    ParsedLog { records, skipped }
}

/// Default chunk size for the streaming parsers: large enough that the
/// per-chunk shard parallelism pays for itself, small enough that peak
/// memory is bounded by the chunk plus the parsed records — never the
/// whole log text plus the records, as `read_to_string` + parse was.
pub const STREAM_CHUNK_BYTES: usize = 8 * 1024 * 1024;

/// Error from the policy-aware streaming ingest path.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed (after exhausting retries).
    Io(io::Error),
    /// Corruption beyond policy: strict mode met its first quarantined
    /// line, or a lenient run exceeded its `--max-bad-frac` budget. The
    /// typed report travels with the error.
    Corrupt {
        /// What was quarantined, by reason, with sample lines.
        quarantine: Quarantine,
        /// Lines that parsed cleanly before the abort.
        lines_ok: u64,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "{e}"),
            IngestError::Corrupt {
                quarantine,
                lines_ok,
            } => write!(
                f,
                "quarantined {} of {} lines {}",
                quarantine.total(),
                lines_ok + quarantine.total(),
                quarantine.summary(),
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// Stream-parse a log file in fixed-size line-aligned chunks under an
/// ingest policy, with `parse.<stage>.*` metrics and a
/// `time.parse.<stage>` span.
///
/// Only one chunk of text is resident at a time, and each chunk is fed
/// to the shard parser so parsing stays parallel within chunks. Lines
/// that fail to parse are quarantined under the [`QuarantineReason`]
/// taxonomy; `opts` decides whether that aborts
/// ([`IngestError::Corrupt`]) or is tolerated. On success the per-reason
/// totals are folded into the `ingest.quarantined.*` counters.
pub fn parse_file_streaming<T>(
    path: &Path,
    format: LineFormat<T>,
    opts: &IngestOptions,
    stage: &str,
) -> Result<(ParsedLog<T>, Quarantine), IngestError>
where
    T: Send,
{
    let mut span = astra_obs::span(&format!("parse.{stage}"));
    let file = std::fs::File::open(path)?;
    let (parsed, quarantine, bytes, chunks) =
        parse_stream_chunked(file, format, opts, STREAM_CHUNK_BYTES)?;
    span.attach("lines_ok", parsed.records.len() as i64);
    span.attach("lines_quarantined", quarantine.total() as i64);
    span.attach("bytes", bytes as i64);
    parsed.publish(stage, bytes);
    astra_obs::global()
        .counter(&format!("parse.{stage}.chunks"))
        .add(chunks);
    publish_quarantine(&quarantine);
    Ok((parsed, quarantine))
}

/// Fold per-reason quarantine counts into the global
/// `ingest.quarantined.<reason>` counters.
pub fn publish_quarantine(q: &Quarantine) {
    let obs = astra_obs::global();
    for reason in QuarantineReason::ALL {
        let n = q.count(reason);
        if n > 0 {
            obs.counter(&format!("ingest.quarantined.{}", reason.name()))
                .add(n);
        }
    }
}

/// Chunked streaming parse over any reader: the engine behind
/// [`parse_file_streaming`], with the chunk size exposed so tests can
/// force record and corrupt-line boundaries to straddle chunks.
///
/// Returns the parsed log, the quarantine report, and the bytes/chunks
/// consumed. Strict mode aborts on the first chunk containing a
/// quarantined line; lenient mode checks the error budget once the
/// reader is exhausted (the quarantined fraction is
/// `quarantined / (parsed + quarantined)` non-blank lines).
pub fn parse_stream_chunked<R, T>(
    reader: R,
    format: LineFormat<T>,
    opts: &IngestOptions,
    chunk_bytes: usize,
) -> Result<(ParsedLog<T>, Quarantine, usize, u64), IngestError>
where
    R: Read,
    T: Send,
{
    let mut chunked = ChunkReader::new(reader, format, chunk_bytes).with_retry(opts.retry);
    let mut records: Vec<T> = Vec::new();
    let mut quarantine = Quarantine::default();
    while let Some(chunk) = chunked.next_chunk()? {
        records.extend(chunk.records);
        quarantine.merge(&chunk.quarantine);
        if opts.is_strict() && !quarantine.is_empty() {
            return Err(IngestError::Corrupt {
                quarantine,
                lines_ok: records.len() as u64,
            });
        }
    }
    let total = records.len() as u64 + quarantine.total();
    if total > 0 && quarantine.total() as f64 / total as f64 > opts.max_bad_frac() {
        return Err(IngestError::Corrupt {
            quarantine,
            lines_ok: records.len() as u64,
        });
    }
    let skipped = quarantine.total();
    let (bytes, chunks) = (chunked.bytes_consumed(), chunked.chunks_read());
    Ok((ParsedLog { records, skipped }, quarantine, bytes, chunks))
}

/// One parsed chunk from a [`ChunkReader`]: the records that survived,
/// plus everything quarantined within the chunk.
#[derive(Debug)]
pub struct IngestChunk<T> {
    /// Records that parsed and passed the ordering check, in file order.
    pub records: Vec<T>,
    /// Lines quarantined within this chunk (line numbers are file-global).
    pub quarantine: Quarantine,
}

/// Resumable line-aligned chunk parser over any reader.
///
/// Each [`ChunkReader::next_chunk`] call yields one parsed chunk of
/// roughly `chunk_bytes` input, cut at a line boundary, until the reader
/// is exhausted. Pulling chunks one at a time (instead of draining the
/// whole reader as [`parse_stream_chunked`] does) lets callers interleave
/// several log files — the incremental analysis engine merges CE, HET,
/// inventory, and sensor chunks this way — while keeping at most one
/// chunk of text per source resident.
///
/// Corruption handling:
/// * a chunk that is entirely valid UTF-8 takes the fast path — shard
///   parallel parse, exactly as before;
/// * a chunk containing invalid UTF-8 falls back to a sequential
///   per-line pass that quarantines only the offending lines
///   ([`QuarantineReason::BadUtf8`]) instead of failing the whole file.
///   Chunks are always cut at `\n` (never inside a multi-byte sequence),
///   so a straddling line stays whole in `pending` and is classified
///   exactly once;
/// * for time-sorted formats (`order_key`), records whose key drops
///   strictly below the running maximum — carried across chunks — are
///   quarantined [`QuarantineReason::OutOfOrder`];
/// * transient read errors are retried per the [`RetryPolicy`]
///   (`Interrupted` is always retried; other errors get bounded
///   exponential backoff and an `ingest.io_retries` count).
pub struct ChunkReader<R, T> {
    reader: R,
    format: LineFormat<T>,
    retry: RetryPolicy,
    // Unconsumed input: whole lines plus, at its tail, at most one
    // partial line carried across the chunk boundary.
    pending: Vec<u8>,
    read_buf: Vec<u8>,
    // Grows past the configured chunk size only if a single line exceeds it.
    target: usize,
    // Tail mode: the file may still be growing, so EOF is provisional —
    // a newline-less final line is held back (an append may be in
    // progress) and re-probed on the next call instead of parsed as-is.
    tail: bool,
    eof: bool,
    bytes: usize,
    chunks: u64,
    // Lines consumed so far (blank lines included) — the base for
    // file-global 1-based line numbers in quarantine samples.
    lines: u64,
    // Largest ordering key seen so far, carried across chunks.
    max_key: Option<i64>,
}

impl<R, T> ChunkReader<R, T>
where
    R: Read,
    T: Send,
{
    /// Wraps `reader`, ingesting lines per `format` in chunks of roughly
    /// `chunk_bytes`, with the default [`RetryPolicy`].
    pub fn new(reader: R, format: LineFormat<T>, chunk_bytes: usize) -> Self {
        ChunkReader {
            reader,
            format,
            retry: RetryPolicy::default(),
            pending: Vec::new(),
            read_buf: vec![0u8; 64 * 1024],
            target: chunk_bytes.max(1),
            tail: false,
            eof: false,
            bytes: 0,
            chunks: 0,
            lines: 0,
            max_key: None,
        }
    }

    /// Replace the transient-I/O retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable or disable tail (growing-file) mode.
    pub fn with_tail(mut self, tail: bool) -> Self {
        self.set_tail(tail);
        self
    }

    /// Switch tail mode at runtime. A daemon tails with `true` and flips
    /// to `false` at shutdown so one final [`ChunkReader::next_chunk`]
    /// flushes a legitimately newline-less last line.
    pub fn set_tail(&mut self, tail: bool) {
        self.tail = tail;
        if tail {
            self.eof = false;
        }
    }

    /// One `read` with the retry policy applied.
    fn read_some(&mut self) -> io::Result<usize> {
        let mut attempt = 0u32;
        loop {
            match self.reader.read(&mut self.read_buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    let backoff_ms = self.retry.backoff_base_ms << attempt;
                    attempt += 1;
                    astra_obs::global().counter("ingest.io_retries").add(1);
                    if backoff_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                    }
                }
            }
        }
    }

    /// Parses and returns the next line-aligned chunk, or `None` once the
    /// reader is exhausted.
    pub fn next_chunk(&mut self) -> io::Result<Option<IngestChunk<T>>> {
        loop {
            while !self.eof && self.pending.len() < self.target {
                let n = self.read_some()?;
                if n == 0 {
                    self.eof = true;
                } else {
                    self.pending.extend_from_slice(&self.read_buf[..n]);
                }
            }
            if self.pending.is_empty() {
                if self.tail {
                    // Dry for now: the next call probes the file again.
                    self.eof = false;
                }
                return Ok(None);
            }
            // Cut at the last newline so no chunk splits a line; at EOF
            // the final (possibly newline-less) partial line is parsed
            // as-is — unless the file may still be growing, in which case
            // the partial line is an append in progress: hold it back in
            // `pending` (the re-read from the last known-good offset) and
            // let later calls complete it. '\n' is never part of a
            // multi-byte UTF-8 sequence, so a sequence straddling the raw
            // read boundary always stays whole within one cut.
            let cut = if self.eof {
                if self.tail {
                    self.eof = false;
                    match self.pending.iter().rposition(|&b| b == b'\n') {
                        Some(pos) => pos + 1,
                        None => return Ok(None),
                    }
                } else {
                    self.pending.len()
                }
            } else {
                match self.pending.iter().rposition(|&b| b == b'\n') {
                    Some(pos) => pos + 1,
                    None => {
                        self.target = self.target.saturating_mul(2);
                        continue;
                    }
                }
            };
            let raw = &self.pending[..cut];
            let (records, quarantine, nlines) = match std::str::from_utf8(raw) {
                Ok(text) => ingest_text(text, &self.format, self.lines, &mut self.max_key),
                Err(_) => ingest_bytes(raw, &self.format, self.lines, &mut self.max_key),
            };
            self.lines += nlines;
            self.bytes += cut;
            self.chunks += 1;
            self.pending.drain(..cut);
            return Ok(Some(IngestChunk {
                records,
                quarantine,
            }));
        }
    }

    /// Total input bytes consumed into chunks so far.
    pub fn bytes_consumed(&self) -> usize {
        self.bytes
    }

    /// Number of chunks yielded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks
    }

    /// Total lines consumed so far (blank lines included).
    pub fn lines_seen(&self) -> u64 {
        self.lines
    }
}

/// Per-shard outcome of the parallel chunk ingest: records, their local
/// line indices (only tracked for ordered formats), and failed lines
/// with their classification.
struct ShardOut<T> {
    records: Vec<T>,
    record_lines: Vec<u64>,
    bad: Vec<(u64, QuarantineReason, String)>,
    lines: u64,
}

/// How many bad-line snippets each shard retains (counts are always
/// exact; snippets exist only to feed the bounded sample set).
const SHARD_SNIPPET_CAP: usize = 16;

fn ingest_shard<T>(shard: &str, format: &LineFormat<T>) -> ShardOut<T> {
    // Runs on the caller's thread sequentially and on `par_map` workers
    // in parallel; worker threads inherit the caller's span root, so
    // this nests under `parse.<stage>` identically either way.
    let mut span = astra_obs::span("parse.shard");
    let track_lines = format.order_key.is_some();
    let mut out = ShardOut {
        records: Vec::new(),
        record_lines: Vec::new(),
        bad: Vec::new(),
        lines: 0,
    };
    for (i, line) in shard.lines().enumerate() {
        out.lines = i as u64 + 1;
        if line.trim().is_empty() {
            continue;
        }
        match (format.parse)(line) {
            Some(rec) => {
                if track_lines {
                    out.record_lines.push(i as u64);
                }
                out.records.push(rec);
            }
            None => {
                let reason = (format.classify)(line);
                let snippet = if out.bad.len() < SHARD_SNIPPET_CAP {
                    line.chars().take(96).collect()
                } else {
                    String::new()
                };
                out.bad.push((i as u64, reason, snippet));
            }
        }
    }
    span.attach("lines_ok", out.records.len() as i64);
    span.attach("lines_quarantined", out.bad.len() as i64);
    out
}

/// Ingest one valid-UTF-8 chunk: shard-parallel parse + classify, then a
/// sequential gather applying line numbering and the cross-chunk
/// ordering check. `line_base` is the count of lines consumed before
/// this chunk; returns `(records, quarantine, lines_in_chunk)`.
fn ingest_text<T>(
    text: &str,
    format: &LineFormat<T>,
    line_base: u64,
    max_key: &mut Option<i64>,
) -> (Vec<T>, Quarantine, u64)
where
    T: Send,
{
    let workers = astra_util::par::worker_count(text.len() / 4096 + 1);
    let outs: Vec<ShardOut<T>> = if workers <= 1 || text.len() < 64 * 1024 {
        vec![ingest_shard(text, format)]
    } else {
        let shards = split_line_shards(text, workers);
        astra_util::par::par_map(&shards, |shard| ingest_shard(shard, format))
    };

    let mut records = Vec::with_capacity(outs.iter().map(|o| o.records.len()).sum());
    let mut quarantine = Quarantine::default();
    let mut base = line_base;
    for out in outs {
        let shard_lines = out.lines;
        match format.order_key {
            None => records.extend(out.records),
            Some(keyf) => {
                // Fast scan: if the whole shard is in order relative to
                // the running maximum (the overwhelmingly common case),
                // move the records wholesale.
                let mut mx = *max_key;
                let mut violation = false;
                for rec in &out.records {
                    let k = keyf(rec);
                    if mx.is_some_and(|m| k < m) {
                        violation = true;
                        break;
                    }
                    mx = Some(k);
                }
                if !violation {
                    *max_key = mx;
                    records.extend(out.records);
                } else {
                    for (i, rec) in out.records.into_iter().enumerate() {
                        let k = keyf(&rec);
                        if let Some(m) = *max_key {
                            if k < m {
                                let line_no = base + out.record_lines[i] + 1;
                                quarantine.note(
                                    line_no,
                                    QuarantineReason::OutOfOrder,
                                    format!("record key {k} precedes running maximum {m}")
                                        .as_bytes(),
                                );
                                continue;
                            }
                        }
                        *max_key = Some(k);
                        records.push(rec);
                    }
                }
            }
        }
        for (line, reason, snippet) in out.bad {
            quarantine.note(base + line + 1, reason, snippet.as_bytes());
        }
        base += shard_lines;
    }
    (records, quarantine, base - line_base)
}

/// Sequential fallback for a chunk containing invalid UTF-8: every line
/// is validated individually so only the offending lines are quarantined
/// as [`QuarantineReason::BadUtf8`] — the rest of the chunk parses
/// normally (ordering check included).
fn ingest_bytes<T>(
    raw: &[u8],
    format: &LineFormat<T>,
    line_base: u64,
    max_key: &mut Option<i64>,
) -> (Vec<T>, Quarantine, u64) {
    let mut records = Vec::new();
    let mut quarantine = Quarantine::default();
    let mut lines = 0u64;
    let mut start = 0usize;
    while start < raw.len() {
        let end = raw[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|p| start + p)
            .unwrap_or(raw.len());
        let mut line_bytes = &raw[start..end];
        if let [head @ .., b'\r'] = line_bytes {
            line_bytes = head;
        }
        let line_no = line_base + lines + 1;
        lines += 1;
        start = end + 1;
        match std::str::from_utf8(line_bytes) {
            Err(_) => quarantine.note(line_no, QuarantineReason::BadUtf8, line_bytes),
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match (format.parse)(line) {
                    Some(rec) => {
                        if let Some(keyf) = format.order_key {
                            let k = keyf(&rec);
                            if let Some(m) = *max_key {
                                if k < m {
                                    quarantine.note(
                                        line_no,
                                        QuarantineReason::OutOfOrder,
                                        format!("record key {k} precedes running maximum {m}")
                                            .as_bytes(),
                                    );
                                    continue;
                                }
                            }
                            *max_key = Some(k);
                        }
                        records.push(rec);
                    }
                    None => quarantine.note(line_no, (format.classify)(line), line.as_bytes()),
                }
            }
        }
    }
    (records, quarantine, lines)
}

/// Cut `text` into at most `workers` shards on line boundaries (the
/// shard splitter shared by the legacy whole-text parser and the chunk
/// ingester).
fn split_line_shards(text: &str, workers: usize) -> Vec<&str> {
    let mut shards: Vec<&str> = Vec::with_capacity(workers);
    let bytes = text.as_bytes();
    let mut start = 0usize;
    for w in 1..workers {
        let target = (text.len() * w) / workers;
        if target <= start {
            continue;
        }
        let end = match bytes[target..].iter().position(|&b| b == b'\n') {
            Some(off) => target + off + 1,
            None => text.len(),
        };
        if end > start {
            shards.push(&text[start..end]);
            start = end;
        }
    }
    if start < text.len() {
        shards.push(&text[start..]);
    }
    shards
}

/// Shard-level parse metrics: how many shards ran and how evenly the
/// lines spread across them.
fn record_shard_metrics(stage: &str, shard_lines: &[usize]) {
    let obs = astra_obs::global();
    obs.counter(&format!("parse.{stage}.shards"))
        .add(shard_lines.len() as u64);
    let hist = obs.histogram(
        &format!("parse.{stage}.shard_lines"),
        &astra_obs::size_bounds(),
    );
    for &lines in shard_lines {
        hist.record(lines as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeRecord;
    use crate::sensor::SensorRecord;
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SensorId, SocketId};
    use astra_util::CalDate;

    fn ce(minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('C').unwrap();
        CeRecord {
            time: CalDate::new(2019, 4, 1).midnight().plus(minute),
            node: NodeId(9),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 2,
            row: None,
            col: 11,
            bit_pos: 7,
            addr: PhysAddr(0x1234C0),
            syndrome: 0xBEEF,
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let records: Vec<CeRecord> = (0..10).map(ce).collect();
        let mut sink = Vec::new();
        let n = write_lines(&mut sink, records.iter().copied(), CeRecord::to_line).unwrap();
        assert_eq!(n, 10);
        let parsed = read_lines(sink.as_slice(), CeRecord::parse_line).unwrap();
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.skipped, 0);
    }

    #[test]
    fn mixed_log_skips_foreign_lines() {
        // A realistic syslog interleaves CE records with other producers.
        let mut sink = Vec::new();
        let ce_line = ce(5).to_line();
        let sensor = SensorRecord {
            time: CalDate::new(2019, 4, 1).midnight(),
            node: NodeId(9),
            sensor: SensorId::cpu(SocketId(0)),
            value: Some(61.0),
        };
        sink.extend_from_slice(format!("{ce_line}\n").as_bytes());
        sink.extend_from_slice(format!("{}\n", sensor.to_line()).as_bytes());
        sink.extend_from_slice(b"totally corrupted line !!!\n");
        sink.extend_from_slice(b"\n");
        sink.extend_from_slice(format!("{ce_line}\n").as_bytes());

        let ces = read_lines(sink.as_slice(), CeRecord::parse_line).unwrap();
        assert_eq!(ces.records.len(), 2);
        assert_eq!(ces.skipped, 2, "sensor + corrupt, blank ignored");

        let sensors = read_lines(sink.as_slice(), SensorRecord::parse_line).unwrap();
        assert_eq!(sensors.records.len(), 1);
        assert_eq!(sensors.skipped, 3);
    }

    #[test]
    fn empty_input() {
        let parsed = read_lines(&b""[..], CeRecord::parse_line).unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.skipped, 0);
    }

    #[test]
    fn tail_mode_holds_back_torn_final_line() {
        // Simulate an append in progress: the file ends mid-record. A
        // tailing reader must hold the partial line back (not quarantine
        // it) and complete it once the writer catches up.
        let dir =
            std::env::temp_dir().join(format!("astra-io-tail-{}-{}", std::process::id(), line!()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ce.log");
        let full = ce(1).to_line();
        let (head, rest) = full.split_at(full.len() / 2);
        std::fs::write(&path, format!("{}\n{head}", ce(0).to_line())).unwrap();

        let f = std::fs::File::open(&path).unwrap();
        let mut r = ChunkReader::new(f, crate::ce::FORMAT, 1 << 20).with_tail(true);
        let chunk = r.next_chunk().unwrap().expect("first complete line");
        assert_eq!(chunk.records, vec![ce(0)]);
        assert!(chunk.quarantine.is_empty(), "torn tail must not quarantine");
        assert!(
            r.next_chunk().unwrap().is_none(),
            "dry until the append finishes"
        );

        // The writer finishes the record (plus one more whole line).
        use std::io::Write as _;
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        writeln!(w, "{rest}").unwrap();
        writeln!(w, "{}", ce(2).to_line()).unwrap();
        drop(w);
        let chunk = r.next_chunk().unwrap().expect("completed lines parse");
        assert_eq!(chunk.records, vec![ce(1), ce(2)]);
        assert!(chunk.quarantine.is_empty());
        assert!(r.next_chunk().unwrap().is_none(), "dry again");

        // Shutdown flush: once tailing ends, a legitimately newline-less
        // final line is parsed as-is.
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(w, "{}", ce(3).to_line()).unwrap();
        drop(w);
        assert!(
            r.next_chunk().unwrap().is_none(),
            "newline-less tail stays held back while tailing"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_flush_parses_newline_less_final_line() {
        let dir = std::env::temp_dir().join(format!(
            "astra-io-tailflush-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ce.log");
        std::fs::write(&path, format!("{}\n{}", ce(0).to_line(), ce(1).to_line())).unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let mut r = ChunkReader::new(f, crate::ce::FORMAT, 1 << 20).with_tail(true);
        let chunk = r.next_chunk().unwrap().expect("complete first line");
        assert_eq!(chunk.records, vec![ce(0)]);
        assert!(r.next_chunk().unwrap().is_none(), "final line held back");
        r.set_tail(false);
        let chunk = r.next_chunk().unwrap().expect("flush at shutdown");
        assert_eq!(chunk.records, vec![ce(1)]);
        assert!(r.next_chunk().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_matches_sequential_small() {
        // Below the parallel threshold: exercises the sequential path.
        let mut text = String::new();
        for i in 0..50 {
            text.push_str(&ce(i).to_line());
            text.push('\n');
        }
        text.push_str("junk\n\n");
        let seq = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        let par = parse_lines_parallel(&text, CeRecord::parse_line);
        assert_eq!(seq.records, par.records);
        assert_eq!(seq.skipped, par.skipped);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        // Above the threshold: shard boundaries must preserve order and
        // never split a record.
        let mut text = String::new();
        for i in 0..5000 {
            text.push_str(&ce(i % 1440).to_line());
            text.push('\n');
            if i % 97 == 0 {
                text.push_str("corrupt line here\n");
            }
        }
        assert!(text.len() > 64 * 1024, "test must exceed the threshold");
        let seq = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        let par = parse_lines_parallel(&text, CeRecord::parse_line);
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(seq.records, par.records);
        assert_eq!(seq.skipped, par.skipped);
    }

    /// Lenient policy with an unlimited error budget, used where tests
    /// care about *what* was quarantined rather than the budget.
    fn tolerant() -> IngestOptions {
        IngestOptions::lenient(Some(1.0))
    }

    #[test]
    fn streaming_matches_whole_text_across_chunk_sizes() {
        // Corrupt lines and records must land on chunk boundaries for at
        // least some of these sizes; every size must agree with the
        // whole-text parse.
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&ce(i).to_line());
            text.push('\n');
            if i % 7 == 0 {
                text.push_str("corrupt line straddling chunks maybe\n");
            }
            if i % 31 == 0 {
                text.push('\n');
            }
        }
        text.push_str(&ce(1400).to_line()); // no trailing newline
        let whole = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        for chunk_bytes in [1, 7, 64, 1000, 1 << 20] {
            let (streamed, quarantine, bytes, chunks) =
                parse_stream_chunked(text.as_bytes(), crate::ce::FORMAT, &tolerant(), chunk_bytes)
                    .unwrap();
            assert_eq!(streamed.records, whole.records, "chunk={chunk_bytes}");
            assert_eq!(streamed.skipped, whole.skipped, "chunk={chunk_bytes}");
            assert_eq!(
                quarantine.count(QuarantineReason::UnknownFormat),
                whole.skipped,
                "chunk={chunk_bytes}"
            );
            assert_eq!(bytes, text.len());
            assert!(chunks >= 1);
        }
    }

    #[test]
    fn streaming_empty_input() {
        let (parsed, quarantine, bytes, chunks) =
            parse_stream_chunked(&b""[..], crate::ce::FORMAT, &IngestOptions::default(), 1024)
                .unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.skipped, 0);
        assert!(quarantine.is_empty());
        assert_eq!((bytes, chunks), (0, 0));
    }

    #[test]
    fn strict_mode_aborts_with_typed_report() {
        let mut bytes = ce(1).to_line().into_bytes();
        bytes.push(b'\n');
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        let err = parse_stream_chunked(
            bytes.as_slice(),
            crate::ce::FORMAT,
            &IngestOptions::default(),
            1 << 20,
        )
        .unwrap_err();
        match err {
            IngestError::Corrupt {
                quarantine,
                lines_ok,
            } => {
                assert_eq!(quarantine.count(QuarantineReason::BadUtf8), 1);
                assert_eq!(lines_ok, 1);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn lenient_quarantines_bad_utf8_per_line_at_any_chunk_size() {
        // A non-UTF-8 line between two valid records. Tiny chunk sizes
        // force the garbage to straddle the reader's internal cut points
        // — it must be quarantined exactly once, never panic, never take
        // neighbouring lines down with it.
        let mut bytes = ce(1).to_line().into_bytes();
        bytes.push(b'\n');
        bytes.extend_from_slice(&[0xC3, 0x28, 0xFF, b'g', b'a', b'r', b'b', b'\n']);
        bytes.extend_from_slice(ce(2).to_line().as_bytes());
        bytes.push(b'\n');
        for chunk_bytes in [1, 2, 3, 5, 16, 1 << 20] {
            let (parsed, quarantine, ..) = parse_stream_chunked(
                bytes.as_slice(),
                crate::ce::FORMAT,
                &tolerant(),
                chunk_bytes,
            )
            .unwrap();
            assert_eq!(parsed.records.len(), 2, "chunk={chunk_bytes}");
            assert_eq!(
                quarantine.count(QuarantineReason::BadUtf8),
                1,
                "chunk={chunk_bytes}"
            );
            assert_eq!(quarantine.total(), 1, "chunk={chunk_bytes}");
            assert_eq!(quarantine.samples[0].line_no, 2, "chunk={chunk_bytes}");
        }
    }

    #[test]
    fn multibyte_utf8_straddling_chunks_is_not_dropped() {
        // A foreign line full of multi-byte characters: chunk cuts land
        // inside the é/μ sequences for small sizes. The line must
        // survive intact and classify as UnknownFormat (it is valid
        // UTF-8, just not one of our records).
        let mut text = ce(1).to_line();
        text.push('\n');
        text.push_str("Mär  4 12:01:00 café sshd[µ]: sesión désactivée\n");
        text.push_str(&ce(2).to_line());
        text.push('\n');
        for chunk_bytes in [1, 2, 3, 4, 7, 1 << 20] {
            let (parsed, quarantine, bytes, _) =
                parse_stream_chunked(text.as_bytes(), crate::ce::FORMAT, &tolerant(), chunk_bytes)
                    .unwrap();
            assert_eq!(parsed.records.len(), 2, "chunk={chunk_bytes}");
            assert_eq!(
                quarantine.count(QuarantineReason::UnknownFormat),
                1,
                "chunk={chunk_bytes}"
            );
            assert_eq!(bytes, text.len(), "chunk={chunk_bytes}");
        }
    }

    #[test]
    fn out_of_order_records_quarantined_across_chunks() {
        // t=0,1,2, then a displaced t=1 record, then t=3. Equal keys are
        // fine; strictly-regressing keys are quarantined — at every
        // chunk size, including cuts that isolate the displaced record.
        let mut text = String::new();
        for t in [0, 1, 1, 2, 1, 3] {
            text.push_str(&ce(t).to_line());
            text.push('\n');
        }
        for chunk_bytes in [1, 40, 200, 1 << 20] {
            let (parsed, quarantine, ..) =
                parse_stream_chunked(text.as_bytes(), crate::ce::FORMAT, &tolerant(), chunk_bytes)
                    .unwrap();
            assert_eq!(parsed.records.len(), 5, "chunk={chunk_bytes}");
            assert_eq!(
                quarantine.count(QuarantineReason::OutOfOrder),
                1,
                "chunk={chunk_bytes}"
            );
            assert_eq!(quarantine.samples[0].line_no, 5, "chunk={chunk_bytes}");
        }
    }

    #[test]
    fn unordered_formats_skip_the_order_check() {
        // sensors.log is node-major: regressing timestamps are normal.
        let s = |minute: i64, node: u32| {
            SensorRecord {
                time: CalDate::new(2019, 4, 1).midnight().plus(minute),
                node: NodeId(node),
                sensor: SensorId::cpu(SocketId(0)),
                value: Some(60.0),
            }
            .to_line()
        };
        let text = format!("{}\n{}\n{}\n", s(5, 1), s(6, 1), s(0, 2));
        let (parsed, quarantine, ..) = parse_stream_chunked(
            text.as_bytes(),
            crate::sensor::FORMAT,
            &IngestOptions::default(),
            1 << 20,
        )
        .unwrap();
        assert_eq!(parsed.records.len(), 3);
        assert!(quarantine.is_empty());
    }

    #[test]
    fn lenient_budget_exceeded_is_typed_error() {
        let mut text = ce(1).to_line();
        text.push('\n');
        text.push_str("junk\n");
        // 50 % bad against a 5 % budget.
        let err = parse_stream_chunked(
            text.as_bytes(),
            crate::ce::FORMAT,
            &IngestOptions::lenient(Some(0.05)),
            1 << 20,
        )
        .unwrap_err();
        assert!(matches!(err, IngestError::Corrupt { .. }), "{err:?}");
        // The same input inside budget parses fine.
        let (parsed, quarantine, ..) = parse_stream_chunked(
            text.as_bytes(),
            crate::ce::FORMAT,
            &IngestOptions::lenient(Some(0.5)),
            1 << 20,
        )
        .unwrap();
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(quarantine.total(), 1);
    }

    /// Reader that fails the first `failures` reads with `kind`, then
    /// delegates to the inner slice.
    struct FlakyReader<'a> {
        inner: &'a [u8],
        failures: u32,
        kind: io::ErrorKind,
    }

    impl Read for FlakyReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err(io::Error::new(self.kind, "transient"));
            }
            self.inner.read(buf)
        }
    }

    #[test]
    fn transient_read_errors_are_retried() {
        let text = format!("{}\n", ce(1).to_line());
        let flaky = FlakyReader {
            inner: text.as_bytes(),
            failures: 3,
            kind: io::ErrorKind::Other,
        };
        let opts = IngestOptions {
            retry: RetryPolicy {
                max_retries: 4,
                backoff_base_ms: 0,
            },
            ..IngestOptions::default()
        };
        let (parsed, ..) = parse_stream_chunked(flaky, crate::ce::FORMAT, &opts, 1 << 20).unwrap();
        assert_eq!(parsed.records.len(), 1);
    }

    #[test]
    fn retries_exhausted_surface_the_error() {
        let text = format!("{}\n", ce(1).to_line());
        let flaky = FlakyReader {
            inner: text.as_bytes(),
            failures: 10,
            kind: io::ErrorKind::Other,
        };
        let opts = IngestOptions {
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base_ms: 0,
            },
            ..IngestOptions::default()
        };
        let err = parse_stream_chunked(flaky, crate::ce::FORMAT, &opts, 1 << 20).unwrap_err();
        assert!(matches!(err, IngestError::Io(_)), "{err:?}");
    }

    #[test]
    fn interrupted_reads_never_count_against_retries() {
        let text = format!("{}\n", ce(1).to_line());
        let flaky = FlakyReader {
            inner: text.as_bytes(),
            failures: 50,
            kind: io::ErrorKind::Interrupted,
        };
        let opts = IngestOptions {
            retry: RetryPolicy {
                max_retries: 0,
                backoff_base_ms: 0,
            },
            ..IngestOptions::default()
        };
        let (parsed, ..) = parse_stream_chunked(flaky, crate::ce::FORMAT, &opts, 1 << 20).unwrap();
        assert_eq!(parsed.records.len(), 1);
    }

    #[test]
    fn write_lines_with_reuses_buffer() {
        let records: Vec<CeRecord> = (0..10).map(ce).collect();
        let mut sink = Vec::new();
        let n =
            write_lines_with(&mut sink, records.iter(), |rec, buf| rec.to_line_into(buf)).unwrap();
        assert_eq!(n, 10);
        let mut plain = Vec::new();
        write_lines(&mut plain, records.iter(), |r| r.to_line()).unwrap();
        assert_eq!(sink, plain);
    }

    #[test]
    fn parallel_no_trailing_newline() {
        let mut text = String::new();
        for i in 0..3000 {
            text.push_str(&ce(i % 1440).to_line());
            text.push('\n');
        }
        text.push_str(&ce(7).to_line()); // no trailing newline
        let seq = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        let par = parse_lines_parallel(&text, CeRecord::parse_line);
        assert_eq!(seq.records, par.records);
    }
}

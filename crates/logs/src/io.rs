//! Line-oriented log writers and fault-tolerant readers.
//!
//! Real syslogs contain lines from many producers plus occasional
//! corruption; the readers here skip anything that does not parse and count
//! the skips, mirroring how a site's extraction scripts behave. Writers are
//! plain `io::Write` adapters so logs stream to files, pipes, or an
//! in-memory `Vec<u8>` in tests without buffering whole datasets.

use std::io::{self, BufRead, Read, Write};
use std::path::Path;

/// Write an iterator of serializable records as lines.
pub fn write_lines<W, I, T, F>(sink: W, records: I, to_line: F) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = T>,
    F: Fn(&T) -> String,
{
    write_lines_with(sink, records, |rec, buf| buf.push_str(&to_line(rec)))
}

/// Write an iterator of records as lines through one reused buffer.
///
/// `fill` appends a record's line (without the newline) to the supplied
/// `String`; the buffer is cleared and reused across records, so bulk
/// serialization performs no per-record allocation. Pair with the record
/// types' `to_line_into` methods.
pub fn write_lines_with<W, I, T, F>(mut sink: W, records: I, fill: F) -> io::Result<u64>
where
    W: Write,
    I: IntoIterator<Item = T>,
    F: Fn(&T, &mut String),
{
    let mut buf = String::with_capacity(160);
    let mut n = 0;
    for rec in records {
        buf.clear();
        fill(&rec, &mut buf);
        buf.push('\n');
        sink.write_all(buf.as_bytes())?;
        n += 1;
    }
    Ok(n)
}

/// Result of reading a log: parsed records plus lines skipped as foreign
/// or corrupt.
#[derive(Debug, Clone)]
pub struct ParsedLog<T> {
    /// Successfully parsed records, in file order.
    pub records: Vec<T>,
    /// Count of lines that did not parse as `T`.
    pub skipped: u64,
}

/// Read all lines from `source`, parsing each with `parse`. Unparseable
/// lines (foreign producers, corruption) are skipped and counted; blank
/// lines are ignored entirely.
pub fn read_lines<R, T, F>(source: R, parse: F) -> io::Result<ParsedLog<T>>
where
    R: BufRead,
    F: Fn(&str) -> Option<T>,
{
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in source.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse(&line) {
            Some(rec) => records.push(rec),
            None => skipped += 1,
        }
    }
    Ok(ParsedLog { records, skipped })
}

impl<T> ParsedLog<T> {
    /// Publish this log's parse outcome under `parse.<stage>.*` in the
    /// global metrics registry: lines parsed, lines skipped, and bytes
    /// consumed. The skip counter is the §2.3 lesson applied to our own
    /// apparatus — corrupt/foreign lines are dropped silently by the
    /// parser, so the registry is where that loss becomes visible.
    fn publish(&self, stage: &str, bytes: usize) {
        let obs = astra_obs::global();
        obs.counter(&format!("parse.{stage}.lines_ok"))
            .add(self.records.len() as u64);
        obs.counter(&format!("parse.{stage}.lines_skipped"))
            .add(self.skipped);
        obs.counter(&format!("parse.{stage}.bytes"))
            .add(bytes as u64);
    }
}

/// [`read_lines`] plus metrics: records the outcome under
/// `parse.<stage>.*` and times the pass under `time.parse.<stage>`.
pub fn read_lines_metered<R, T, F>(source: R, parse: F, stage: &str) -> io::Result<ParsedLog<T>>
where
    R: BufRead,
    F: Fn(&str) -> Option<T>,
{
    let _span = astra_obs::span(&format!("parse.{stage}"));
    let parsed = read_lines(source, parse)?;
    parsed.publish(stage, 0);
    Ok(parsed)
}

/// [`parse_lines_parallel`] plus metrics: per-stage line/skip/byte
/// counters, the shard count, the per-shard line distribution, and a
/// `time.parse.<stage>` span.
pub fn parse_lines_parallel_metered<T, F>(text: &str, parse: F, stage: &str) -> ParsedLog<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let _span = astra_obs::span(&format!("parse.{stage}"));
    let parsed = parse_lines_parallel_inner(text, parse, Some(stage));
    parsed.publish(stage, text.len());
    parsed
}

/// Parse a whole in-memory log in parallel.
///
/// The text is split at line boundaries into one shard per worker;
/// shards parse independently and results are concatenated in order, so
/// the output is identical to [`read_lines`] on the same input. On a
/// full-scale CE log (hundreds of MB) this is the difference between a
/// coffee break and a blink.
pub fn parse_lines_parallel<T, F>(text: &str, parse: F) -> ParsedLog<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    parse_lines_parallel_inner(text, parse, None)
}

fn parse_lines_parallel_inner<T, F>(text: &str, parse: F, stage: Option<&str>) -> ParsedLog<T>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let workers = astra_util::par::worker_count(text.len() / 4096 + 1);
    if workers <= 1 || text.len() < 64 * 1024 {
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse(line) {
                Some(rec) => records.push(rec),
                None => skipped += 1,
            }
        }
        if let Some(stage) = stage {
            record_shard_metrics(stage, &[records.len()]);
        }
        return ParsedLog { records, skipped };
    }

    // Cut the text into `workers` shards on line boundaries.
    let mut shards: Vec<&str> = Vec::with_capacity(workers);
    let bytes = text.as_bytes();
    let mut start = 0usize;
    for w in 1..workers {
        let target = (text.len() * w) / workers;
        if target <= start {
            continue;
        }
        // Advance to the next newline at or after `target`.
        let end = match bytes[target..].iter().position(|&b| b == b'\n') {
            Some(off) => target + off + 1,
            None => text.len(),
        };
        if end > start {
            shards.push(&text[start..end]);
            start = end;
        }
    }
    if start < text.len() {
        shards.push(&text[start..]);
    }

    let parsed: Vec<ParsedLog<T>> = astra_util::par::par_map(&shards, |shard| {
        let mut records = Vec::new();
        let mut skipped = 0;
        for line in shard.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse(line) {
                Some(rec) => records.push(rec),
                None => skipped += 1,
            }
        }
        ParsedLog { records, skipped }
    });

    if let Some(stage) = stage {
        let shard_lines: Vec<usize> = parsed.iter().map(|p| p.records.len()).collect();
        record_shard_metrics(stage, &shard_lines);
    }

    let mut records = Vec::with_capacity(parsed.iter().map(|p| p.records.len()).sum());
    let mut skipped = 0;
    for shard in parsed {
        records.extend(shard.records);
        skipped += shard.skipped;
    }
    ParsedLog { records, skipped }
}

/// Default chunk size for the streaming parsers: large enough that the
/// per-chunk shard parallelism pays for itself, small enough that peak
/// memory is bounded by the chunk plus the parsed records — never the
/// whole log text plus the records, as `read_to_string` + parse was.
pub const STREAM_CHUNK_BYTES: usize = 8 * 1024 * 1024;

/// Stream-parse a log file in fixed-size line-aligned chunks, with
/// `parse.<stage>.*` metrics and a `time.parse.<stage>` span.
///
/// Equivalent to `read_to_string` + [`parse_lines_parallel_metered`] on
/// the same file — same records, same skip count, same UTF-8 failure mode
/// — but only one chunk of text is resident at a time. Each chunk is fed
/// to the same shard parser, so parsing stays parallel within chunks.
pub fn parse_file_streaming<T, F>(path: &Path, parse: F, stage: &str) -> io::Result<ParsedLog<T>>
where
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let _span = astra_obs::span(&format!("parse.{stage}"));
    let file = std::fs::File::open(path)?;
    let (parsed, bytes, chunks) = parse_stream_chunked(file, &parse, STREAM_CHUNK_BYTES)?;
    parsed.publish(stage, bytes);
    astra_obs::global()
        .counter(&format!("parse.{stage}.chunks"))
        .add(chunks);
    Ok(parsed)
}

/// Chunked streaming parse over any reader: the engine behind
/// [`parse_file_streaming`], with the chunk size exposed so tests can
/// force record and corrupt-line boundaries to straddle chunks.
///
/// Returns the parsed log plus the bytes consumed and chunks processed.
pub fn parse_stream_chunked<R, T, F>(
    reader: R,
    parse: F,
    chunk_bytes: usize,
) -> io::Result<(ParsedLog<T>, usize, u64)>
where
    R: Read,
    T: Send,
    F: Fn(&str) -> Option<T> + Sync,
{
    let mut chunked = ChunkReader::new(reader, parse, chunk_bytes);
    let mut records: Vec<T> = Vec::new();
    let mut skipped = 0u64;
    while let Some(chunk) = chunked.next_chunk()? {
        records.extend(chunk.records);
        skipped += chunk.skipped;
    }
    let (bytes, chunks) = (chunked.bytes_consumed(), chunked.chunks_read());
    Ok((ParsedLog { records, skipped }, bytes, chunks))
}

/// Resumable line-aligned chunk parser over any reader.
///
/// Each [`ChunkReader::next_chunk`] call yields one parsed chunk of
/// roughly `chunk_bytes` input, cut at a line boundary, until the reader
/// is exhausted. Pulling chunks one at a time (instead of draining the
/// whole reader as [`parse_stream_chunked`] does) lets callers interleave
/// several log files — the incremental analysis engine merges CE, HET,
/// inventory, and sensor chunks this way — while keeping at most one
/// chunk of text per source resident.
pub struct ChunkReader<R, F> {
    reader: R,
    parse: F,
    // Unconsumed input: whole lines plus, at its tail, at most one
    // partial line carried across the chunk boundary.
    pending: Vec<u8>,
    read_buf: Vec<u8>,
    // Grows past the configured chunk size only if a single line exceeds it.
    target: usize,
    eof: bool,
    bytes: usize,
    chunks: u64,
}

impl<R, F> ChunkReader<R, F>
where
    R: Read,
{
    /// Wraps `reader`, parsing each line with `parse` in chunks of
    /// roughly `chunk_bytes`.
    pub fn new(reader: R, parse: F, chunk_bytes: usize) -> Self {
        ChunkReader {
            reader,
            parse,
            pending: Vec::new(),
            read_buf: vec![0u8; 64 * 1024],
            target: chunk_bytes.max(1),
            eof: false,
            bytes: 0,
            chunks: 0,
        }
    }

    /// Parses and returns the next line-aligned chunk, or `None` once the
    /// reader is exhausted.
    pub fn next_chunk<T>(&mut self) -> io::Result<Option<ParsedLog<T>>>
    where
        T: Send,
        F: Fn(&str) -> Option<T> + Sync,
    {
        loop {
            while !self.eof && self.pending.len() < self.target {
                let n = self.reader.read(&mut self.read_buf)?;
                if n == 0 {
                    self.eof = true;
                } else {
                    self.pending.extend_from_slice(&self.read_buf[..n]);
                }
            }
            if self.pending.is_empty() {
                return Ok(None);
            }
            // Cut at the last newline so no chunk splits a line; at EOF
            // the final (possibly newline-less) partial line is parsed
            // as-is.
            let cut = if self.eof {
                self.pending.len()
            } else {
                match self.pending.iter().rposition(|&b| b == b'\n') {
                    Some(pos) => pos + 1,
                    None => {
                        self.target = self.target.saturating_mul(2);
                        continue;
                    }
                }
            };
            // Chunks end on '\n', which is never part of a multi-byte
            // UTF-8 sequence, so validation failures here mean the file
            // itself is invalid — the same error `read_to_string` would
            // have raised.
            let chunk_parsed = {
                let text = std::str::from_utf8(&self.pending[..cut]).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("invalid UTF-8 in log: {e}"),
                    )
                })?;
                parse_lines_parallel_inner(text, &self.parse, None)
            };
            self.bytes += cut;
            self.chunks += 1;
            self.pending.drain(..cut);
            return Ok(Some(chunk_parsed));
        }
    }

    /// Total input bytes consumed into chunks so far.
    pub fn bytes_consumed(&self) -> usize {
        self.bytes
    }

    /// Number of chunks yielded so far.
    pub fn chunks_read(&self) -> u64 {
        self.chunks
    }
}

/// Shard-level parse metrics: how many shards ran and how evenly the
/// lines spread across them.
fn record_shard_metrics(stage: &str, shard_lines: &[usize]) {
    let obs = astra_obs::global();
    obs.counter(&format!("parse.{stage}.shards"))
        .add(shard_lines.len() as u64);
    let hist = obs.histogram(
        &format!("parse.{stage}.shard_lines"),
        &astra_obs::size_bounds(),
    );
    for &lines in shard_lines {
        hist.record(lines as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::CeRecord;
    use crate::sensor::SensorRecord;
    use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SensorId, SocketId};
    use astra_util::CalDate;

    fn ce(minute: i64) -> CeRecord {
        let slot = DimmSlot::from_letter('C').unwrap();
        CeRecord {
            time: CalDate::new(2019, 4, 1).midnight().plus(minute),
            node: NodeId(9),
            socket: slot.socket(),
            slot,
            rank: RankId(0),
            bank: 2,
            row: None,
            col: 11,
            bit_pos: 7,
            addr: PhysAddr(0x1234C0),
            syndrome: 0xBEEF,
        }
    }

    #[test]
    fn write_then_read_roundtrip() {
        let records: Vec<CeRecord> = (0..10).map(ce).collect();
        let mut sink = Vec::new();
        let n = write_lines(&mut sink, records.iter().copied(), CeRecord::to_line).unwrap();
        assert_eq!(n, 10);
        let parsed = read_lines(sink.as_slice(), CeRecord::parse_line).unwrap();
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.skipped, 0);
    }

    #[test]
    fn mixed_log_skips_foreign_lines() {
        // A realistic syslog interleaves CE records with other producers.
        let mut sink = Vec::new();
        let ce_line = ce(5).to_line();
        let sensor = SensorRecord {
            time: CalDate::new(2019, 4, 1).midnight(),
            node: NodeId(9),
            sensor: SensorId::cpu(SocketId(0)),
            value: Some(61.0),
        };
        sink.extend_from_slice(format!("{ce_line}\n").as_bytes());
        sink.extend_from_slice(format!("{}\n", sensor.to_line()).as_bytes());
        sink.extend_from_slice(b"totally corrupted line !!!\n");
        sink.extend_from_slice(b"\n");
        sink.extend_from_slice(format!("{ce_line}\n").as_bytes());

        let ces = read_lines(sink.as_slice(), CeRecord::parse_line).unwrap();
        assert_eq!(ces.records.len(), 2);
        assert_eq!(ces.skipped, 2, "sensor + corrupt, blank ignored");

        let sensors = read_lines(sink.as_slice(), SensorRecord::parse_line).unwrap();
        assert_eq!(sensors.records.len(), 1);
        assert_eq!(sensors.skipped, 3);
    }

    #[test]
    fn empty_input() {
        let parsed = read_lines(&b""[..], CeRecord::parse_line).unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.skipped, 0);
    }

    #[test]
    fn parallel_matches_sequential_small() {
        // Below the parallel threshold: exercises the sequential path.
        let mut text = String::new();
        for i in 0..50 {
            text.push_str(&ce(i).to_line());
            text.push('\n');
        }
        text.push_str("junk\n\n");
        let seq = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        let par = parse_lines_parallel(&text, CeRecord::parse_line);
        assert_eq!(seq.records, par.records);
        assert_eq!(seq.skipped, par.skipped);
    }

    #[test]
    fn parallel_matches_sequential_large() {
        // Above the threshold: shard boundaries must preserve order and
        // never split a record.
        let mut text = String::new();
        for i in 0..5000 {
            text.push_str(&ce(i % 1440).to_line());
            text.push('\n');
            if i % 97 == 0 {
                text.push_str("corrupt line here\n");
            }
        }
        assert!(text.len() > 64 * 1024, "test must exceed the threshold");
        let seq = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        let par = parse_lines_parallel(&text, CeRecord::parse_line);
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(seq.records, par.records);
        assert_eq!(seq.skipped, par.skipped);
    }

    #[test]
    fn streaming_matches_whole_text_across_chunk_sizes() {
        // Corrupt lines and records must land on chunk boundaries for at
        // least some of these sizes; every size must agree with the
        // whole-text parse.
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&ce(i % 1440).to_line());
            text.push('\n');
            if i % 7 == 0 {
                text.push_str("corrupt line straddling chunks maybe\n");
            }
            if i % 31 == 0 {
                text.push('\n');
            }
        }
        text.push_str(&ce(3).to_line()); // no trailing newline
        let whole = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        for chunk_bytes in [1, 7, 64, 1000, 1 << 20] {
            let (streamed, bytes, chunks) =
                parse_stream_chunked(text.as_bytes(), CeRecord::parse_line, chunk_bytes).unwrap();
            assert_eq!(streamed.records, whole.records, "chunk={chunk_bytes}");
            assert_eq!(streamed.skipped, whole.skipped, "chunk={chunk_bytes}");
            assert_eq!(bytes, text.len());
            assert!(chunks >= 1);
        }
    }

    #[test]
    fn streaming_empty_input() {
        let (parsed, bytes, chunks) =
            parse_stream_chunked(&b""[..], CeRecord::parse_line, 1024).unwrap();
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.skipped, 0);
        assert_eq!((bytes, chunks), (0, 0));
    }

    #[test]
    fn streaming_rejects_invalid_utf8_like_read_to_string() {
        let mut bytes = ce(1).to_line().into_bytes();
        bytes.push(b'\n');
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        let err = parse_stream_chunked(bytes.as_slice(), CeRecord::parse_line, 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn write_lines_with_reuses_buffer() {
        let records: Vec<CeRecord> = (0..10).map(ce).collect();
        let mut sink = Vec::new();
        let n =
            write_lines_with(&mut sink, records.iter(), |rec, buf| rec.to_line_into(buf)).unwrap();
        assert_eq!(n, 10);
        let mut plain = Vec::new();
        write_lines(&mut plain, records.iter(), |r| r.to_line()).unwrap();
        assert_eq!(sink, plain);
    }

    #[test]
    fn parallel_no_trailing_newline() {
        let mut text = String::new();
        for i in 0..3000 {
            text.push_str(&ce(i % 1440).to_line());
            text.push('\n');
        }
        text.push_str(&ce(7).to_line()); // no trailing newline
        let seq = read_lines(text.as_bytes(), CeRecord::parse_line).unwrap();
        let par = parse_lines_parallel(&text, CeRecord::parse_line);
        assert_eq!(seq.records, par.records);
    }
}

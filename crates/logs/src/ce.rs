//! Correctable-error (CE) syslog records.
//!
//! The paper's published failure data carries: timestamp, node ID, socket,
//! type of failure, DIMM slot, row, rank, bank, bit position, physical
//! address and vendor-specific syndrome (§2.4). Two quirks from the paper
//! are modeled faithfully:
//!
//! * **Row is not populated** — "the system does not provide proper row
//!   information in the correctable error record passed to the syslog"
//!   (§3.2). The field exists in the format but is `-` on Astra, so the
//!   analyzer cannot classify single-row faults, exactly as in the paper.
//! * **Bit position carries extra encoding** — footnote 1 notes the bit
//!   position field "seemed to encode additional data besides the actual
//!   failed bit position", consistently. We reproduce that: the logged
//!   value is `bit | (syndrome-class << 9)`, a consistent reversible
//!   encoding the analyzer does *not* reverse (it treats bit positions as
//!   opaque labels, as the paper did).

use astra_topology::{DimmSlot, NodeId, PhysAddr, RankId, SocketId};
use astra_util::Minute;

use crate::kv;
use crate::quarantine::{LineFormat, QuarantineReason};

/// One correctable-error record as it appears in the syslog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CeRecord {
    /// When the OS polled the error out of the hardware log.
    pub time: Minute,
    /// Node that reported the error.
    pub node: NodeId,
    /// Socket whose memory controller logged it.
    pub socket: SocketId,
    /// DIMM slot.
    pub slot: DimmSlot,
    /// Rank within the DIMM.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: u16,
    /// Row — `None` on Astra (present in the format, never populated).
    pub row: Option<u32>,
    /// Cache-line column within the row.
    pub col: u16,
    /// Bit position within the cache line, with vendor encoding in the
    /// high bits (opaque; see module docs).
    pub bit_pos: u16,
    /// Node-local physical address of the failing cache line.
    pub addr: PhysAddr,
    /// Vendor-specific syndrome word.
    pub syndrome: u32,
}

impl CeRecord {
    /// Serialize to the one-line syslog format.
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(112);
        self.to_line_into(&mut line);
        line
    }

    /// Append the one-line syslog form to `out`, so bulk serialization can
    /// reuse one buffer instead of allocating a `String` per record.
    pub fn to_line_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        write!(
            out,
            "{} {} kernel: EDAC MC{}: CE slot={} rank={} bank={} row=",
            self.time.rfc3339(),
            self.node,
            self.socket.0,
            self.slot,
            self.rank.0,
            self.bank,
        )
        .expect("write to String cannot fail");
        match self.row {
            Some(r) => write!(out, "{r}"),
            None => write!(out, "-"),
        }
        .expect("write to String cannot fail");
        write!(
            out,
            " col={} bit={} addr={} synd={:#06x}",
            self.col,
            self.bit_pos,
            self.addr.hex(),
            self.syndrome,
        )
        .expect("write to String cannot fail");
    }

    /// Parse a line produced by [`CeRecord::to_line`].
    ///
    /// Returns `None` for lines that are not CE records or are corrupted.
    pub fn parse_line(line: &str) -> Option<Self> {
        let (ts, node, source, tail) = kv::split_line(line)?;
        if source != "kernel" {
            return None;
        }
        // Tail looks like: "EDAC MC0: CE slot=… rank=…".
        let rest = tail.strip_prefix("EDAC MC")?;
        let (mc, rest) = rest.split_once(": CE ")?;
        let socket: u8 = mc.parse().ok()?;
        if socket > 1 {
            return None;
        }
        let time = Minute::parse_rfc3339(ts)?;
        let node = NodeId(kv::parse_node(node)?);
        let slot = DimmSlot::from_letter(kv::field(rest, "slot")?.chars().next()?)?;
        let rank: u8 = kv::field(rest, "rank")?.parse().ok()?;
        if rank > 1 {
            return None;
        }
        let bank: u16 = kv::field(rest, "bank")?.parse().ok()?;
        let row = match kv::field(rest, "row")? {
            "-" => None,
            r => Some(r.parse().ok()?),
        };
        let col: u16 = kv::field(rest, "col")?.parse().ok()?;
        let bit_pos: u16 = kv::field(rest, "bit")?.parse().ok()?;
        let addr = PhysAddr::parse_hex(kv::field(rest, "addr")?)?;
        let synd = kv::field(rest, "synd")?;
        let syndrome = u32::from_str_radix(synd.strip_prefix("0x")?, 16).ok()?;
        // Cross-check: the slot's socket must match the reporting MC.
        if slot.socket() != SocketId(socket) {
            return None;
        }
        Some(CeRecord {
            time,
            node,
            socket: SocketId(socket),
            slot,
            rank: RankId(rank),
            bank,
            row,
            col,
            bit_pos,
            addr,
            syndrome,
        })
    }

    /// Classify a line [`CeRecord::parse_line`] rejected.
    ///
    /// Heuristic, like any post-hoc triage of corrupt text: a line
    /// carrying the `EDAC MC` marker is one of ours — if every required
    /// token is still present the values must be bad
    /// ([`QuarantineReason::FieldOutOfRange`]), otherwise the line lost
    /// its tail ([`QuarantineReason::Truncated`]). Lines without the
    /// marker are foreign ([`QuarantineReason::UnknownFormat`]).
    pub fn classify_bad_line(line: &str) -> QuarantineReason {
        if !line.contains("EDAC MC") {
            return QuarantineReason::UnknownFormat;
        }
        const REQUIRED: [&str; 9] = [
            ": CE ", "slot=", "rank=", "bank=", "row=", "col=", "bit=", "addr=", "synd=",
        ];
        if REQUIRED.iter().all(|m| line.contains(m)) {
            QuarantineReason::FieldOutOfRange
        } else {
            QuarantineReason::Truncated
        }
    }

    /// The raw failed-bit position with the vendor encoding stripped
    /// (bits 0–8: bit within the 512-bit cache line).
    ///
    /// The analyzer does not use this — per the paper the encoding was not
    /// deciphered — but the simulator tests use it to validate that the
    /// encoding is consistent and reversible.
    pub fn decoded_bit(&self) -> u16 {
        self.bit_pos & 0x1FF
    }
}

fn order_key(r: &CeRecord) -> i64 {
    r.time.0
}

/// Ingest descriptor for `ce.log`: time-sorted, one record per line.
pub const FORMAT: LineFormat<CeRecord> = LineFormat {
    parse: CeRecord::parse_line,
    classify: CeRecord::classify_bad_line,
    order_key: Some(order_key),
};

#[cfg(test)]
mod tests {
    use super::*;
    use astra_util::CalDate;
    use proptest::prelude::*;

    fn sample() -> CeRecord {
        CeRecord {
            time: CalDate::new(2019, 3, 4).midnight().plus(721),
            node: NodeId(123),
            socket: SocketId(0),
            slot: DimmSlot::from_letter('E').unwrap(),
            rank: RankId(1),
            bank: 3,
            row: None,
            col: 17,
            bit_pos: 133,
            addr: PhysAddr(0xABC0),
            syndrome: 0x1A2B,
        }
    }

    #[test]
    fn line_roundtrip() {
        let rec = sample();
        let line = rec.to_line();
        assert_eq!(CeRecord::parse_line(&line), Some(rec));
    }

    #[test]
    fn line_shape_is_stable() {
        assert_eq!(
            sample().to_line(),
            "2019-03-04T12:01:00 node0123 kernel: EDAC MC0: CE slot=E rank=1 \
             bank=3 row=- col=17 bit=133 addr=0x000000abc0 synd=0x1a2b"
        );
    }

    #[test]
    fn row_roundtrip_when_present() {
        let rec = CeRecord {
            row: Some(4321),
            ..sample()
        };
        assert_eq!(CeRecord::parse_line(&rec.to_line()), Some(rec));
    }

    #[test]
    fn rejects_non_ce_lines() {
        assert_eq!(CeRecord::parse_line(""), None);
        assert_eq!(
            CeRecord::parse_line("2019-03-04T12:01:00 node0001 BMC: sensor=cpu0 value=55"),
            None
        );
        assert_eq!(
            CeRecord::parse_line("2019-03-04T12:01:00 node0001 kernel: something else"),
            None
        );
    }

    #[test]
    fn rejects_socket_slot_mismatch() {
        // Slot E is socket 0; claim it came from MC1.
        let line = sample().to_line().replace("MC0", "MC1");
        assert_eq!(CeRecord::parse_line(&line), None);
    }

    #[test]
    fn rejects_corrupt_fields() {
        let good = sample().to_line();
        for (from, to) in [
            ("rank=1", "rank=7"),
            ("addr=0x000000abc0", "addr=bogus"),
            ("bit=133", "bit=xyz"),
            ("slot=E", "slot=Z"),
        ] {
            let bad = good.replace(from, to);
            assert_eq!(CeRecord::parse_line(&bad), None, "line: {bad}");
        }
    }

    #[test]
    fn classifier_taxonomy() {
        let good = sample().to_line();
        // Lost tail: required tokens missing.
        assert_eq!(
            CeRecord::classify_bad_line(&good[..good.len() - 20]),
            QuarantineReason::Truncated
        );
        // All tokens present, a value is garbage.
        assert_eq!(
            CeRecord::classify_bad_line(&good.replace("rank=1", "rank=7")),
            QuarantineReason::FieldOutOfRange
        );
        // Not one of ours at all.
        assert_eq!(
            CeRecord::classify_bad_line("Mar  4 12:01:00 host sshd[22]: session opened"),
            QuarantineReason::UnknownFormat
        );
    }

    #[test]
    fn decoded_bit_strips_encoding() {
        let rec = CeRecord {
            bit_pos: 0b1100_1000_0101,
            ..sample()
        };
        assert_eq!(rec.decoded_bit(), 0b0_1000_0101);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            minutes in 0i64..(366 * 24 * 60),
            node in 0u32..2592,
            slot_idx in 0u8..16,
            rank in 0u8..2,
            bank in 0u16..16,
            col in 0u16..128,
            bit in 0u16..4096,
            addr in 0u64..(1u64 << 37),
            synd in 0u32..0x10000,
        ) {
            let slot = DimmSlot::from_index(slot_idx).unwrap();
            let rec = CeRecord {
                time: Minute::from_i64(minutes),
                node: NodeId(node),
                socket: slot.socket(),
                slot,
                rank: RankId(rank),
                bank,
                row: None,
                col,
                bit_pos: bit,
                addr: PhysAddr(addr),
                syndrome: synd,
            };
            prop_assert_eq!(CeRecord::parse_line(&rec.to_line()), Some(rec));
        }
    }
}

//! Quarantine taxonomy and ingest policy for corruption-tolerant parsing.
//!
//! The paper's §2.3 is blunt about field data: records arrive through a
//! lossy, bounded kernel log buffer and get dropped, truncated, and
//! interleaved with foreign producers. The readers in [`crate::io`]
//! therefore never assume byte-perfect input; every line that fails to
//! parse is *quarantined* under a typed reason from
//! [`QuarantineReason`], and an [`IngestOptions`] policy decides whether
//! that aborts the run (strict — the default, so silent data loss cannot
//! creep into a published analysis) or is tolerated up to an error budget
//! (lenient, `--max-bad-frac`).

use std::fmt;

/// Why a line was quarantined instead of parsed.
///
/// The taxonomy mirrors how production logs actually go wrong (§2.3 and
/// the field studies in PAPERS.md): truncation at buffer/file boundaries,
/// binary garbage from torn writes, foreign producers sharing the
/// transport, values outside the machine's shape, and records displaced
/// out of a log's time order (late flushes, duplicated retransmissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QuarantineReason {
    /// The line is recognizably one of ours but ends before all required
    /// fields are present (e.g. the final line of a log cut mid-write).
    Truncated,
    /// The line is not valid UTF-8.
    BadUtf8,
    /// The line does not match any recognizable record shape (foreign
    /// syslog producers, freeform corruption).
    UnknownFormat,
    /// All fields are present but at least one value fails validation
    /// (unparseable number, rank/socket out of the machine's shape).
    FieldOutOfRange,
    /// The record parsed but its timestamp precedes an earlier record of
    /// the same time-sorted log — a displaced or duplicated record.
    OutOfOrder,
    /// A binary file whose leading magic bytes are not the
    /// `astra-binlog` signature (or the header itself is cut short).
    BadMagic,
    /// An `astra-binlog` header with an unsupported version or a header
    /// checksum mismatch.
    BadVersion,
    /// A binary column block whose CRC-32 trailer does not match its
    /// payload, or whose payload fails to decode.
    BlockCrc,
    /// A binary column block cut short by EOF (torn tail write).
    TruncatedBlock,
}

impl QuarantineReason {
    /// All reasons, in stable report order.
    pub const ALL: [QuarantineReason; 9] = [
        QuarantineReason::Truncated,
        QuarantineReason::BadUtf8,
        QuarantineReason::UnknownFormat,
        QuarantineReason::FieldOutOfRange,
        QuarantineReason::OutOfOrder,
        QuarantineReason::BadMagic,
        QuarantineReason::BadVersion,
        QuarantineReason::BlockCrc,
        QuarantineReason::TruncatedBlock,
    ];

    /// Dense index, 0..9.
    pub fn index(self) -> usize {
        match self {
            QuarantineReason::Truncated => 0,
            QuarantineReason::BadUtf8 => 1,
            QuarantineReason::UnknownFormat => 2,
            QuarantineReason::FieldOutOfRange => 3,
            QuarantineReason::OutOfOrder => 4,
            QuarantineReason::BadMagic => 5,
            QuarantineReason::BadVersion => 6,
            QuarantineReason::BlockCrc => 7,
            QuarantineReason::TruncatedBlock => 8,
        }
    }

    /// Stable kebab-case token used in reports, metrics names
    /// (`ingest.quarantined.<name>`), and the fsck/chaos output that CI
    /// diffs against each other.
    pub fn name(self) -> &'static str {
        match self {
            QuarantineReason::Truncated => "truncated",
            QuarantineReason::BadUtf8 => "bad-utf8",
            QuarantineReason::UnknownFormat => "unknown-format",
            QuarantineReason::FieldOutOfRange => "field-out-of-range",
            QuarantineReason::OutOfOrder => "out-of-order",
            QuarantineReason::BadMagic => "bad-magic",
            QuarantineReason::BadVersion => "bad-version",
            QuarantineReason::BlockCrc => "block-crc",
            QuarantineReason::TruncatedBlock => "truncated-block",
        }
    }

    /// True for reasons produced by the binary read path, whose sample
    /// positions are byte offsets rather than line numbers.
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            QuarantineReason::BadMagic
                | QuarantineReason::BadVersion
                | QuarantineReason::BlockCrc
                | QuarantineReason::TruncatedBlock
        )
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How many quarantined-line samples are kept per reason (enough for a
/// diagnostic report, bounded so a pathologically corrupt multi-GB log
/// cannot balloon memory).
pub const MAX_SAMPLES_PER_REASON: usize = 3;

/// Longest snippet of a quarantined line kept in a sample.
const MAX_SNIPPET_BYTES: usize = 96;

/// One retained example of a quarantined line (or, for binary files, a
/// quarantined block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// 1-based line number within the source file. For binary reasons
    /// ([`QuarantineReason::is_binary`]) this is instead the **byte
    /// offset** of the damaged header or block.
    pub line_no: u64,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
    /// Up to [`MAX_SNIPPET_BYTES`] of the line, lossily decoded.
    pub snippet: String,
}

/// Aggregated quarantine outcome of one parse pass: per-reason counts
/// plus a bounded set of example lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Count per [`QuarantineReason::index`].
    pub counts: [u64; 9],
    /// Retained examples, at most [`MAX_SAMPLES_PER_REASON`] per reason,
    /// in encounter order.
    pub samples: Vec<QuarantinedLine>,
}

impl Quarantine {
    /// Total quarantined lines across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Count for one reason.
    pub fn count(&self, reason: QuarantineReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Record one quarantined line, keeping its snippet if the reason's
    /// sample quota is not yet full.
    pub fn note(&mut self, line_no: u64, reason: QuarantineReason, raw: &[u8]) {
        self.counts[reason.index()] += 1;
        let kept = self.samples.iter().filter(|s| s.reason == reason).count();
        if kept < MAX_SAMPLES_PER_REASON {
            let cut = raw.len().min(MAX_SNIPPET_BYTES);
            self.samples.push(QuarantinedLine {
                line_no,
                reason,
                snippet: String::from_utf8_lossy(&raw[..cut]).into_owned(),
            });
        }
    }

    /// Fold another quarantine (from a later slice of the same file, or
    /// another file) into this one. Sample quotas still apply.
    pub fn merge(&mut self, other: &Quarantine) {
        for reason in QuarantineReason::ALL {
            self.counts[reason.index()] += other.counts[reason.index()];
        }
        for s in &other.samples {
            let kept = self.samples.iter().filter(|k| k.reason == s.reason).count();
            if kept < MAX_SAMPLES_PER_REASON {
                self.samples.push(s.clone());
            }
        }
    }

    /// One-line count summary, the shared format of `fsck` and `chaos`
    /// reports: `(truncated 1, bad-utf8 2, ...)` listing only nonzero
    /// reasons, or `(clean)` when empty.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "(clean)".into();
        }
        let parts: Vec<String> = QuarantineReason::ALL
            .iter()
            .filter(|r| self.count(**r) > 0)
            .map(|r| format!("{} {}", r.name(), self.count(*r)))
            .collect();
        format!("({})", parts.join(", "))
    }

    /// One report line for a named file, the shared shape of `fsck`
    /// output and the chaos manifest (so CI can diff them):
    /// `ce.log: quarantined 7 (truncated 1, ...)` or `ce.log: clean`.
    pub fn report_line(&self, name: &str) -> String {
        if self.is_empty() {
            format!("{name}: clean")
        } else {
            format!("{name}: quarantined {} {}", self.total(), self.summary())
        }
    }

    /// Multi-line sample listing for diagnostic reports (empty string
    /// when no samples were kept). Binary-format samples report the byte
    /// offset of the damaged block instead of a line number.
    pub fn sample_lines(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.samples {
            if s.reason.is_binary() {
                let _ = writeln!(
                    out,
                    "    offset {:#x}: [{}] {:?}",
                    s.line_no, s.reason, s.snippet
                );
            } else {
                let _ = writeln!(
                    out,
                    "    line {}: [{}] {:?}",
                    s.line_no, s.reason, s.snippet
                );
            }
        }
        out
    }
}

/// Strictness of the ingest path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestMode {
    /// Abort with a typed corruption report on the first quarantined
    /// line. The default: an analysis pipeline must not silently drop
    /// data unless the operator opted in.
    Strict,
    /// Quarantine bad lines and keep going, as long as the quarantined
    /// fraction of each file stays within `max_bad_frac` (checked at end
    /// of file; exceeding the budget aborts with the same typed report).
    Lenient {
        /// Largest tolerated `quarantined / total_lines` per file.
        max_bad_frac: f64,
    },
}

/// Default error budget when lenient mode is requested without an
/// explicit `--max-bad-frac`.
pub const DEFAULT_MAX_BAD_FRAC: f64 = 0.05;

/// Retry policy for transient I/O errors while reading a log.
///
/// `ErrorKind::Interrupted` is always retried (stdlib convention, costs
/// nothing); any other read error is retried up to `max_retries` times
/// with exponential backoff starting at `backoff_base_ms`, then surfaces
/// to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure before giving up.
    pub max_retries: u32,
    /// First backoff sleep in milliseconds; doubles per retry. Zero
    /// disables sleeping (tests).
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base_ms: 1,
        }
    }
}

/// The full ingest policy: strictness plus I/O retry behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestOptions {
    /// Strict or lenient quarantine handling.
    pub mode: IngestMode,
    /// Transient I/O retry policy.
    pub retry: RetryPolicy,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            mode: IngestMode::Strict,
            retry: RetryPolicy::default(),
        }
    }
}

impl IngestOptions {
    /// Lenient ingest with the given (or default) error budget.
    pub fn lenient(max_bad_frac: Option<f64>) -> Self {
        IngestOptions {
            mode: IngestMode::Lenient {
                max_bad_frac: max_bad_frac.unwrap_or(DEFAULT_MAX_BAD_FRAC),
            },
            retry: RetryPolicy::default(),
        }
    }

    /// True when any quarantining at all must abort.
    pub fn is_strict(&self) -> bool {
        matches!(self.mode, IngestMode::Strict)
    }

    /// The error budget, `0.0` under strict mode.
    pub fn max_bad_frac(&self) -> f64 {
        match self.mode {
            IngestMode::Strict => 0.0,
            IngestMode::Lenient { max_bad_frac } => max_bad_frac,
        }
    }
}

/// Everything the generic reader needs to ingest one record type: the
/// parser, the failed-line classifier, and (for time-sorted logs) the
/// monotone ordering key that powers out-of-order detection.
///
/// Plain function pointers so the descriptor is `Copy` and storable in
/// reader state without generics gymnastics.
pub struct LineFormat<T> {
    /// Parse one line, `None` when it is not a valid record.
    pub parse: fn(&str) -> Option<T>,
    /// Classify a line `parse` rejected (never sees parseable lines).
    pub classify: fn(&str) -> QuarantineReason,
    /// Monotone sort key for time-sorted logs (`None` for logs with no
    /// ordering contract, e.g. node-major `sensors.log`). A record whose
    /// key is *strictly below* the running maximum is quarantined
    /// [`QuarantineReason::OutOfOrder`]; equal keys are fine — real logs
    /// legitimately carry many records per minute.
    pub order_key: Option<fn(&T) -> i64>,
}

// Derived impls would put bounds on T; these are plain fn pointers.
impl<T> Clone for LineFormat<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for LineFormat<T> {}

impl<T> std::fmt::Debug for LineFormat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LineFormat")
            .field("ordered", &self.order_key.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_counts_and_bounds_samples() {
        let mut q = Quarantine::default();
        for i in 0..10 {
            q.note(i + 1, QuarantineReason::BadUtf8, b"\xFF\xFEjunk");
        }
        q.note(99, QuarantineReason::Truncated, b"partial reco");
        assert_eq!(q.count(QuarantineReason::BadUtf8), 10);
        assert_eq!(q.count(QuarantineReason::Truncated), 1);
        assert_eq!(q.total(), 11);
        let utf8_samples = q
            .samples
            .iter()
            .filter(|s| s.reason == QuarantineReason::BadUtf8)
            .count();
        assert_eq!(utf8_samples, MAX_SAMPLES_PER_REASON);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = Quarantine::default();
        a.note(1, QuarantineReason::UnknownFormat, b"sshd stuff");
        let mut b = Quarantine::default();
        b.note(7, QuarantineReason::UnknownFormat, b"ntpd stuff");
        b.note(8, QuarantineReason::OutOfOrder, b"late record");
        a.merge(&b);
        assert_eq!(a.count(QuarantineReason::UnknownFormat), 2);
        assert_eq!(a.count(QuarantineReason::OutOfOrder), 1);
        assert_eq!(a.samples.len(), 3);
    }

    #[test]
    fn summary_lists_only_nonzero() {
        let mut q = Quarantine::default();
        assert_eq!(q.summary(), "(clean)");
        q.note(1, QuarantineReason::Truncated, b"x");
        q.note(2, QuarantineReason::Truncated, b"y");
        q.note(3, QuarantineReason::OutOfOrder, b"z");
        assert_eq!(q.summary(), "(truncated 2, out-of-order 1)");
    }

    #[test]
    fn snippet_is_lossy_and_bounded() {
        let mut q = Quarantine::default();
        let long: Vec<u8> = std::iter::repeat_n(0xFFu8, 500).collect();
        q.note(1, QuarantineReason::BadUtf8, &long);
        assert!(q.samples[0].snippet.chars().count() <= 96);
    }

    #[test]
    fn policy_accessors() {
        let strict = IngestOptions::default();
        assert!(strict.is_strict());
        assert_eq!(strict.max_bad_frac(), 0.0);
        let lenient = IngestOptions::lenient(None);
        assert!(!lenient.is_strict());
        assert_eq!(lenient.max_bad_frac(), DEFAULT_MAX_BAD_FRAC);
        let custom = IngestOptions::lenient(Some(0.5));
        assert_eq!(custom.max_bad_frac(), 0.5);
    }
}

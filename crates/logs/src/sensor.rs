//! BMC environmental sensor records.
//!
//! Each node reports six temperature sensors (two CPU, four DIMM-group) and
//! one DC power sensor, sampled once per minute (§2.2). The paper notes
//! that some samples are invalid — sensors "not functioning or not properly
//! read", plus DC power readings that were "clearly identified as invalid"
//! — and excludes them (< 1 % of the data). The format therefore allows an
//! explicit invalid marker *and* implausible numeric values; the analyzer
//! applies the paper's validity filters rather than trusting the producer.

use astra_topology::{NodeId, SensorId, SensorKind};
use astra_util::Minute;

use crate::kv;
use crate::quarantine::{LineFormat, QuarantineReason};

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorRecord {
    /// Sample time (per-minute cadence).
    pub time: Minute,
    /// Reporting node.
    pub node: NodeId,
    /// Which sensor.
    pub sensor: SensorId,
    /// Raw value: °C for temperature sensors, W for the power sensor.
    /// `None` when the BMC failed to read the sensor.
    pub value: Option<f64>,
}

impl SensorRecord {
    /// Serialize to the one-line BMC format.
    pub fn to_line(&self) -> String {
        let mut line = String::with_capacity(64);
        self.to_line_into(&mut line);
        line
    }

    /// Append the one-line BMC form to `out` (buffer-reuse variant of
    /// [`SensorRecord::to_line`]).
    pub fn to_line_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        write!(
            out,
            "{} {} BMC: sensor={} value=",
            self.time.rfc3339(),
            self.node,
            self.sensor.name(),
        )
        .expect("write to String cannot fail");
        match self.value {
            Some(v) => write!(out, "{v:.1}"),
            None => write!(out, "unreadable"),
        }
        .expect("write to String cannot fail");
    }

    /// Parse a line produced by [`SensorRecord::to_line`].
    pub fn parse_line(line: &str) -> Option<Self> {
        let (ts, node, source, tail) = kv::split_line(line)?;
        if source != "BMC" {
            return None;
        }
        let time = Minute::parse_rfc3339(ts)?;
        let node = NodeId(kv::parse_node(node)?);
        let sensor = SensorId::parse_name(kv::field(tail, "sensor")?)?;
        let value = match kv::field(tail, "value")? {
            "unreadable" => None,
            v => Some(v.parse().ok()?),
        };
        Some(SensorRecord {
            time,
            node,
            sensor,
            value,
        })
    }

    /// Classify a line [`SensorRecord::parse_line`] rejected (see
    /// [`crate::ce::CeRecord::classify_bad_line`] for the heuristic).
    pub fn classify_bad_line(line: &str) -> QuarantineReason {
        if !line.contains(" BMC:") {
            return QuarantineReason::UnknownFormat;
        }
        if line.contains("sensor=") && line.contains("value=") {
            QuarantineReason::FieldOutOfRange
        } else {
            QuarantineReason::Truncated
        }
    }

    /// The paper's validity filter: readable, and physically plausible for
    /// the sensor kind. Implausible power values model the "clearly
    /// invalid" DC readings §2.2 mentions.
    pub fn valid_value(&self) -> Option<f64> {
        let v = self.value?;
        let plausible = match self.sensor.kind() {
            SensorKind::CpuTemp(_) => (0.0..=150.0).contains(&v),
            SensorKind::DimmTemp(_) => (0.0..=100.0).contains(&v),
            SensorKind::DcPower => (50.0..=1000.0).contains(&v),
        };
        plausible.then_some(v)
    }
}

/// Ingest descriptor for `sensors.log`. The file is written node-major
/// (all of one node's samples, then the next node's), so it carries **no
/// ordering contract** — `order_key` is `None` and out-of-order
/// detection does not apply.
pub const FORMAT: LineFormat<SensorRecord> = LineFormat {
    parse: SensorRecord::parse_line,
    classify: SensorRecord::classify_bad_line,
    order_key: None,
};

#[cfg(test)]
mod tests {
    use super::*;
    use astra_topology::{DimmGroup, SocketId};
    use astra_util::CalDate;

    fn at(minute: i64) -> Minute {
        CalDate::new(2019, 5, 20).midnight().plus(minute)
    }

    #[test]
    fn roundtrip_cpu_temp() {
        let rec = SensorRecord {
            time: at(1),
            node: NodeId(1),
            sensor: SensorId::cpu(SocketId(0)),
            value: Some(67.0),
        };
        assert_eq!(SensorRecord::parse_line(&rec.to_line()), Some(rec));
    }

    #[test]
    fn roundtrip_unreadable() {
        let rec = SensorRecord {
            time: at(2),
            node: NodeId(3),
            sensor: SensorId::dimm_group(DimmGroup::from_index(2).unwrap()),
            value: None,
        };
        assert_eq!(SensorRecord::parse_line(&rec.to_line()), Some(rec));
    }

    #[test]
    fn line_shape() {
        let rec = SensorRecord {
            time: at(0),
            node: NodeId(1),
            sensor: SensorId::dc_power(),
            value: Some(312.5),
        };
        assert_eq!(
            rec.to_line(),
            "2019-05-20T00:00:00 node0001 BMC: sensor=power value=312.5"
        );
    }

    #[test]
    fn validity_filters() {
        let base = SensorRecord {
            time: at(0),
            node: NodeId(1),
            sensor: SensorId::cpu(SocketId(0)),
            value: Some(67.0),
        };
        assert_eq!(base.valid_value(), Some(67.0));
        assert_eq!(
            SensorRecord {
                value: None,
                ..base
            }
            .valid_value(),
            None
        );
        assert_eq!(
            SensorRecord {
                value: Some(900.0),
                ..base
            }
            .valid_value(),
            None,
            "a 900 degree CPU reading is invalid"
        );
        let power = SensorRecord {
            sensor: SensorId::dc_power(),
            value: Some(5.0),
            ..base
        };
        assert_eq!(power.valid_value(), None, "5 W node power is invalid");
        let power_ok = SensorRecord {
            value: Some(320.0),
            ..power
        };
        assert_eq!(power_ok.valid_value(), Some(320.0));
    }

    #[test]
    fn rejects_foreign_lines() {
        assert_eq!(SensorRecord::parse_line(""), None);
        assert_eq!(
            SensorRecord::parse_line(
                "2019-05-20T00:00:00 node0001 HET: event=ucGoingHigh severity=WARNING"
            ),
            None
        );
        assert_eq!(
            SensorRecord::parse_line("2019-05-20T00:00:00 node0001 BMC: sensor=dimmg9 value=1.0"),
            None
        );
    }
}
